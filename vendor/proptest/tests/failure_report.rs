//! The stand-in has no shrinking, so its failure report must carry the
//! concrete generated inputs — otherwise multi-input property failures
//! are unreproducible.

use proptest::prelude::*;

// Deliberately not `#[test]`: invoked via catch_unwind below.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    fn always_fails(x in 10u32..20, flag in any::<bool>()) {
        let _ = flag;
        prop_assert!(x >= 20, "x = {} is in range", x);
    }
}

#[test]
fn failure_message_includes_inputs_and_case() {
    let err = std::panic::catch_unwind(always_fails).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is a formatted String");
    assert!(
        msg.contains("inputs (x, flag) = ("),
        "missing inputs in: {msg}"
    );
    assert!(msg.contains("case 1/4"), "missing case index in: {msg}");
    assert!(msg.contains("is in range"), "missing message in: {msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn passing_properties_stay_silent(x in 0u32..10, v in proptest::collection::vec(any::<u64>(), 0..4)) {
        prop_assert!(x < 10);
        prop_assert!(v.len() < 4);
    }
}
