//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// A length specification for collection strategies: either exact or a
/// half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let len = if self.size.lo + 1 >= self.size.hi_exclusive {
            self.size.lo
        } else {
            runner.rng().random_range(self.size.lo..self.size.hi_exclusive)
        };
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}
