//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API the welle test suites use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`prelude::Just`], `any::<T>()`, `collection::vec`,
//! the [`proptest!`] macro (with `#![proptest_config(..)]` support), and
//! the `prop_assert*` macros.
//!
//! Differences from upstream: generation is deterministic (cases are
//! derived from a fixed seed, so failures reproduce without a regression
//! file) and there is **no shrinking** — a failing case reports its case
//! index and message but is not minimised.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares a block of property tests.
///
/// Supports the same surface the welle suites use:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::deterministic(config.clone(), stringify!($name));
            for case in 0..config.cases {
                let generated = $crate::strategy::Strategy::new_value(
                    &($($strat,)+),
                    &mut runner,
                );
                // There is no shrinking, so a failure report must carry
                // the concrete inputs to be actionable; format them
                // before the destructure moves them into the body.
                let generated_repr = format!("{:?}", generated);
                let ($($pat,)+) = generated;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    if e.is_rejection() {
                        continue;
                    }
                    panic!(
                        "proptest {}: case {}/{} failed with inputs {} = {}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        stringify!(($($pat),+)),
                        generated_repr,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!(left, right)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `left != right`\n  both: `{:?}`: {}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
