//! The [`Strategy`] trait and its combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{RngExt, SampleUniform};

use crate::test_runner::TestRunner;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.inner.new_value(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        runner.rng().random_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        runner.rng().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// The canonical whole-domain strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Types with a canonical whole-domain generation strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                <$t>::sample_inclusive(runner.rng(), <$t>::MIN, <$t>::MAX)
            }
        }
    )+};
}

impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().random_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = runner.rng().random_range(-300.0f64..300.0);
        let sign = if runner.rng().random_bool(0.5) { 1.0 } else { -1.0 };
        sign * mag.exp2()
    }
}
