//! Test-runner state: configuration, the per-test RNG, and case errors.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block, mirroring `ProptestConfig`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Per-test generation state handed to strategies.
pub struct TestRunner {
    rng: StdRng,
    config: Config,
}

impl TestRunner {
    /// A runner whose RNG stream is a pure function of the test name,
    /// so failures reproduce without a persisted regression file.
    pub fn deterministic(config: Config, test_name: &str) -> Self {
        // FNV-1a over the test name picks the stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            config,
        }
    }

    /// A runner with the default deterministic stream.
    pub fn new(config: Config) -> Self {
        Self::deterministic(config, "proptest")
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Whether this is a `prop_assume!` rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}
