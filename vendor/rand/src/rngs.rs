//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Unlike upstream `rand`, the algorithm behind this `StdRng` is fixed
/// forever — reproducibility of seeded experiment runs is part of the
/// welle contract.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0x6a09_e667_f3bc_c909,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
            ];
        }
        StdRng { s }
    }
}

/// A small, fast generator; here simply an alias wrapper over the same
/// xoshiro256++ core as [`StdRng`].
pub type SmallRng = StdRng;
