//! Sequence helpers: shuffling and random element choice.

use crate::{RngCore, RngExt};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
