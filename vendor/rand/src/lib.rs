//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides exactly the subset of the `rand` 0.9-era API that the welle
//! workspace uses:
//!
//! * [`RngCore`] — the raw word-level generator interface,
//! * [`Rng`] — the bound used by generic call-sites (`R: Rng + ?Sized`),
//! * [`RngExt`] — `random_range` / `random_bool` / `random`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! Determinism is part of the contract: every simulator run is a pure
//! function of `(graph, protocols, seed)`, so `StdRng` here is a fixed
//! algorithm (splitmix64-seeded xoshiro256++) that will never change
//! behind the workspace's back the way upstream `StdRng` may.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// The raw word-level random generator interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker bound used by generic call-sites (`R: Rng + ?Sized`).
///
/// Blanket-implemented for every [`RngCore`]; the value-producing
/// methods live on [`RngExt`] so that importing both traits never
/// creates method ambiguity.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Value-producing convenience methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} out of range");
        uniform::unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types samplable uniformly over their whole domain (`RngExt::random`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform::unit_f64(rng.next_u64())
    }
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 and builds the
    /// generator from it. Deterministic across platforms and versions.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_runs_are_identical() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.random_range(0u64..u64::MAX), b.random_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.5..8.0);
            assert!((0.5..8.0).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
