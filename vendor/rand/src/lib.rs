//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides exactly the subset of the `rand` 0.9-era API that the welle
//! workspace uses:
//!
//! * [`RngCore`] — the raw word-level generator interface,
//! * [`Rng`] — the bound used by generic call-sites (`R: Rng + ?Sized`),
//! * [`RngExt`] — `random_range` / `random_bool` / `random`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! Determinism is part of the contract: every simulator run is a pure
//! function of `(graph, protocols, seed)`, so `StdRng` here is a fixed
//! algorithm (splitmix64-seeded xoshiro256++) that will never change
//! behind the workspace's back the way upstream `StdRng` may.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// The raw word-level random generator interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker bound used by generic call-sites (`R: Rng + ?Sized`).
///
/// Blanket-implemented for every [`RngCore`]; the value-producing
/// methods live on [`RngExt`] so that importing both traits never
/// creates method ambiguity.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Value-producing convenience methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} out of range");
        uniform::unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws one sample from a precompiled [`Bernoulli`] distribution.
    ///
    /// Prefer this over ad-hoc `random::<f64>() < p` comparisons at call
    /// sites that sample the same probability repeatedly: the threshold
    /// is computed once in [`Bernoulli::new`] and each draw is a single
    /// integer comparison with no float rounding at sample time.
    fn sample_bernoulli(&mut self, dist: &Bernoulli) -> bool {
        dist.check(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// A Bernoulli distribution with a precomputed 64-bit threshold.
///
/// `check(word) == true` with probability `p` for a uniform random
/// `word`, realized as `word < ⌊p·2⁶⁴⌋` (with `p = 1` special-cased,
/// since `2⁶⁴` is not representable). Because the decision is a pure
/// function of one 64-bit word, the same distribution can be driven
/// either by an RNG stream ([`RngExt::sample_bernoulli`]) or by a
/// stateless hash of replay-stable coordinates — the latter is what
/// deterministic fault injection uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bernoulli {
    /// `⌊p·2⁶⁴⌋`; ignored when `always` is set.
    threshold: u64,
    /// `p == 1.0`: every draw succeeds.
    always: bool,
}

impl Bernoulli {
    /// Builds the distribution for success probability `p`.
    ///
    /// Returns `None` unless `p` is finite and in `[0, 1]`.
    pub fn new(p: f64) -> Option<Bernoulli> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        Some(Bernoulli {
            threshold: (p * (u64::MAX as f64 + 1.0)) as u64,
            always: p >= 1.0,
        })
    }

    /// Evaluates the distribution against one uniform 64-bit word.
    #[inline]
    pub fn check(&self, word: u64) -> bool {
        self.always || word < self.threshold
    }

    /// Draws one sample from `rng`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        self.check(rng.next_u64())
    }
}

/// A normal (Gaussian) distribution `N(mean, std_dev²)`.
///
/// Samples are produced by the Box–Muller transform from two uniform
/// 64-bit words, and — like [`Bernoulli::check`] — the transform is
/// exposed as a pure function of those words ([`Normal::from_words`]),
/// so the same distribution can be driven either by an RNG stream or by
/// a stateless hash of replay-stable coordinates (what the asynchronous
/// executor's latency models use).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds the distribution.
    ///
    /// Returns `None` unless `mean` is finite and `std_dev` is finite
    /// and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Option<Normal> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return None;
        }
        Some(Normal { mean, std_dev })
    }

    /// Evaluates the distribution against two uniform 64-bit words
    /// (Box–Muller; the first word is mapped into `(0, 1]` so the
    /// logarithm is always finite).
    #[inline]
    pub fn from_words(&self, w1: u64, w2: u64) -> f64 {
        // (w1 >> 11) ∈ [0, 2⁵³); +1 keeps u1 in (0, 1].
        let u1 = ((w1 >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = uniform::unit_f64(w2);
        let r = (-2.0 * u1.ln()).sqrt();
        let z = r * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }

    /// Draws one sample from `rng`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let w1 = rng.next_u64();
        let w2 = rng.next_u64();
        self.from_words(w1, w2)
    }
}

/// A log-normal distribution: `exp(N(mu, sigma²))`.
///
/// `mu`/`sigma` parameterize the *underlying* normal, so the median is
/// `exp(mu)` and samples are always strictly positive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Builds the distribution.
    ///
    /// Returns `None` unless `mu` is finite and `sigma` is finite and
    /// non-negative.
    pub fn new(mu: f64, sigma: f64) -> Option<LogNormal> {
        Normal::new(mu, sigma).map(|norm| LogNormal { norm })
    }

    /// Evaluates the distribution against two uniform 64-bit words (see
    /// [`Normal::from_words`]).
    #[inline]
    pub fn from_words(&self, w1: u64, w2: u64) -> f64 {
        self.norm.from_words(w1, w2).exp()
    }

    /// Draws one sample from `rng`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let w1 = rng.next_u64();
        let w2 = rng.next_u64();
        self.from_words(w1, w2)
    }
}

/// Types samplable uniformly over their whole domain (`RngExt::random`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform::unit_f64(rng.next_u64())
    }
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 and builds the
    /// generator from it. Deterministic across platforms and versions.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn seeded_runs_are_identical() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.random_range(0u64..u64::MAX), b.random_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.5..8.0);
            assert!((0.5..8.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_rejects_out_of_range() {
        use super::Bernoulli;
        assert!(Bernoulli::new(-0.1).is_none());
        assert!(Bernoulli::new(1.1).is_none());
        assert!(Bernoulli::new(f64::NAN).is_none());
        assert!(Bernoulli::new(f64::INFINITY).is_none());
        assert!(Bernoulli::new(0.0).is_some());
        assert!(Bernoulli::new(1.0).is_some());
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        use super::Bernoulli;
        let never = Bernoulli::new(0.0).unwrap();
        let always = Bernoulli::new(1.0).unwrap();
        for word in [0u64, 1, u64::MAX / 2, u64::MAX] {
            assert!(!never.check(word));
            assert!(always.check(word));
        }
    }

    #[test]
    fn bernoulli_frequency_is_sane() {
        use super::Bernoulli;
        let d = Bernoulli::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.sample_bernoulli(&d)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn bernoulli_seeded_stream_is_pinned() {
        // The vendored StdRng algorithm is part of the workspace contract
        // (every seeded result depends on it); this pins the exact
        // Bernoulli decision stream so an accidental algorithm change
        // cannot slip by.
        use super::Bernoulli;
        let d = Bernoulli::new(0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let seq: Vec<bool> = (0..16).map(|_| d.sample(&mut rng)).collect();
        let expected = [
            false, false, false, false, false, false, true, false, true, false, false, false,
            false, true, false, false,
        ];
        assert_eq!(seq, expected, "pinned Bernoulli(0.3) stream for seed 42");
        // And the decision is a pure function of the word, so the RNG
        // stream and direct checks agree.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..256 {
            assert_eq!(d.sample(&mut a), d.check(b.next_u64()));
        }
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        use super::{LogNormal, Normal};
        assert!(Normal::new(f64::NAN, 1.0).is_none());
        assert!(Normal::new(0.0, -1.0).is_none());
        assert!(Normal::new(0.0, f64::INFINITY).is_none());
        assert!(Normal::new(0.0, 0.0).is_some());
        assert!(LogNormal::new(f64::NAN, 0.5).is_none());
        assert!(LogNormal::new(0.0, -0.5).is_none());
        assert!(LogNormal::new(0.0, 0.0).is_some());
    }

    #[test]
    fn normal_moments_are_sane() {
        use super::Normal;
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
        // Zero deviation degenerates to the constant mean.
        let point = Normal::new(5.0, 0.0).unwrap();
        assert_eq!(point.sample(&mut rng), 5.0);
    }

    #[test]
    fn log_normal_is_positive_with_the_right_median() {
        use super::LogNormal;
        let d = LogNormal::new(1.0, 0.75).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        // Median of exp(N(mu, sigma²)) is exp(mu).
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median = {median}");
    }

    #[test]
    fn log_normal_seeded_stream_is_pinned() {
        // Like `bernoulli_seeded_stream_is_pinned`: the latency models of
        // the asynchronous executor consume this exact sampler, so the
        // stream for a fixed seed is part of the workspace contract.
        use super::LogNormal;
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let seq: Vec<u64> = (0..8).map(|_| (d.sample(&mut rng) * 1e6) as u64).collect();
        let expected = [874_324, 973_136, 748_796, 447_236, 2_247_551, 1_372_712, 1_488_661, 524_101];
        assert_eq!(seq, expected, "pinned LogNormal(0, 0.5) stream for seed 42");
        // The transform is a pure function of two words: the RNG stream
        // and direct word evaluation agree.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..256 {
            let w1 = b.next_u64();
            let w2 = b.next_u64();
            assert_eq!(d.sample(&mut a), d.from_words(w1, w2));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
