//! Uniform sampling over ranges, with Lemire-style unbiased integer
//! sampling.

use core::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased draw from `[0, span)` (`span >= 1`) via 128-bit
/// multiply-and-reject.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    let zone = span.wrapping_neg() % span; // # of biased low outcomes
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

/// Types with uniform sampling over a sub-range of their domain.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        let v = low + (high - low) * unit_f64(rng.next_u64());
        // Guard against round-up to `high` at the top of the range.
        if v < high {
            v
        } else {
            low
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "random_range: empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range types acceptable to `RngExt::random_range`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}
