//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the welle benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock harness: each benchmark is warmed up briefly, then
//! timed over `sample_size` samples whose per-sample iteration count is
//! chosen so a sample takes roughly `measurement_time / sample_size`.
//! Median and min/max per-iteration times are printed to stdout.
//!
//! There is no statistical analysis, plotting, or baseline storage —
//! record numbers by hand (see `BENCH_NOTES.md` at the workspace root).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep full `cargo bench` sweeps fast; these are deliberately
        // smaller than upstream criterion's defaults.
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies a substring filter: only benchmark ids containing
    /// `filter` run.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        let warm_up_time = self.warm_up_time;
        self.run_one(&id.to_string(), sample_size, measurement_time, warm_up_time, &mut f);
        self
    }

    fn run_one<F>(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
        f: &mut F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: run once (at least), repeatedly up to the warm-up
        // budget, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        while warm_iters == 0 || warm_start.elapsed() < warm_up_time {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            f(&mut bencher);
            warm_iters += 1;
            if bencher.elapsed > measurement_time {
                break; // a single call already exceeds the budget
            }
        }
        let per_call = bencher.elapsed.max(Duration::from_nanos(1));

        // Measurement: `sample_size` samples, each one call of the
        // closure (the closure itself loops via `Bencher::iter`).
        let budget_per_sample = measurement_time / sample_size.max(1) as u32;
        let _ = budget_per_sample; // reserved for adaptive iteration counts
        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
            }
            if per_call > measurement_time {
                break; // expensive benchmark: settle for fewer samples
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        if samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let measurement_time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        let warm_up_time = self.criterion.warm_up_time;
        self.criterion
            .run_one(&full, sample_size, measurement_time, warm_up_time, &mut f);
        self
    }

    /// Runs a parameterised benchmark, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Timer handed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        // Cheap routines are batched so timer overhead stays small;
        // expensive ones (> ~10ms) run exactly once per sample.
        let reps = if once < Duration::from_micros(10) {
            1_000
        } else if once < Duration::from_millis(10) {
            10
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.elapsed += start.elapsed() + once;
        self.iters += reps + 1;
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; a trailing free argument
            // acts as a substring filter like upstream criterion.
            let filter = std::env::args()
                .skip(1)
                .find(|a| !a.starts_with("--"));
            let mut c = match filter {
                Some(f) => $crate::Criterion::default().with_filter(f),
                None => $crate::Criterion::default(),
            };
            $( $group(&mut c); )+
        }
    };
}
