//! Integration checks for the §4 lower-bound pipeline: construction,
//! conductance, clique-communication tracking, probing.

use rand::{rngs::StdRng, SeedableRng};
use welle::core::ElectionConfig;
use welle::graph::{analysis, gen};
use welle::lowerbound::{
    expected_first_contact, run_election_on_lower_bound, ProbeStrategy,
};

#[test]
fn lb_graph_conductance_scales_with_alpha() {
    // Lemma 16: φ(G) = Θ(α); check the spectral sweep stays within a
    // generous constant band of α across ε.
    let mut rng = StdRng::seed_from_u64(1);
    for eps in [0.25f64, 0.3, 0.35] {
        let lb = gen::CliqueOfCliques::build(
            gen::CliqueOfCliquesParams::new(600, eps),
            &mut rng,
        )
        .unwrap();
        let alpha = lb.alpha();
        let phi = analysis::conductance_sweep(lb.graph(), 3000);
        assert!(
            phi <= 60.0 * alpha,
            "eps={eps}: phi {phi} should be O(alpha {alpha})"
        );
        assert!(
            phi >= alpha / 60.0,
            "eps={eps}: phi {phi} should be Ω(alpha {alpha})"
        );
    }
}

#[test]
fn smaller_alpha_means_smaller_conductance() {
    let mut rng = StdRng::seed_from_u64(2);
    let phi_of = |eps: f64, rng: &mut StdRng| {
        let lb = gen::CliqueOfCliques::build(
            gen::CliqueOfCliquesParams::new(600, eps),
            rng,
        )
        .unwrap();
        analysis::conductance_sweep(lb.graph(), 3000)
    };
    let loose = phi_of(0.2, &mut rng);
    let tight = phi_of(0.4, &mut rng);
    assert!(
        tight < loose,
        "larger ε (bigger cliques) must reduce conductance: {tight} vs {loose}"
    );
}

#[test]
fn election_on_lb_graph_produces_cg_statistics() {
    let mut rng = StdRng::seed_from_u64(3);
    let lb =
        gen::CliqueOfCliques::build(gen::CliqueOfCliquesParams::new(250, 0.3), &mut rng)
            .unwrap();
    let mut cfg = ElectionConfig::tuned_for_simulation(lb.graph().n());
    cfg.max_walk_len = Some(1024);
    let run = run_election_on_lower_bound(&lb, &cfg, 5);
    assert!(run.report.is_success(), "{:?}", run.report.leaders);
    // The election must bridge cliques — and each first contact is
    // reported with its message cost.
    assert!(run.cg_edges >= 1);
    let costs = &run.first_contact_costs;
    assert!(!costs.is_empty());
    // Aggregate message cost ≥ the number of contacted cliques (trivial
    // sanity floor), and the run's message total covers the sum of costs.
    let max_cost = *costs.iter().max().unwrap();
    assert!(run.report.messages >= max_cost);
}

#[test]
fn probing_expectation_matches_lemma_18_scale() {
    // For ports = s² and 4 externals, the closed form is ≈ s²/5 — the
    // Ω(n^{2ε}) of Lemma 18.
    let e = expected_first_contact(40 * 40, 4);
    assert!((e - 1601.0 / 5.0).abs() < 1e-9);
    let _ = ProbeStrategy::UniformRandom;
}

#[test]
fn degree_uniformity_across_epsilon() {
    let mut rng = StdRng::seed_from_u64(4);
    for eps in [0.25f64, 0.35] {
        let lb = gen::CliqueOfCliques::build(
            gen::CliqueOfCliquesParams::new(400, eps),
            &mut rng,
        )
        .unwrap();
        let s = lb.clique_size();
        assert!(
            lb.graph().is_regular(s - 1),
            "eps={eps}: degrees must be uniform"
        );
        assert!(analysis::is_connected(lb.graph()));
    }
}
