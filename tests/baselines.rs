//! Integration tests for the baseline algorithms: all of them must agree
//! with the main algorithm on *what* a correct election is, while
//! exhibiting their characteristic costs.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::baselines::{
    run_flood_max, run_hirschberg_sinclair, run_known_tmix_election,
};
use welle::core::{Election, ElectionConfig};
use welle::graph::gen;
use welle::walks::{mixing_time, MixingOptions, StartPolicy};

#[test]
fn hirschberg_sinclair_beats_the_general_algorithm_on_rings() {
    // Specialized O(n log n) vs the general algorithm paying t_mix = Θ(n²):
    // the reason ring-specific algorithms exist.
    let g = Arc::new(gen::ring(32).unwrap());
    let hs = run_hirschberg_sinclair(&g, 3);
    assert!(hs.is_success());
    let mut cfg = ElectionConfig::tuned_for_simulation(32);
    cfg.max_walk_len = Some(4096);
    let general = Election::on(&g).config(cfg).seed(3).run().unwrap();
    assert!(general.is_success());
    assert!(
        hs.messages * 10 < general.messages,
        "HS ({}) should crush the general algorithm ({}) on rings",
        hs.messages,
        general.messages
    );
}

#[test]
fn flood_max_and_walk_election_agree_on_uniqueness() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = Arc::new(gen::random_regular(96, 4, &mut rng).unwrap());
    for seed in 0..3u64 {
        let flood = run_flood_max(&g, seed);
        assert!(flood.is_success(), "flood seed {seed}: {:?}", flood.leaders);
    }
    let walk = Election::on(&g)
        .config(ElectionConfig::tuned_for_simulation(96))
        .seed(1)
        .run()
        .unwrap();
    assert!(walk.is_success());
}

#[test]
fn known_tmix_baseline_works_across_families() {
    for (name, g) in [
        ("hypercube", Arc::new(gen::hypercube(7).unwrap())),
        ("clique", Arc::new(gen::clique(128).unwrap())),
    ] {
        let tmix = mixing_time(
            &g,
            MixingOptions {
                horizon: 100_000,
                starts: StartPolicy::Sample(8),
            },
        )
        .unwrap();
        let cfg = ElectionConfig::tuned_for_simulation(g.n());
        let r = run_known_tmix_election(&g, &cfg, tmix, 2, 7);
        assert!(r.is_success(), "{name}: {:?}", r.leaders);
        assert_eq!(r.epochs_used, 1, "{name}: single phase");
    }
}

#[test]
fn hs_messages_scale_n_log_n_not_with_the_general_bound() {
    let g128 = Arc::new(gen::ring(128).unwrap());
    let hs = run_hirschberg_sinclair(&g128, 2);
    assert!(hs.is_success());
    // c·n·log2 n with the textbook c <= 8: 128·7·8 = 7168.
    assert!(
        hs.messages <= 8 * 128 * 7,
        "HS used {} messages, above the O(n log n) envelope",
        hs.messages
    );
    // And Ω(n): a ring cannot elect with fewer.
    assert!(hs.messages >= 128);
}

#[test]
fn flood_max_rounds_track_diameter() {
    let g = Arc::new(gen::torus2d(8, 8).unwrap());
    let b = run_flood_max(&g, 9);
    assert!(b.is_success());
    let d = welle::graph::analysis::diameter_exact(&g).unwrap() as u64;
    assert!(b.rounds >= d, "needs at least diameter rounds");
    assert!(b.rounds <= 6 * d + 10, "rounds {} vs diameter {d}", b.rounds);
}
