//! Driving-API safety net: every way of running the same
//! `(graph, config, seed)` election — any [`Exec`] choice, either sync
//! mode, observed or not, solo or inside a [`Campaign`] — must be
//! **bit-identical**: same leaders, same message/bit totals, same round
//! counts. A zero-fault [`FaultPlan`] must also be indistinguishable
//! from running without one, and faulted runs must agree across
//! executors.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::congest::testing::all_execs;
use welle::congest::TransmitEvent;
use welle::core::{
    Campaign, ConfigError, Election, ElectionConfig, ElectionReport, Exec, FaultPlan, SyncMode,
};
use welle::graph::{gen, Graph};

fn expander(n: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(gen::random_regular(n, 4, &mut rng).unwrap())
}

fn assert_identical(a: &ElectionReport, b: &ElectionReport, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    assert_eq!(a.m, b.m, "{what}: m");
    assert_eq!(a.contenders, b.contenders, "{what}: contenders");
    assert_eq!(a.leaders, b.leaders, "{what}: leaders");
    assert_eq!(a.leader_id, b.leader_id, "{what}: leader_id");
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.bits, b.bits, "{what}: bits");
    assert_eq!(a.decided_round, b.decided_round, "{what}: decided_round");
    assert_eq!(a.engine_rounds, b.engine_rounds, "{what}: engine_rounds");
    assert_eq!(a.final_walk_len, b.final_walk_len, "{what}: final_walk_len");
    assert_eq!(a.epochs_used, b.epochs_used, "{what}: epochs_used");
    assert_eq!(a.gave_up, b.gave_up, "{what}: gave_up");
    assert_eq!(a.dropped_messages, b.dropped_messages, "{what}: dropped_messages");
    assert_eq!(a.crashed, b.crashed, "{what}: crashed");
    assert_eq!(a.dropped_tokens, b.dropped_tokens, "{what}: dropped_tokens");
    assert_eq!(a.broken_routes, b.broken_routes, "{what}: broken_routes");
    assert_eq!(a.virtual_time, b.virtual_time, "{what}: virtual_time");
    assert_eq!(a.phase_rounds, b.phase_rounds, "{what}: phase_rounds");
    assert_eq!(a.phase_messages, b.phase_messages, "{what}: phase_messages");
    assert_eq!(
        a.telemetry.is_some(),
        b.telemetry.is_some(),
        "{what}: telemetry presence"
    );
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
}

fn configs() -> Vec<(&'static str, ElectionConfig)> {
    let base = ElectionConfig::tuned_for_simulation(96);
    vec![
        ("adaptive", base),
        (
            "fixed_t",
            ElectionConfig {
                sync: SyncMode::FixedT,
                ..base
            },
        ),
    ]
}

fn elect(g: &Arc<Graph>, cfg: ElectionConfig, seed: u64, exec: Exec) -> ElectionReport {
    Election::on(g)
        .config(cfg)
        .seed(seed)
        .executor(exec)
        .run()
        .unwrap()
}

#[test]
fn executors_are_bit_identical_across_sync_modes() {
    let g = expander(96, 5);
    for (name, cfg) in configs() {
        for seed in [1u64, 2, 3] {
            let serial = elect(&g, cfg, seed, Exec::Serial);
            for (exec_name, exec) in all_execs() {
                let par = elect(&g, cfg, seed, exec);
                assert_identical(
                    &serial,
                    &par,
                    &format!("{name}/{exec_name}/seed {seed}"),
                );
            }
        }
    }
}

#[test]
fn auto_executor_is_bit_identical_to_both() {
    let g = expander(96, 7);
    for (name, cfg) in configs() {
        let serial = elect(&g, cfg, 4, Exec::Serial);
        let threaded = elect(&g, cfg, 4, Exec::Threaded(2));
        let auto = elect(&g, cfg, 4, Exec::Auto);
        assert_identical(&serial, &auto, &format!("{name}/auto vs serial"));
        assert_identical(&threaded, &auto, &format!("{name}/auto vs threaded"));
    }
}

#[test]
fn observers_see_identical_traffic_on_every_executor() {
    let g = expander(96, 8);
    let cfg = ElectionConfig::tuned_for_simulation(96);

    let mut serial_events: Vec<(u64, usize)> = Vec::new();
    let mut serial_obs = |ev: &TransmitEvent| serial_events.push((ev.round, ev.from.index()));
    let serial = Election::on(&g)
        .config(cfg)
        .seed(11)
        .executor(Exec::Serial)
        .observer(&mut serial_obs)
        .run()
        .unwrap();
    assert_eq!(serial_events.len() as u64, serial.messages);

    let mut par_events: Vec<(u64, usize)> = Vec::new();
    let mut par_obs = |ev: &TransmitEvent| par_events.push((ev.round, ev.from.index()));
    let par = Election::on(&g)
        .config(cfg)
        .seed(11)
        .executor(Exec::Threaded(3))
        .observer(&mut par_obs)
        .run()
        .unwrap();

    assert_identical(&serial, &par, "observed serial vs threaded");
    assert_eq!(serial_events, par_events, "event streams must be identical");
}

#[test]
fn campaign_trials_match_individual_runs() {
    let g = expander(96, 9);
    let cfg = ElectionConfig::tuned_for_simulation(96);
    let outcome = Campaign::new(Election::on(&g).config(cfg))
        .seeds(20..25)
        .run()
        .unwrap();
    assert_eq!(outcome.trials.len(), 5);
    for t in &outcome.trials {
        let solo = Election::on(&g).config(cfg).seed(t.seed).run().unwrap();
        assert_identical(&solo, &t.report, &format!("campaign seed {}", t.seed));
    }
    let s = outcome.summary();
    assert_eq!(s.trials, 5);
    assert_eq!(
        s.successes,
        outcome
            .trials
            .iter()
            .filter(|t| t.report.is_success())
            .count()
    );
}

#[test]
fn threaded_campaigns_match_individual_runs() {
    // The trial scheduler is one more way of driving the same election:
    // every pooled trial must be bit-identical to its solo run, and the
    // workers must share engines instead of building one per trial.
    let g = expander(96, 9);
    let cfg = ElectionConfig::tuned_for_simulation(96);
    let outcome = Campaign::new(Election::on(&g).config(cfg))
        .seeds(20..25)
        .trial_threads(3)
        .run()
        .unwrap();
    assert_eq!(outcome.trials.len(), 5);
    assert!(outcome.engines_built <= 3, "built {}", outcome.engines_built);
    for t in &outcome.trials {
        let solo = Election::on(&g).config(cfg).seed(t.seed).run().unwrap();
        assert_identical(&solo, &t.report, &format!("pooled campaign seed {}", t.seed));
    }
}

#[test]
fn zero_fault_plan_is_indistinguishable_from_no_plan() {
    let g = expander(96, 12);
    for (name, cfg) in configs() {
        let plain = elect(&g, cfg, 6, Exec::Serial);
        for (exec_name, exec) in all_execs() {
            let faulted = Election::on(&g)
                .config(cfg)
                .seed(6)
                .executor(exec)
                .faults(FaultPlan::new(999))
                .run()
                .unwrap();
            assert_identical(&plain, &faulted, &format!("{name}/zero-fault {exec_name}"));
            assert_eq!(faulted.dropped_messages, 0);
            assert_eq!(faulted.crashed, 0);
        }
    }
}

#[test]
fn faulted_elections_are_bit_identical_across_executors() {
    let g = expander(96, 13);
    let cfg = ElectionConfig {
        // Cap the guess-and-double search: under heavy faults the
        // certificates may never hold, and the cap keeps the give-up
        // visible and cheap.
        max_walk_len: Some(64),
        ..ElectionConfig::tuned_for_simulation(96)
    };
    let plan = FaultPlan::new(3)
        .drop_rate(0.1)
        .crash_fraction(0.05, 40)
        .delay_all(1);
    let serial = Election::on(&g)
        .config(cfg)
        .seed(2)
        .executor(Exec::Serial)
        .faults(plan.clone())
        .run()
        .unwrap();
    assert!(serial.dropped_messages > 0, "the plan must actually bite");
    for (exec_name, exec) in all_execs() {
        let par = Election::on(&g)
            .config(cfg)
            .seed(2)
            .executor(exec)
            .faults(plan.clone())
            .run()
            .unwrap();
        assert_identical(&serial, &par, &format!("faulted {exec_name}"));
    }
    // Campaign scenarios carry plans too, through the same code path —
    // serially and on the pooled trial scheduler.
    let outcome = Campaign::new(Election::on(&g).config(cfg).faults(plan.clone()))
        .seeds([2])
        .run()
        .unwrap();
    assert_identical(&serial, &outcome.trials[0].report, "faulted campaign");
    let pooled = Campaign::new(Election::on(&g).config(cfg).faults(plan))
        .seeds([2])
        .trial_threads(2)
        .run()
        .unwrap();
    assert_identical(&serial, &pooled.trials[0].report, "faulted pooled campaign");
}

#[test]
fn builder_reports_config_errors_before_running() {
    let g = expander(32, 10);
    let bad = ElectionConfig {
        c_t: f64::NEG_INFINITY,
        ..ElectionConfig::default()
    };
    match Election::on(&g).config(bad).run() {
        Err(ConfigError::BadConstant { name: "c_t", .. }) => {}
        other => panic!("expected BadConstant for c_t, got {other:?}"),
    }
    let err = Election::on(&g)
        .config(ElectionConfig {
            max_walk_len: Some(0),
            ..ElectionConfig::default()
        })
        .run()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroWalkCap);
    // Fault plans are validated with everything else, before simulation.
    let err = Election::on(&g)
        .faults(FaultPlan::new(0).drop_rate(2.0))
        .run()
        .unwrap_err();
    assert!(matches!(err, ConfigError::Fault(_)), "{err:?}");
    let err = Campaign::new(Election::on(&g))
        .faults(FaultPlan::new(0).crash(99, 1))
        .seeds(0..1000) // would be expensive if it ran anything
        .run()
        .unwrap_err();
    assert!(matches!(err, ConfigError::Fault(_)), "{err:?}");
}
