//! API-redesign safety net: the [`Election`] builder and [`Campaign`]
//! batch layer must be **bit-identical** to the deprecated
//! `run_election*` free functions on the same `(graph, config, seed)` —
//! same leaders, same message/bit totals, same round counts — across
//! every executor choice and both sync modes.

#![allow(deprecated)]

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::congest::TransmitEvent;
use welle::core::{
    run_election, run_election_observed, run_election_threaded, run_election_threaded_observed,
    Campaign, ConfigError, Election, ElectionConfig, ElectionReport, Exec, SyncMode,
};
use welle::graph::{gen, Graph};

fn expander(n: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(gen::random_regular(n, 4, &mut rng).unwrap())
}

fn assert_identical(a: &ElectionReport, b: &ElectionReport, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    assert_eq!(a.m, b.m, "{what}: m");
    assert_eq!(a.contenders, b.contenders, "{what}: contenders");
    assert_eq!(a.leaders, b.leaders, "{what}: leaders");
    assert_eq!(a.leader_id, b.leader_id, "{what}: leader_id");
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.bits, b.bits, "{what}: bits");
    assert_eq!(a.decided_round, b.decided_round, "{what}: decided_round");
    assert_eq!(a.engine_rounds, b.engine_rounds, "{what}: engine_rounds");
    assert_eq!(a.final_walk_len, b.final_walk_len, "{what}: final_walk_len");
    assert_eq!(a.epochs_used, b.epochs_used, "{what}: epochs_used");
    assert_eq!(a.gave_up, b.gave_up, "{what}: gave_up");
    assert_eq!(a.dropped_tokens, b.dropped_tokens, "{what}: dropped_tokens");
    assert_eq!(a.broken_routes, b.broken_routes, "{what}: broken_routes");
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
}

fn configs() -> Vec<(&'static str, ElectionConfig)> {
    let base = ElectionConfig::tuned_for_simulation(96);
    vec![
        ("adaptive", base),
        (
            "fixed_t",
            ElectionConfig {
                sync: SyncMode::FixedT,
                ..base
            },
        ),
    ]
}

#[test]
fn builder_matches_run_election_across_sync_modes() {
    let g = expander(96, 5);
    for (name, cfg) in configs() {
        for seed in [1u64, 2, 3] {
            let old = run_election(&g, &cfg, seed);
            let new = Election::on(&g)
                .config(cfg)
                .seed(seed)
                .executor(Exec::Serial)
                .run()
                .unwrap();
            assert_identical(&old, &new, &format!("{name}/serial/seed {seed}"));
        }
    }
}

#[test]
fn builder_matches_run_election_threaded() {
    let g = expander(96, 6);
    for (name, cfg) in configs() {
        for threads in [1usize, 3] {
            let old = run_election_threaded(&g, &cfg, 9, threads);
            let new = Election::on(&g)
                .config(cfg)
                .seed(9)
                .executor(Exec::Threaded(threads))
                .run()
                .unwrap();
            assert_identical(&old, &new, &format!("{name}/threaded({threads})"));
        }
    }
}

#[test]
fn auto_executor_is_bit_identical_to_both() {
    let g = expander(96, 7);
    for (name, cfg) in configs() {
        let serial = run_election(&g, &cfg, 4);
        let threaded = run_election_threaded(&g, &cfg, 4, 2);
        let auto = Election::on(&g)
            .config(cfg)
            .seed(4)
            .executor(Exec::Auto)
            .run()
            .unwrap();
        assert_identical(&serial, &auto, &format!("{name}/auto vs serial"));
        assert_identical(&threaded, &auto, &format!("{name}/auto vs threaded"));
    }
}

#[test]
fn observed_variants_match_and_observers_see_the_same_traffic() {
    let g = expander(96, 8);
    let cfg = ElectionConfig::tuned_for_simulation(96);

    let mut old_events: Vec<(u64, usize)> = Vec::new();
    let mut old_obs = |ev: &TransmitEvent| old_events.push((ev.round, ev.from.index()));
    let old = run_election_observed(&g, &cfg, 11, &mut old_obs);

    let mut new_events: Vec<(u64, usize)> = Vec::new();
    let mut new_obs = |ev: &TransmitEvent| new_events.push((ev.round, ev.from.index()));
    let new = Election::on(&g)
        .config(cfg)
        .seed(11)
        .executor(Exec::Serial)
        .observer(&mut new_obs)
        .run()
        .unwrap();

    assert_identical(&old, &new, "observed/serial");
    assert_eq!(old_events, new_events, "event streams must be identical");
    assert_eq!(old_events.len() as u64, old.messages);

    let mut t_events = 0u64;
    let mut t_obs = |_: &TransmitEvent| t_events += 1;
    let old_t = run_election_threaded_observed(&g, &cfg, 11, 3, &mut t_obs);
    assert_identical(&old, &old_t, "threaded_observed vs serial observed");
    assert_eq!(t_events, old_t.messages);
}

#[test]
fn campaign_trials_match_individual_free_function_runs() {
    let g = expander(96, 9);
    let cfg = ElectionConfig::tuned_for_simulation(96);
    let outcome = Campaign::new(Election::on(&g).config(cfg))
        .seeds(20..25)
        .run()
        .unwrap();
    assert_eq!(outcome.trials.len(), 5);
    for t in &outcome.trials {
        let old = run_election(&g, &cfg, t.seed);
        assert_identical(&old, &t.report, &format!("campaign seed {}", t.seed));
    }
    let s = outcome.summary();
    assert_eq!(s.trials, 5);
    assert_eq!(
        s.successes,
        outcome
            .trials
            .iter()
            .filter(|t| t.report.is_success())
            .count()
    );
}

#[test]
fn builder_reports_config_errors_the_shims_would_panic_on() {
    let g = expander(32, 10);
    let bad = ElectionConfig {
        c_t: f64::NEG_INFINITY,
        ..ElectionConfig::default()
    };
    match Election::on(&g).config(bad).run() {
        Err(ConfigError::BadConstant { name: "c_t", .. }) => {}
        other => panic!("expected BadConstant for c_t, got {other:?}"),
    }
    let err = Election::on(&g)
        .config(ElectionConfig {
            max_walk_len: Some(0),
            ..ElectionConfig::default()
        })
        .run()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroWalkCap);
}
