//! End-to-end tests of the `welle` binary: stdout purity under `--csv`,
//! flag validation, and the interrupted-sweep → `--resume` round-trip
//! on the threaded trial scheduler. The resume test is the CI fence for
//! the campaign scheduler: it runs a multi-scenario campaign with
//! `--trial-threads 4` and verifies the manifest round-trips
//! byte-identically.

use std::path::PathBuf;
use std::process::{Command, Output};

use welle::core::{csv, Trial};

fn welle(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_welle"))
        .args(args)
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("spawn the welle binary")
}

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

#[test]
fn csv_stdout_stays_machine_readable_even_with_a_baseline() {
    let out = welle(&[
        "ring", "16", "--seeds", "2", "--cap", "32", "--csv", "--baseline", "flood",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();

    // stdout is nothing but the trial CSV: header, then uniform rows.
    let mut lines = stdout.lines();
    assert_eq!(lines.next().unwrap(), Trial::csv_header());
    let cols = Trial::csv_header().split(',').count();
    let mut rows = 0;
    for line in lines {
        let fields = csv::split_row(line).unwrap_or_else(|| panic!("bad CSV row: {line}"));
        assert_eq!(fields.len(), cols, "row: {line}");
        assert_eq!(fields[0], "ring");
        rows += 1;
    }
    assert_eq!(rows, 2, "one row per seed");

    // Everything informational — graph line, summary, baseline — went
    // to stderr instead of corrupting the stream.
    assert!(stderr.contains("graph: ring"), "{stderr}");
    assert!(stderr.contains("baseline flood-max"), "{stderr}");
}

#[test]
fn incompatible_flags_are_rejected_up_front() {
    let explicit_csv = welle(&["ring", "16", "--explicit", "--csv"]);
    assert!(!explicit_csv.status.success());
    assert!(String::from_utf8(explicit_csv.stderr)
        .unwrap()
        .contains("--csv is not supported with --explicit"));

    let lone_resume = welle(&["ring", "16", "--resume"]);
    assert!(!lone_resume.status.success());
    assert!(String::from_utf8(lone_resume.stderr)
        .unwrap()
        .contains("--resume needs --out"));

    let sweep_and_rate = welle(&["ring", "16", "--drop-sweep", "0,0.1", "--drop-rate", "0.1"]);
    assert!(!sweep_and_rate.status.success());
}

#[test]
fn latency_flags_are_validated_and_zero_matches_the_sync_run() {
    // Flag validation: the async executor excludes the sharded one, and
    // the latency sub-options need --latency.
    let both = welle(&["ring", "16", "--latency", "fixed:2", "--threads", "2"]);
    assert!(!both.status.success());
    assert!(String::from_utf8(both.stderr)
        .unwrap()
        .contains("cannot be combined with --threads"));
    let lone_rate = welle(&["ring", "16", "--service-rate", "0.5"]);
    assert!(!lone_rate.status.success());
    assert!(String::from_utf8(lone_rate.stderr)
        .unwrap()
        .contains("no effect without --latency"));
    let bad_spec = welle(&["ring", "16", "--latency", "gaussian:1"]);
    assert!(!bad_spec.status.success());

    // Bad model *parameters* surface as a config error, not a panic.
    let bad_params = welle(&["ring", "16", "--latency", "uniform:3,1"]);
    assert!(!bad_params.status.success());
    assert!(String::from_utf8(bad_params.stderr)
        .unwrap()
        .contains("latency model rejected"));

    // End to end through the CLI, --latency zero reproduces the
    // synchronous run's CSV rows bit for bit.
    let sync = welle(&["ring", "16", "--seeds", "2", "--cap", "32", "--csv"]);
    assert!(sync.status.success(), "{sync:?}");
    let zero = welle(&[
        "ring", "16", "--seeds", "2", "--cap", "32", "--csv", "--latency", "zero",
    ]);
    assert!(zero.status.success(), "{zero:?}");
    assert_eq!(
        String::from_utf8(sync.stdout).unwrap(),
        String::from_utf8(zero.stdout).unwrap(),
        "zero-latency CSV must be bit-identical to the sync executor's"
    );

    // A sampled model runs to completion and stretches virtual time
    // into the human-readable report line.
    let sampled = welle(&["ring", "16", "--cap", "32", "--latency", "lognormal:0.3,0.6"]);
    assert!(sampled.status.success(), "{sampled:?}");
    assert!(String::from_utf8(sampled.stdout).unwrap().contains("vtime="));
}

#[test]
fn interrupted_sweep_resumes_byte_identically_under_trial_threads() {
    let sweep = |out_file: &str, extra: &[&str]| {
        let mut args = vec![
            "expander",
            "48",
            "--seeds",
            "3",
            "--cap",
            "48",
            "--drop-sweep",
            "0,0.3",
            "--trial-threads",
            "4",
            "--out",
            out_file,
        ];
        args.extend_from_slice(extra);
        welle(&args)
    };

    // Uninterrupted reference run.
    let full = sweep("cli_full.csv", &[]);
    assert!(full.status.success(), "{full:?}");
    let reference = std::fs::read_to_string(tmp("cli_full.csv")).unwrap();

    // Interrupt after 4 of 6 trials, then resume to completion.
    let cut = sweep("cli_cut.csv", &["--max-trials", "4"]);
    assert!(cut.status.success(), "{cut:?}");
    assert!(String::from_utf8(cut.stderr)
        .unwrap()
        .contains("stopped after 4 of 6 trials"));
    let resumed = sweep("cli_cut.csv", &["--resume"]);
    assert!(resumed.status.success(), "{resumed:?}");
    assert!(String::from_utf8(resumed.stderr)
        .unwrap()
        .contains("resumed 4 completed trials"));

    let recovered = std::fs::read_to_string(tmp("cli_cut.csv")).unwrap();
    assert_eq!(
        recovered, reference,
        "the resumed manifest must be byte-identical to the uninterrupted run"
    );

    // The sweep labels carry commas ("p=0, expander"); they must
    // round-trip intact through the quoted CSV.
    let mut lines = reference.lines();
    assert_eq!(lines.next().unwrap(), Trial::csv_header());
    let labels: Vec<String> = lines
        .map(|l| csv::split_row(l).expect("valid row")[0].clone())
        .collect();
    assert_eq!(labels.len(), 6);
    assert!(labels[..3].iter().all(|l| l == "p=0, expander"), "{labels:?}");
    assert!(labels[3..].iter().all(|l| l == "p=0.3, expander"), "{labels:?}");
}
