//! Cross-crate integration: the election succeeds on every family the
//! paper highlights, under both sync modes and both message-size modes.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::{Election, ElectionConfig, ElectionReport, MsgSizeMode, SyncMode};
use welle::graph::{gen, Graph};

fn expander(n: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(gen::random_regular(n, 4, &mut rng).unwrap())
}

fn elect(g: &Arc<Graph>, cfg: &ElectionConfig, seed: u64) -> ElectionReport {
    Election::on(g).config(*cfg).seed(seed).run().unwrap()
}

#[test]
fn expander_unique_leader_across_seeds() {
    let g = expander(128, 1);
    let cfg = ElectionConfig::tuned_for_simulation(128);
    let mut successes = 0;
    for seed in 0..5u64 {
        let r = elect(&g, &cfg, seed);
        assert!(
            r.leaders.len() <= 1,
            "seed {seed}: never more than one leader, got {:?}",
            r.leaders
        );
        if r.is_success() {
            successes += 1;
        }
    }
    assert!(successes >= 4, "at least 4/5 seeds succeed, got {successes}");
}

#[test]
fn hypercube_unique_leader() {
    let g = Arc::new(gen::hypercube(7).unwrap()); // 128 nodes
    let cfg = ElectionConfig::tuned_for_simulation(g.n());
    let r = elect(&g, &cfg, 3);
    assert!(r.is_success(), "{:?}", r.leaders);
    assert_eq!(r.broken_routes, 0);
    // Hypercubes mix in O(log n log log n); the final guess stays small.
    assert!(r.final_walk_len <= 64, "final walk {}", r.final_walk_len);
}

#[test]
fn clique_unique_leader() {
    let g = Arc::new(gen::clique(128).unwrap());
    let cfg = ElectionConfig::tuned_for_simulation(128);
    let r = elect(&g, &cfg, 5);
    assert!(r.is_success(), "{:?}", r.leaders);
    assert!(r.final_walk_len <= 8, "cliques mix in O(1)");
}

#[test]
fn lower_bound_graph_unique_leader() {
    let mut rng = StdRng::seed_from_u64(4);
    let lb = gen::CliqueOfCliques::build(gen::CliqueOfCliquesParams::new(200, 0.3), &mut rng)
        .unwrap();
    let g = Arc::new(lb.into_graph());
    let mut cfg = ElectionConfig::tuned_for_simulation(g.n());
    cfg.max_walk_len = Some(1024); // poor conductance: allow longer guesses
    let r = elect(&g, &cfg, 2);
    assert!(r.is_success(), "{:?} gave_up={}", r.leaders, r.gave_up);
}

#[test]
fn torus_unique_leader_with_generous_cap() {
    let g = Arc::new(gen::torus2d(8, 8).unwrap());
    let mut cfg = ElectionConfig::tuned_for_simulation(g.n());
    cfg.max_walk_len = Some(1024); // t_mix = Θ(n) on the torus
    let r = elect(&g, &cfg, 1);
    assert!(r.is_success(), "{:?} gave_up={}", r.leaders, r.gave_up);
}

#[test]
fn both_sync_modes_elect() {
    let g = expander(128, 9);
    for sync in [SyncMode::FixedT, SyncMode::Adaptive] {
        let cfg = ElectionConfig {
            sync,
            ..ElectionConfig::tuned_for_simulation(128)
        };
        let r = elect(&g, &cfg, 8);
        assert!(r.is_success(), "{sync:?}: {:?}", r.leaders);
    }
}

#[test]
fn both_message_modes_elect_and_large_uses_fewer_messages() {
    let g = expander(128, 12);
    let base = ElectionConfig::tuned_for_simulation(128);
    let congest = elect(&g, &base, 6);
    let large = elect(
        &g,
        &ElectionConfig {
            msg_size: MsgSizeMode::Large,
            ..base
        },
        6,
    );
    assert!(congest.is_success() && large.is_success());
    assert!(large.messages < congest.messages);
    // But large messages carry more bits each; totals stay comparable.
    assert!(large.bits <= congest.bits * 2);
}

#[test]
fn contender_counts_track_lemma_1() {
    // Lemma 1: #contenders within [3/4, 5/4]·c1·ln n w.h.p. — loose check
    // over several seeds (small-n tails are wide; we only require the
    // average to be near c1·ln n and no extreme outliers).
    let g = expander(256, 20);
    let cfg = ElectionConfig::tuned_for_simulation(256);
    let expected = cfg.c1 * (256f64).ln();
    let mut total = 0usize;
    let seeds = 6;
    for seed in 0..seeds {
        let r = elect(&g, &cfg, 100 + seed);
        total += r.contenders;
        assert!(
            (r.contenders as f64) < 2.5 * expected,
            "seed {seed}: contender count {} way above expectation {expected}",
            r.contenders
        );
    }
    let mean = total as f64 / seeds as f64;
    assert!(
        (mean - expected).abs() < 0.5 * expected,
        "mean contenders {mean} vs expected {expected}"
    );
}

#[test]
fn decided_round_scales_with_schedule_in_fixed_t() {
    let g = expander(128, 30);
    let cfg = ElectionConfig {
        sync: SyncMode::FixedT,
        ..ElectionConfig::tuned_for_simulation(128)
    };
    let r = elect(&g, &cfg, 2);
    assert!(r.is_success());
    // Decisions happen at 4T boundaries of some epoch; the round must be
    // consistent with the epoch the run reports.
    assert!(r.decided_round > 0);
    assert!(r.epochs_used >= 1);
}
