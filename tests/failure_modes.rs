//! Tail-event and failure-injection behaviour: the implementation must
//! fail *visibly* (zero leaders, `gave_up` flags) rather than mask the
//! paper's w.h.p. caveats.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::congest::testing::all_execs;
use welle::core::{Election, ElectionConfig, ElectionReport, FaultPlan};
use welle::graph::{gen, Graph};

fn expander(n: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(gen::random_regular(n, 4, &mut rng).unwrap())
}

/// Runs the same election on every executor — failure shapes must not
/// depend on the engine — and returns the serial report after checking
/// they all agree on the visible outcome.
fn elect(g: &Arc<Graph>, cfg: &ElectionConfig, seed: u64) -> ElectionReport {
    let mut runs = all_execs().into_iter().map(|(name, exec)| {
        let r = Election::on(g)
            .config(*cfg)
            .seed(seed)
            .executor(exec)
            .run()
            .unwrap();
        (name, r)
    });
    let (_, first) = runs.next().unwrap();
    for (name, r) in runs {
        assert_eq!(r.leaders, first.leaders, "{name}: leaders");
        assert_eq!(r.messages, first.messages, "{name}: messages");
        assert_eq!(r.gave_up, first.gave_up, "{name}: gave_up");
        assert_eq!(r.outcome, first.outcome, "{name}: outcome");
    }
    first
}

#[test]
fn zero_contender_probability_elects_nobody() {
    let g = expander(64, 1);
    // An exactly-zero c1 is rejected by config validation; a denormal-
    // scale c1 drives the contender probability to effectively zero —
    // the tail event of Algorithm 1 — through the legal range.
    let cfg = ElectionConfig {
        c1: 1e-12,
        ..ElectionConfig::tuned_for_simulation(64)
    };
    let r = elect(&g, &cfg, 1);
    assert_eq!(r.contenders, 0);
    assert!(r.leaders.is_empty());
    assert!(!r.is_success());
    assert_eq!(r.messages, 0, "nobody sends anything");
}

#[test]
fn walk_cap_exhaustion_reports_gave_up() {
    // A cap of 1 cannot satisfy the distinctness property on a sparse
    // graph (1-step endpoints cluster on neighbours); contenders must
    // give up and *no* leader may be declared.
    let g = Arc::new(gen::ring(64).unwrap());
    let cfg = ElectionConfig {
        max_walk_len: Some(1),
        ..ElectionConfig::tuned_for_simulation(64)
    };
    let r = elect(&g, &cfg, 3);
    assert!(r.contenders > 0);
    assert!(r.gave_up > 0, "contenders must report giving up");
    assert!(r.leaders.is_empty(), "gave-up contenders never win");
}

#[test]
fn tiny_graphs_run_without_panicking() {
    for g in [
        Arc::new(gen::path(2).unwrap()),
        Arc::new(gen::ring(3).unwrap()),
        Arc::new(gen::clique(4).unwrap()),
        Arc::new(gen::star(5).unwrap()),
    ] {
        let cfg = ElectionConfig::tuned_for_simulation(g.n());
        // No assertion on success: thresholds are degenerate at this
        // scale; the requirement is graceful termination and ≤1 leader.
        let r = elect(&g, &cfg, 7);
        assert!(r.leaders.len() <= 1, "n={}: {:?}", g.n(), r.leaders);
    }
}

#[test]
fn contender_flood_still_elects_at_most_one() {
    // Force (nearly) every node to be a contender: stress the exchange
    // machinery far outside the Lemma 1 regime.
    let g = expander(64, 5);
    let cfg = ElectionConfig {
        c1: 200.0, // probability clamps to 1
        // With 64 contenders the intersection threshold (0.75·c1·ln n) is
        // unreachable; cap the futile doubling so the run gives up fast.
        max_walk_len: Some(8),
        msg_size: welle::core::MsgSizeMode::Large,
        ..ElectionConfig::tuned_for_simulation(64)
    };
    let r = elect(&g, &cfg, 2);
    assert_eq!(r.contenders, 64);
    assert!(r.leaders.len() <= 1, "{:?}", r.leaders);
    assert_eq!(r.gave_up, 64, "nobody can satisfy a threshold above n");
}

#[test]
fn disconnected_graph_elects_per_component() {
    // Two components: walks cannot cross, so each component behaves like
    // its own network. (The model assumes connectivity; this documents
    // the failure shape rather than hiding it.)
    let mut b = welle::graph::GraphBuilder::new(128);
    // Two cliques of 64 with no connection.
    for base in [0usize, 64] {
        for i in 0..64 {
            for j in (i + 1)..64 {
                b.add_edge(base + i, base + j).unwrap();
            }
        }
    }
    let g = Arc::new(b.build().unwrap());
    let mut cfg = ElectionConfig::tuned_for_simulation(128);
    // Thresholds are derived for n = 128, but each component has only 64
    // nodes: the properties may be unsatisfiable. Keep the give-up cheap.
    cfg.max_walk_len = Some(32);
    let r = elect(&g, &cfg, 4);
    // Each side may elect one leader: up to 2 total, never 3+.
    assert!(r.leaders.len() <= 2, "{:?}", r.leaders);
    if r.leaders.len() == 2 {
        let sides: Vec<bool> = r.leaders.iter().map(|&i| i < 64).collect();
        assert_ne!(sides[0], sides[1], "leaders must be in different components");
    }
}

#[test]
fn crashing_every_contender_elects_nobody_and_reports_it() {
    // Crash-stop the whole network (a superset of every contender) one
    // round after start-up: contenders exist, nobody can ever certify,
    // and the failure must be *visible* — zero leaders and a nonzero
    // crash count in the report — never a silently wrong answer.
    let g = expander(64, 7);
    let cfg = ElectionConfig::tuned_for_simulation(64);
    let r = Election::on(&g)
        .config(cfg)
        .seed(3)
        .faults(FaultPlan::new(0).crash_fraction(1.0, 1))
        .run()
        .unwrap();
    assert!(r.contenders > 0, "coin flips happen at round 0, before the crash");
    assert!(r.leaders.is_empty(), "dead contenders cannot win: {:?}", r.leaders);
    assert!(!r.is_success());
    assert_eq!(r.crashed, 64, "the report must surface the crash schedule");
    assert!(!r.outcome.is_done(), "a crashed network never reports done");
}

#[test]
fn heavy_drops_fail_visibly_through_gave_up() {
    // With most messages lost the Intersection/Distinctness certificates
    // are unreachable; contenders must exhaust the cap and *say so*.
    let g = expander(64, 9);
    let cfg = ElectionConfig {
        max_walk_len: Some(32), // keep the futile doubling cheap
        ..ElectionConfig::tuned_for_simulation(64)
    };
    let r = Election::on(&g)
        .config(cfg)
        .seed(5)
        .faults(FaultPlan::new(2).drop_rate(0.9))
        .run()
        .unwrap();
    assert!(r.dropped_messages > 0);
    assert!(r.leaders.len() <= 1, "{:?}", r.leaders);
    assert!(
        !r.is_success(),
        "90% loss must not elect: leaders = {:?}",
        r.leaders
    );
    assert!(r.gave_up > 0, "failure must be visible as give-ups");
}

#[test]
fn cutting_the_dumbbell_bridges_splits_the_brain() {
    // The §5 dumbbell held together by two bridges: cut both at round 0
    // and each bell runs its own isolated election — up to one leader
    // per side, never two on the same side.
    let mut rng = StdRng::seed_from_u64(11);
    let base = gen::random_regular(32, 4, &mut rng).unwrap();
    let db = gen::dumbbell(&base, &mut rng).unwrap();
    let mut plan = FaultPlan::new(0);
    let half = db.half_n();
    let graph = Arc::new(db.into_graph());
    for (_, u, v) in graph.edges() {
        if (u.index() < half) != (v.index() < half) {
            plan = plan.cut(u.index(), v.index(), 0);
        }
    }
    let cfg = ElectionConfig {
        max_walk_len: Some(64),
        ..ElectionConfig::tuned_for_simulation(graph.n())
    };
    let r = Election::on(&graph).config(cfg).seed(6).faults(plan).run().unwrap();
    assert!(r.leaders.len() <= 2, "{:?}", r.leaders);
    if r.leaders.len() == 2 {
        let sides: Vec<bool> = r.leaders.iter().map(|&i| i < half).collect();
        assert_ne!(sides[0], sides[1], "leaders must be in different halves");
    }
}

#[test]
fn zero_messages_when_alone() {
    // n = 2, contender probability clamped: degenerate but safe.
    let g = Arc::new(gen::path(2).unwrap());
    let cfg = ElectionConfig {
        c1: 1e-12, // see zero_contender_probability_elects_nobody
        ..ElectionConfig::tuned_for_simulation(2)
    };
    let r = elect(&g, &cfg, 1);
    assert_eq!(r.messages, 0);
    assert!(r.leaders.is_empty());
}
