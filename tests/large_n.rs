//! Large-`n` validation of the sublinear-round claims (ROADMAP):
//! elections at `n = 10⁵` under the sharded [`welle::congest::ThreadedEngine`],
//! with round budgets derived from the paper's `O(t_mix · log² n)` bound.
//!
//! These tests need the optimized build: they are ignored under the
//! debug profile (`cargo test -q` skips them) and run with
//! `cargo test --release --test large_n`. The clique-of-cliques case
//! additionally takes ~10 minutes and is always opt-in:
//! `cargo test --release --test large_n -- --ignored`.
//!
//! Reference numbers from these runs are recorded in
//! `results/large_n_rounds.md` and `BENCH_NOTES.md`.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle::congest::{LatencyModel, TelemetryConfig};
use welle::core::{Campaign, CampaignSummary, Election, ElectionConfig, Exec, FaultPlan, Trial};
use welle::graph::gen::{self, CliqueOfCliques, CliqueOfCliquesParams};
use welle::graph::Graph;

const N: usize = 100_000;

/// CSV rows captured before the packed-message/SoA/bounded-arena engine
/// rewrite (at commit `4f8d1b9`), with the exact recipe below. Any drift
/// in these rows means the memory-layout work changed an observable —
/// message bits, delivery order, RNG consumption — and is a bug.
const GOLDEN_ROWS: [(&str, u64, &str); 6] = [
    (
        "hypercube4",
        3,
        "16,32,10,1,63443,3714,126515,243,254,4,3,0,0,0,254,11,49,76,102,16,137,624,1208,1473,272,true",
    ),
    (
        "hypercube4",
        11,
        "16,32,9,1,61900,6043,212523,533,539,16,5,0,0,0,539,39,140,100,234,26,302,1245,1965,2287,244,true",
    ),
    (
        "ring24",
        5,
        "24,24,15,1,329768,170920,7458220,8194,8208,256,9,0,0,0,8208,692,2067,530,4715,204,10908,39636,17068,99692,3616,true",
    ),
    (
        "torus4x5",
        7,
        "20,40,15,1,157240,19074,748271,786,793,16,5,0,0,0,793,45,150,226,340,32,688,3068,6930,7801,587,true",
    ),
    (
        "rr48x4",
        1,
        "48,96,15,1,5102334,84694,4194448,1850,1859,32,6,0,0,0,1859,98,413,354,950,44,3441,14738,27126,37139,2250,true",
    ),
    (
        "clique12",
        9,
        "12,66,9,1,19484,1978,63271,144,148,4,3,0,0,0,148,11,33,41,51,12,89,380,686,720,103,true",
    ),
];

fn golden_graph(name: &str) -> Arc<Graph> {
    match name {
        "hypercube4" => Arc::new(gen::hypercube(4).unwrap()),
        "ring24" => Arc::new(gen::ring(24).unwrap()),
        "torus4x5" => Arc::new(gen::torus2d(4, 5).unwrap()),
        "rr48x4" => {
            let mut rng = StdRng::seed_from_u64(11);
            Arc::new(gen::random_regular(48, 4, &mut rng).unwrap())
        }
        "clique12" => Arc::new(gen::clique(12).unwrap()),
        other => panic!("unknown golden graph {other}"),
    }
}

fn golden_row(name: &str, seed: u64, exec: Exec) -> String {
    let g = golden_graph(name);
    Election::on(&g)
        .config(ElectionConfig::tuned_for_simulation(g.n()))
        .seed(seed)
        .executor(exec)
        .telemetry(TelemetryConfig::default())
        .run()
        .unwrap()
        .csv_row()
}

#[test]
fn golden_rows_are_unchanged_since_the_pre_rewrite_engine() {
    for (name, seed, want) in GOLDEN_ROWS {
        let got = golden_row(name, seed, Exec::Serial);
        assert_eq!(got, want, "{name}/{seed}: serial engine drifted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every executor — over its whole configuration space of worker
    /// counts — must reproduce the pinned pre-rewrite rows exactly.
    #[test]
    fn golden_rows_hold_on_every_executor(
        case in 0usize..GOLDEN_ROWS.len(),
        workers in 1usize..5,
        use_async in any::<bool>(),
    ) {
        let (name, seed, want) = GOLDEN_ROWS[case];
        let exec = if use_async {
            Exec::Async(LatencyModel::zero())
        } else {
            Exec::Threaded(workers)
        };
        let got = golden_row(name, seed, exec);
        prop_assert_eq!(got, want, "{}/{}: {:?} drifted", name, seed, exec);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs the release profile")]
fn ring_10m_loads_in_compressed_csr() {
    // Tentpole acceptance: an n = 10⁷ sparse graph loads on this host.
    // The u32 CSR (4-byte offsets, four 4-byte struct-of-arrays columns
    // per directed edge) keeps the resident graph near 360 MB where the
    // old usize/array-of-structs layout needed about a gigabyte.
    let n = 10_000_000;
    let g = gen::ring(n).unwrap();
    assert_eq!(g.n(), n);
    assert_eq!(g.m(), n);
    assert_eq!(g.directed_edge_count(), 2 * n);
    // Port round-trips at both ends of the index range exercise the
    // derived directed-source decoding over the full u32 span.
    for u in [0usize, 1, n / 2, n - 1] {
        let u = welle::graph::NodeId::new(u);
        for p in g.ports(u) {
            let v = g.neighbor(u, p);
            let q = g.reverse_port(u, p);
            assert_eq!(g.neighbor(v, q), u);
            let dir = g.directed_index(u, p);
            assert_eq!(g.directed_source(dir), (u, p));
            assert_eq!(g.directed_target(dir), (v, q));
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs the release profile (≈70 s optimized)")]
fn expander_100k_elects_within_round_budget() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = Arc::new(gen::random_regular(N, 6, &mut rng).unwrap());
    let cfg = ElectionConfig::tuned_for_simulation(N);
    let report = Election::on(&g)
        .config(cfg)
        .seed(7)
        .executor(Exec::Threaded(4))
        .run()
        .unwrap();
    assert!(
        report.is_success(),
        "leaders = {:?}, contenders = {}, gave_up = {}",
        report.leaders,
        report.contenders,
        report.gave_up
    );
    assert_eq!(report.broken_routes, 0, "routing must never break");
    // Sublinear rounds: a 6-regular expander mixes in O(log n), so the
    // election must finish well below n rounds (observed ≈ 36k; the
    // budget is 2× the observation and still < 0.8·n).
    assert!(
        report.engine_rounds < 80_000,
        "{} rounds blows the expander budget",
        report.engine_rounds
    );
    // Guess-and-double must stop at a walk length O(t_mix) — far below
    // the cap — on a well-connected graph.
    assert!(
        report.final_walk_len <= 64,
        "final walk length {} too large for an expander",
        report.final_walk_len
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs the release profile")]
fn threaded_election_matches_serial_at_scale() {
    // The engines must produce identical elections — leader, messages,
    // rounds — at a size where sharding actually engages.
    let n = 4096;
    let mut rng = StdRng::seed_from_u64(9);
    let g = Arc::new(gen::random_regular(n, 4, &mut rng).unwrap());
    let cfg = ElectionConfig::tuned_for_simulation(n);
    let serial = Election::on(&g)
        .config(cfg)
        .seed(13)
        .executor(Exec::Serial)
        .run()
        .unwrap();
    let threaded = Election::on(&g)
        .config(cfg)
        .seed(13)
        .executor(Exec::Threaded(4))
        .run()
        .unwrap();
    assert_eq!(serial.leaders, threaded.leaders);
    assert_eq!(serial.leader_id, threaded.leader_id);
    assert_eq!(serial.messages, threaded.messages);
    assert_eq!(serial.bits, threaded.bits);
    assert_eq!(serial.engine_rounds, threaded.engine_rounds);
    assert_eq!(serial.decided_round, threaded.decided_round);
    assert!(serial.is_success());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs the release profile (≈200 trials × 3 runs)")]
fn drop_rate_sweep_of_200_trials_is_bit_identical_at_any_thread_count() {
    // The ISSUE acceptance sweep: 4 drop rates × 50 seeds = 200 trials,
    // run serially and on 2- and 4-worker trial pools. Every per-trial
    // CSV row and every summary row must come out byte-identical, and
    // the pools must reuse engines (at most one construction per
    // worker) instead of building one per trial.
    let mut rng = StdRng::seed_from_u64(21);
    let g = Arc::new(gen::random_regular(128, 4, &mut rng).unwrap());
    let cfg = ElectionConfig {
        max_walk_len: Some(64), // keep heavily-faulted give-ups cheap
        ..ElectionConfig::tuned_for_simulation(128)
    };
    let sweep = |workers: usize| {
        let mut campaign = Campaign::new(Election::on(&g).config(cfg));
        for p in [0.0f64, 0.05, 0.1, 0.2] {
            campaign = campaign.scenario(format!("p={p}, expander"), &g, cfg);
            if p > 0.0 {
                campaign = campaign.faults(FaultPlan::new(9).drop_rate(p));
            }
        }
        campaign
            .without_base()
            .seeds(0..50)
            .trial_threads(workers)
            .run()
            .unwrap()
    };
    let serial = sweep(1);
    assert_eq!(serial.trials.len(), 200);
    assert_eq!(serial.engines_built, 1, "one pooled engine serves all 200");
    let rows = |o: &welle::core::CampaignReport| -> (Vec<String>, Vec<String>) {
        (
            o.trials.iter().map(Trial::csv_row).collect(),
            o.summaries.iter().map(CampaignSummary::csv_row).collect(),
        )
    };
    let expect = rows(&serial);
    for workers in [2usize, 4] {
        let pooled = sweep(workers);
        assert_eq!(rows(&pooled), expect, "workers = {workers}");
        assert!(
            pooled.engines_built <= workers,
            "{} engines for {workers} workers",
            pooled.engines_built
        );
    }
}

#[test]
#[ignore = "≈15 min optimized on one core; run with --release -- --ignored"]
fn expander_1m_elects_within_memory_budget() {
    // The memory-wall acceptance run: a full election at n = 10⁶ on a
    // 6-regular expander, single-threaded, must complete on this
    // container — and stay under a stated peak for the engine's
    // recycling message arena. The budget is ≈1.5× the observed peak of
    // 28 353 208 slots ≈ 1.0 GiB at 36 B/slot (see
    // `results/large_n_rounds.md` for the measured row).
    const PEAK_ARENA_BUDGET: u64 = 42_000_000;
    let n = 1_000_000;
    let mut rng = StdRng::seed_from_u64(42);
    let g = Arc::new(gen::random_regular(n, 6, &mut rng).unwrap());
    let cfg = ElectionConfig::tuned_for_simulation(n);
    let report = Election::on(&g)
        .config(cfg)
        .seed(7)
        .executor(Exec::Serial)
        .run()
        .unwrap();
    eprintln!(
        "n=10^6 expander: rounds={} messages={} peak_arena_slots={} walk_len={}",
        report.engine_rounds, report.messages, report.peak_arena_slots, report.final_walk_len
    );
    assert!(
        report.is_success(),
        "leaders = {:?}, contenders = {}, gave_up = {}",
        report.leaders,
        report.contenders,
        report.gave_up
    );
    assert_eq!(report.broken_routes, 0, "routing must never break");
    assert!(
        report.peak_arena_slots < PEAK_ARENA_BUDGET,
        "{} arena slots blows the n=10^6 memory budget",
        report.peak_arena_slots
    );
}

#[test]
#[ignore = "≈10 min optimized; run with --release -- --ignored"]
fn clique_of_cliques_100k_elects_within_round_budget() {
    let mut rng = StdRng::seed_from_u64(42);
    let lb = CliqueOfCliques::build(CliqueOfCliquesParams::new(N, 0.1), &mut rng).unwrap();
    let g = Arc::new(lb.into_graph());
    assert_eq!(g.n(), N);
    let cfg = ElectionConfig::tuned_for_simulation(g.n());
    let report = Election::on(&g)
        .config(cfg)
        .seed(7)
        .executor(Exec::Threaded(4))
        .run()
        .unwrap();
    assert!(
        report.is_success(),
        "leaders = {:?}, contenders = {}, gave_up = {}",
        report.leaders,
        report.contenders,
        report.gave_up
    );
    // Conductance Θ(n^{-0.2}) mixes slower than the expander, but the
    // election must still finish in rounds linear-ish in t_mix·log²n
    // (observed ≈ 101k; budget 2.5×).
    assert!(
        report.engine_rounds < 250_000,
        "{} rounds blows the clique-of-cliques budget",
        report.engine_rounds
    );
}
