//! Large-`n` validation of the sublinear-round claims (ROADMAP):
//! elections at `n = 10⁵` under the sharded [`welle::congest::ThreadedEngine`],
//! with round budgets derived from the paper's `O(t_mix · log² n)` bound.
//!
//! These tests need the optimized build: they are ignored under the
//! debug profile (`cargo test -q` skips them) and run with
//! `cargo test --release --test large_n`. The clique-of-cliques case
//! additionally takes ~10 minutes and is always opt-in:
//! `cargo test --release --test large_n -- --ignored`.
//!
//! Reference numbers from these runs are recorded in
//! `results/large_n_rounds.md` and `BENCH_NOTES.md`.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::{Campaign, CampaignSummary, Election, ElectionConfig, Exec, FaultPlan, Trial};
use welle::graph::gen::{self, CliqueOfCliques, CliqueOfCliquesParams};

const N: usize = 100_000;

#[test]
#[cfg_attr(debug_assertions, ignore = "needs the release profile (≈70 s optimized)")]
fn expander_100k_elects_within_round_budget() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = Arc::new(gen::random_regular(N, 6, &mut rng).unwrap());
    let cfg = ElectionConfig::tuned_for_simulation(N);
    let report = Election::on(&g)
        .config(cfg)
        .seed(7)
        .executor(Exec::Threaded(4))
        .run()
        .unwrap();
    assert!(
        report.is_success(),
        "leaders = {:?}, contenders = {}, gave_up = {}",
        report.leaders,
        report.contenders,
        report.gave_up
    );
    assert_eq!(report.broken_routes, 0, "routing must never break");
    // Sublinear rounds: a 6-regular expander mixes in O(log n), so the
    // election must finish well below n rounds (observed ≈ 36k; the
    // budget is 2× the observation and still < 0.8·n).
    assert!(
        report.engine_rounds < 80_000,
        "{} rounds blows the expander budget",
        report.engine_rounds
    );
    // Guess-and-double must stop at a walk length O(t_mix) — far below
    // the cap — on a well-connected graph.
    assert!(
        report.final_walk_len <= 64,
        "final walk length {} too large for an expander",
        report.final_walk_len
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs the release profile")]
fn threaded_election_matches_serial_at_scale() {
    // The engines must produce identical elections — leader, messages,
    // rounds — at a size where sharding actually engages.
    let n = 4096;
    let mut rng = StdRng::seed_from_u64(9);
    let g = Arc::new(gen::random_regular(n, 4, &mut rng).unwrap());
    let cfg = ElectionConfig::tuned_for_simulation(n);
    let serial = Election::on(&g)
        .config(cfg)
        .seed(13)
        .executor(Exec::Serial)
        .run()
        .unwrap();
    let threaded = Election::on(&g)
        .config(cfg)
        .seed(13)
        .executor(Exec::Threaded(4))
        .run()
        .unwrap();
    assert_eq!(serial.leaders, threaded.leaders);
    assert_eq!(serial.leader_id, threaded.leader_id);
    assert_eq!(serial.messages, threaded.messages);
    assert_eq!(serial.bits, threaded.bits);
    assert_eq!(serial.engine_rounds, threaded.engine_rounds);
    assert_eq!(serial.decided_round, threaded.decided_round);
    assert!(serial.is_success());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs the release profile (≈200 trials × 3 runs)")]
fn drop_rate_sweep_of_200_trials_is_bit_identical_at_any_thread_count() {
    // The ISSUE acceptance sweep: 4 drop rates × 50 seeds = 200 trials,
    // run serially and on 2- and 4-worker trial pools. Every per-trial
    // CSV row and every summary row must come out byte-identical, and
    // the pools must reuse engines (at most one construction per
    // worker) instead of building one per trial.
    let mut rng = StdRng::seed_from_u64(21);
    let g = Arc::new(gen::random_regular(128, 4, &mut rng).unwrap());
    let cfg = ElectionConfig {
        max_walk_len: Some(64), // keep heavily-faulted give-ups cheap
        ..ElectionConfig::tuned_for_simulation(128)
    };
    let sweep = |workers: usize| {
        let mut campaign = Campaign::new(Election::on(&g).config(cfg));
        for p in [0.0f64, 0.05, 0.1, 0.2] {
            campaign = campaign.scenario(format!("p={p}, expander"), &g, cfg);
            if p > 0.0 {
                campaign = campaign.faults(FaultPlan::new(9).drop_rate(p));
            }
        }
        campaign
            .without_base()
            .seeds(0..50)
            .trial_threads(workers)
            .run()
            .unwrap()
    };
    let serial = sweep(1);
    assert_eq!(serial.trials.len(), 200);
    assert_eq!(serial.engines_built, 1, "one pooled engine serves all 200");
    let rows = |o: &welle::core::CampaignReport| -> (Vec<String>, Vec<String>) {
        (
            o.trials.iter().map(Trial::csv_row).collect(),
            o.summaries.iter().map(CampaignSummary::csv_row).collect(),
        )
    };
    let expect = rows(&serial);
    for workers in [2usize, 4] {
        let pooled = sweep(workers);
        assert_eq!(rows(&pooled), expect, "workers = {workers}");
        assert!(
            pooled.engines_built <= workers,
            "{} engines for {workers} workers",
            pooled.engines_built
        );
    }
}

#[test]
#[ignore = "≈10 min optimized; run with --release -- --ignored"]
fn clique_of_cliques_100k_elects_within_round_budget() {
    let mut rng = StdRng::seed_from_u64(42);
    let lb = CliqueOfCliques::build(CliqueOfCliquesParams::new(N, 0.1), &mut rng).unwrap();
    let g = Arc::new(lb.into_graph());
    assert_eq!(g.n(), N);
    let cfg = ElectionConfig::tuned_for_simulation(g.n());
    let report = Election::on(&g)
        .config(cfg)
        .seed(7)
        .executor(Exec::Threaded(4))
        .run()
        .unwrap();
    assert!(
        report.is_success(),
        "leaders = {:?}, contenders = {}, gave_up = {}",
        report.leaders,
        report.contenders,
        report.gave_up
    );
    // Conductance Θ(n^{-0.2}) mixes slower than the expander, but the
    // election must still finish in rounds linear-ish in t_mix·log²n
    // (observed ≈ 101k; budget 2.5×).
    assert!(
        report.engine_rounds < 250_000,
        "{} rounds blows the clique-of-cliques budget",
        report.engine_rounds
    );
}
