//! Cross-crate checks that the CONGEST simulator implements the paper's
//! model on real generated topologies.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::congest::testing::{BfsWave, FloodMax};
use welle::congest::{Engine, EngineConfig, RecordingObserver, ThreadedEngine};
use welle::graph::{analysis, gen, NodeId};

#[test]
fn bfs_wave_timing_matches_graph_distances_on_families() {
    for g in [
        Arc::new(gen::hypercube(6).unwrap()),
        Arc::new(gen::torus2d(6, 7).unwrap()),
        Arc::new(gen::binary_tree(63).unwrap()),
    ] {
        let root = 3usize;
        let nodes = (0..g.n()).map(|i| BfsWave::new(i == root)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
        assert!(e.run(10_000).is_done());
        let dist = analysis::bfs(&g, NodeId::new(root));
        for (i, node) in e.nodes().iter().enumerate() {
            assert_eq!(node.level(), Some(dist[i] as u64), "node {i}");
        }
    }
}

#[test]
fn serial_and_threaded_engines_agree_on_expanders() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = Arc::new(gen::random_regular(64, 4, &mut rng).unwrap());
    let cfg = EngineConfig {
        seed: 5,
        bandwidth_bits: None,
    };
    let mk = || (0..64).map(|i| FloodMax::new((i * 13 % 64) as u64)).collect::<Vec<_>>();
    let mut serial = Engine::new(Arc::clone(&g), mk(), cfg);
    let mut threaded = ThreadedEngine::new(Arc::clone(&g), mk(), cfg, 4);
    serial.run(100_000);
    threaded.run(100_000);
    assert_eq!(serial.metrics().messages, threaded.metrics().messages);
    for (a, b) in serial.nodes().iter().zip(threaded.nodes()) {
        assert_eq!(a.best(), b.best());
    }
}

#[test]
fn message_rounds_respect_edge_serialization() {
    // On a star, the hub answering k leaves needs k rounds per leaf-edge
    // at most 1 message per round; verify via the observer that no
    // (edge, round, direction) pair repeats.
    let g = Arc::new(gen::star(9).unwrap());
    let nodes = (0..9).map(|i| FloodMax::new(i as u64)).collect();
    let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
    let mut rec = RecordingObserver::default();
    e.run_observed(10_000, &mut rec);
    let mut seen = std::collections::HashSet::new();
    for ev in &rec.events {
        assert!(
            seen.insert((ev.round, ev.from, ev.edge)),
            "two messages on one directed edge in round {}",
            ev.round
        );
    }
}

#[test]
fn anonymous_ports_hide_neighbors() {
    // Structural: reverse ports on shuffled graphs are consistent but
    // asymmetric somewhere (a symmetric port numbering on an asymmetric
    // graph is overwhelmingly unlikely after shuffling).
    let mut rng = StdRng::seed_from_u64(8);
    let g = gen::random_regular(32, 3, &mut rng).unwrap();
    let mut asymmetric = 0;
    for u in g.nodes() {
        for p in g.ports(u) {
            let q = g.reverse_port(u, p);
            if q != p {
                asymmetric += 1;
            }
        }
    }
    assert!(asymmetric > 0, "port mappings should not be symmetric");
}

#[test]
fn safety_holds_across_latency_models_and_drop_rates() {
    // The safety census under the latency axis: whatever the latency
    // model — fixed skew, uniform jitter, heavy-tailed log-normal, or
    // hub congestion via a sub-unit service rate — composed with
    // message drops, an election must never certify two leaders.
    // Liveness is allowed to fail (visible give-ups); safety is not.
    use welle::core::{Election, ElectionConfig, Exec, FaultPlan, LatencyModel};
    let mut rng = StdRng::seed_from_u64(17);
    let g = Arc::new(gen::random_regular(48, 4, &mut rng).unwrap());
    let cfg = ElectionConfig {
        max_walk_len: Some(64), // keep faulted give-ups cheap
        ..ElectionConfig::tuned_for_simulation(48)
    };
    let models = [
        ("fixed", LatencyModel::fixed(2.0)),
        ("uniform", LatencyModel::uniform(0.0, 3.0)),
        ("lognormal", LatencyModel::log_normal(0.4, 0.7)),
        ("congested", LatencyModel::uniform(0.5, 1.5).service_rate(0.5)),
    ];
    for (name, model) in models {
        for drop_rate in [0.0, 0.1, 0.3] {
            for seed in [1u64, 2] {
                let mut e = Election::on(&g)
                    .config(cfg)
                    .seed(seed)
                    .executor(Exec::Async(model.seed(seed ^ 0xD1CE)));
                if drop_rate > 0.0 {
                    e = e.faults(FaultPlan::new(seed).drop_rate(drop_rate));
                }
                let r = e.run().unwrap();
                assert!(
                    r.leaders.len() <= 1,
                    "{name}/p={drop_rate}/seed {seed}: leaders = {:?}",
                    r.leaders
                );
                assert!(
                    r.virtual_time >= r.engine_rounds as f64,
                    "{name}: virtual time can only stretch past the round clock"
                );
            }
        }
    }
}

#[test]
fn observer_totals_match_metrics_on_election() {
    use welle::core::{Election, ElectionConfig};
    let mut rng = StdRng::seed_from_u64(2);
    let g = Arc::new(gen::random_regular(64, 4, &mut rng).unwrap());
    let cfg = ElectionConfig::tuned_for_simulation(64);
    let mut count = 0u64;
    let mut obs = |_ev: &welle::congest::TransmitEvent| count += 1;
    let report = Election::on(&g)
        .config(cfg)
        .seed(3)
        .observer(&mut obs)
        .run()
        .unwrap();
    assert_eq!(count, report.messages);
}
