//! `welle` — a full reproduction of *Leader Election in Well-Connected
//! Graphs* (Gilbert, Robinson, Sourav; PODC 2018).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — port-numbered graphs, generators (expanders, hypercubes,
//!   cliques, the §4.1 lower-bound construction, §5 dumbbells), and
//!   conductance/spectral analysis,
//! * [`congest`] — the synchronous CONGEST simulator (with opt-in
//!   deterministic fault injection: drops, crashes, delays, cuts),
//! * [`walks`] — lazy random walks, mixing times, walk-trail routing,
//! * [`core`] — the election algorithm, explicit election, baselines,
//! * [`lowerbound`] — the §4/§5 lower-bound experiment machinery.
//!
//! # Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use welle::core::{Campaign, Election, ElectionConfig};
//! use welle::graph::gen;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = Arc::new(gen::random_regular(512, 4, &mut rng).unwrap());
//! let cfg = ElectionConfig::tuned_for_simulation(512);
//!
//! // One election: the builder validates, picks an executor, runs.
//! let report = Election::on(&g).config(cfg).seed(1).run().unwrap();
//! assert!(report.is_success());
//!
//! // Many elections: a campaign over seeds, with aggregate statistics.
//! let outcome = Campaign::new(Election::on(&g).config(cfg))
//!     .seeds(0..10)
//!     .run()
//!     .unwrap();
//! println!("{}", outcome.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use welle_congest as congest;
pub use welle_core as core;
pub use welle_graph as graph;
pub use welle_lowerbound as lowerbound;
pub use welle_walks as walks;
