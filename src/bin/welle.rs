//! `welle` command-line runner: elect a leader on a generated topology
//! and print the report, with optional baselines, fault sweeps, and
//! explicit election.
//!
//! ```sh
//! cargo run --release --bin welle -- expander 512 --seeds 5
//! cargo run --release --bin welle -- hypercube 256 --large --fixed-t
//! cargo run --release --bin welle -- ring 64 --baseline hs
//! cargo run --release --bin welle -- clique 128 --explicit
//! cargo run --release --bin welle -- lb 500 --eps 0.3
//! # thousands of elections in flight, streamed and resumable:
//! cargo run --release --bin welle -- expander 256 --seeds 50 \
//!     --drop-sweep 0,0.05,0.1,0.2 --trial-threads 4 --out sweep.csv
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::baselines::{run_flood_max, run_hirschberg_sinclair, run_known_tmix_election};
use welle::core::broadcast::run_explicit_election;
use welle::core::export::{phase_table, profile_table, write_round_log, write_samples_jsonl};
use welle::core::{
    Campaign, Election, ElectionConfig, Exec, FaultPlan, LatencyModel, MsgSizeMode, SyncMode,
    TelemetryConfig, Trial,
};
use welle::graph::{gen, Graph};
use welle::walks::{mixing_time, MixingOptions, StartPolicy};

struct Args {
    family: String,
    n: usize,
    seed: u64,
    seeds: usize,
    eps: f64,
    fixed_t: bool,
    large: bool,
    cap: Option<u32>,
    explicit: bool,
    csv: bool,
    threads: Option<usize>,
    latency: Option<LatencyModel>,
    latency_seed: Option<u64>,
    service_rate: Option<f64>,
    trial_threads: Option<usize>,
    out: Option<PathBuf>,
    resume: bool,
    max_trials: Option<usize>,
    drop_sweep: Option<Vec<f64>>,
    round_log: Option<PathBuf>,
    phase_table: bool,
    profile: bool,
    baseline: Option<String>,
    drop_rate: Option<f64>,
    crash: Option<f64>,
    crash_at: Option<u64>,
    fault_seed: Option<u64>,
}

fn usage() -> &'static str {
    "usage: welle <family> <n> [options]\n\
     families: expander | hypercube | clique | torus | ring | gnp | lb\n\
     options:\n\
       --seed S          first seed (default 1)\n\
       --seeds K         number of seeded runs (default 1)\n\
       --eps E           epsilon for the lb family (default 0.3)\n\
       --fixed-t         paper-faithful fixed-T schedule (default adaptive)\n\
       --large           O(log^3 n) messages (default CONGEST)\n\
       --cap L           walk-length cap\n\
       --threads K       force the sharded executor with K workers\n\
                         (default: auto — serial unless large, dense, multicore)\n\
       --latency SPEC    run on the async executor under a latency model:\n\
                         zero | fixed:X | uniform:LO,HI | lognormal:MU,SIGMA\n\
                         (latencies in rounds; not combinable with --threads)\n\
       --latency-seed S  seed of the latency sampler (default: --seed)\n\
       --service-rate R  per-edge service rate in (0, 1]; rates below 1\n\
                         queue messages at busy edges (needs --latency)\n\
       --trial-threads K run trials on K pooled worker threads; output is\n\
                         bit-identical to the serial loop at any K\n\
       --out FILE        stream per-trial CSV rows to FILE (flushed per\n\
                         trial; doubles as the --resume manifest)\n\
       --resume          with --out: skip trials already completed in FILE\n\
                         and restart at the first missing one\n\
       --max-trials N    stop after the first N trials (deterministic cut;\n\
                         finish later with --resume)\n\
       --drop-sweep P,.. sweep message drop rates: one scenario per rate\n\
                         (0 = fault-free control)\n\
       --round-log FILE  write the run's per-round telemetry stream to\n\
                         FILE — CSV, or JSONL when FILE ends in .jsonl\n\
                         (single trial only; identical on every executor)\n\
       --phase-table     print the per-phase round/message breakdown for\n\
                         each trial (stderr under --csv)\n\
       --profile         profile the engine's internal stages and print\n\
                         the span table per trial (stderr under --csv)\n\
       --csv             per-trial CSV rows on stdout instead of\n\
                         human-readable lines\n\
       --explicit        run explicit election (adds push-pull broadcast)\n\
       --baseline B      also run a baseline: flood | hs | known-tmix\n\
                         (with --csv its lines go to stderr)\n\
       --drop-rate P     lose each message in transit with probability P\n\
       --crash F         crash-stop a random fraction F of nodes\n\
       --crash-at R      round at which --crash strikes (default 1)\n\
       --fault-seed S    seed of the fault schedule (default: --seed)"
}

/// Parses a `--latency` spec: `zero`, `fixed:X`, `uniform:LO,HI`, or
/// `lognormal:MU,SIGMA`. Seed and service rate are layered on by the
/// caller; parameter *values* are validated by the election builder.
fn parse_latency(spec: &str) -> Result<LatencyModel, String> {
    if spec == "zero" {
        return Ok(LatencyModel::zero());
    }
    let (kind, rest) = spec.split_once(':').ok_or_else(|| {
        format!("bad latency spec {spec} (want zero | fixed:X | uniform:LO,HI | lognormal:MU,SIGMA)")
    })?;
    let nums = |k: usize| -> Result<Vec<f64>, String> {
        let v = rest
            .split(',')
            .map(|x| x.trim().parse::<f64>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| format!("bad latency parameters in {spec}"))?;
        if v.len() != k {
            return Err(format!("latency spec {spec}: expected {k} parameter(s)"));
        }
        Ok(v)
    };
    match kind {
        "fixed" => Ok(LatencyModel::fixed(nums(1)?[0])),
        "uniform" => {
            let v = nums(2)?;
            Ok(LatencyModel::uniform(v[0], v[1]))
        }
        "lognormal" => {
            let v = nums(2)?;
            Ok(LatencyModel::log_normal(v[0], v[1]))
        }
        other => Err(format!(
            "unknown latency kind {other} (want zero | fixed | uniform | lognormal)"
        )),
    }
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        return Err(usage().to_string());
    }
    let mut args = Args {
        family: argv[0].clone(),
        n: argv[1].parse().map_err(|_| format!("bad n: {}", argv[1]))?,
        seed: 1,
        seeds: 1,
        eps: 0.3,
        fixed_t: false,
        large: false,
        cap: None,
        explicit: false,
        csv: false,
        threads: None,
        latency: None,
        latency_seed: None,
        service_rate: None,
        trial_threads: None,
        out: None,
        resume: false,
        max_trials: None,
        drop_sweep: None,
        round_log: None,
        phase_table: false,
        profile: false,
        baseline: None,
        drop_rate: None,
        crash: None,
        crash_at: None,
        fault_seed: None,
    };
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).ok_or("--seed needs a value")?.parse().map_err(|_| "bad seed")?;
            }
            "--seeds" => {
                i += 1;
                args.seeds = argv.get(i).ok_or("--seeds needs a value")?.parse().map_err(|_| "bad seeds")?;
            }
            "--eps" => {
                i += 1;
                args.eps = argv.get(i).ok_or("--eps needs a value")?.parse().map_err(|_| "bad eps")?;
            }
            "--cap" => {
                i += 1;
                args.cap = Some(argv.get(i).ok_or("--cap needs a value")?.parse().map_err(|_| "bad cap")?);
            }
            "--baseline" => {
                i += 1;
                args.baseline = Some(argv.get(i).ok_or("--baseline needs a value")?.clone());
            }
            "--threads" => {
                i += 1;
                args.threads = Some(
                    argv.get(i)
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|_| "bad threads")?,
                );
            }
            "--latency" => {
                i += 1;
                args.latency = Some(parse_latency(
                    argv.get(i).ok_or("--latency needs a value")?,
                )?);
            }
            "--latency-seed" => {
                i += 1;
                args.latency_seed = Some(
                    argv.get(i)
                        .ok_or("--latency-seed needs a value")?
                        .parse()
                        .map_err(|_| "bad latency seed")?,
                );
            }
            "--service-rate" => {
                i += 1;
                args.service_rate = Some(
                    argv.get(i)
                        .ok_or("--service-rate needs a value")?
                        .parse()
                        .map_err(|_| "bad service rate")?,
                );
            }
            "--trial-threads" => {
                i += 1;
                args.trial_threads = Some(
                    argv.get(i)
                        .ok_or("--trial-threads needs a value")?
                        .parse()
                        .map_err(|_| "bad trial threads")?,
                );
            }
            "--out" => {
                i += 1;
                args.out = Some(PathBuf::from(argv.get(i).ok_or("--out needs a value")?));
            }
            "--max-trials" => {
                i += 1;
                args.max_trials = Some(
                    argv.get(i)
                        .ok_or("--max-trials needs a value")?
                        .parse()
                        .map_err(|_| "bad max trials")?,
                );
            }
            "--drop-sweep" => {
                i += 1;
                let list = argv.get(i).ok_or("--drop-sweep needs a value")?;
                let rates = list
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("bad drop-sweep list: {list}"))?;
                if rates.is_empty() {
                    return Err("--drop-sweep needs at least one rate".to_string());
                }
                args.drop_sweep = Some(rates);
            }
            "--drop-rate" => {
                i += 1;
                args.drop_rate = Some(
                    argv.get(i)
                        .ok_or("--drop-rate needs a value")?
                        .parse()
                        .map_err(|_| "bad drop rate")?,
                );
            }
            "--crash" => {
                i += 1;
                args.crash = Some(
                    argv.get(i)
                        .ok_or("--crash needs a value")?
                        .parse()
                        .map_err(|_| "bad crash fraction")?,
                );
            }
            "--crash-at" => {
                i += 1;
                args.crash_at = Some(
                    argv.get(i)
                        .ok_or("--crash-at needs a value")?
                        .parse()
                        .map_err(|_| "bad crash round")?,
                );
            }
            "--fault-seed" => {
                i += 1;
                args.fault_seed = Some(
                    argv.get(i)
                        .ok_or("--fault-seed needs a value")?
                        .parse()
                        .map_err(|_| "bad fault seed")?,
                );
            }
            "--round-log" => {
                i += 1;
                args.round_log =
                    Some(PathBuf::from(argv.get(i).ok_or("--round-log needs a value")?));
            }
            "--phase-table" => args.phase_table = true,
            "--profile" => args.profile = true,
            "--fixed-t" => args.fixed_t = true,
            "--large" => args.large = true,
            "--csv" => args.csv = true,
            "--explicit" => args.explicit = true,
            "--resume" => args.resume = true,
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
        i += 1;
    }
    if args.explicit && args.csv {
        return Err("--csv is not supported with --explicit".to_string());
    }
    if args.explicit && args.threads.is_some() {
        return Err("--threads is not supported with --explicit".to_string());
    }
    if args.latency.is_some() && args.threads.is_some() {
        return Err(
            "--latency picks the async executor; it cannot be combined with --threads"
                .to_string(),
        );
    }
    if args.latency.is_some() && args.explicit {
        return Err("--latency is not supported with --explicit".to_string());
    }
    if args.latency.is_some() && args.baseline.is_some() {
        return Err(
            "--latency is not supported with --baseline (the baseline would run \
             synchronously, making the comparison apples-to-oranges)"
                .to_string(),
        );
    }
    if args.latency.is_none() && (args.latency_seed.is_some() || args.service_rate.is_some()) {
        return Err("--latency-seed and --service-rate have no effect without --latency".to_string());
    }
    if args.explicit
        && (args.trial_threads.is_some()
            || args.out.is_some()
            || args.resume
            || args.max_trials.is_some()
            || args.drop_sweep.is_some())
    {
        return Err(
            "campaign options (--trial-threads/--out/--resume/--max-trials/--drop-sweep) \
             are not supported with --explicit"
                .to_string(),
        );
    }
    if args.explicit && (args.drop_rate.is_some() || args.crash.is_some()) {
        return Err("fault injection is not supported with --explicit".to_string());
    }
    if args.drop_sweep.is_some() && (args.drop_rate.is_some() || args.crash.is_some()) {
        return Err(
            "--drop-sweep already defines the fault schedule; it cannot be combined \
             with --drop-rate or --crash (include 0 in the sweep for a fault-free control)"
                .to_string(),
        );
    }
    if args.baseline.is_some()
        && (args.drop_rate.is_some() || args.crash.is_some() || args.drop_sweep.is_some())
    {
        return Err(
            "fault injection is not supported with --baseline (the baseline would run \
             fault-free, making the comparison apples-to-oranges)"
                .to_string(),
        );
    }
    if args.crash.is_none() && args.crash_at.is_some() {
        return Err("--crash-at has no effect without --crash".to_string());
    }
    if args.drop_rate.is_none()
        && args.crash.is_none()
        && args.drop_sweep.is_none()
        && args.fault_seed.is_some()
    {
        return Err(
            "--fault-seed has no effect without --drop-rate, --crash, or --drop-sweep".to_string(),
        );
    }
    if args.resume && args.out.is_none() {
        return Err("--resume needs --out (the CSV file is the resume manifest)".to_string());
    }
    if args.explicit && (args.round_log.is_some() || args.phase_table || args.profile) {
        return Err(
            "telemetry options (--round-log/--phase-table/--profile) are not supported \
             with --explicit"
                .to_string(),
        );
    }
    if args.round_log.is_some() && (args.seeds != 1 || args.drop_sweep.is_some()) {
        return Err(
            "--round-log records one run's stream; it needs --seeds 1 and no --drop-sweep"
                .to_string(),
        );
    }
    if args.round_log.is_some() && args.resume {
        return Err(
            "--round-log cannot be combined with --resume (a resumed trial's \
             per-round stream was never persisted)"
                .to_string(),
        );
    }
    Ok(args)
}

fn build_graph(args: &Args) -> Result<Arc<Graph>, String> {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF00D);
    let g = match args.family.as_str() {
        "expander" => gen::random_regular(args.n, 4, &mut rng),
        "hypercube" => {
            let dim = (args.n as f64).log2().round().max(1.0) as u32;
            gen::hypercube(dim)
        }
        "clique" => gen::clique(args.n),
        "torus" => {
            let side = (args.n as f64).sqrt().round().max(3.0) as usize;
            gen::torus2d(side, side)
        }
        "ring" => gen::ring(args.n),
        "gnp" => {
            let p = 2.0 * (args.n as f64).ln() / args.n as f64;
            gen::gnp_connected(args.n, p, &mut rng)
        }
        "lb" => {
            return gen::CliqueOfCliques::build(
                gen::CliqueOfCliquesParams::new(args.n, args.eps),
                &mut rng,
            )
            .map(|lb| Arc::new(lb.into_graph()))
            .map_err(|e| e.to_string());
        }
        other => return Err(format!("unknown family {other}\n{}", usage())),
    };
    g.map(Arc::new).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match build_graph(&args) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Informational lines move to stderr whenever stdout is a CSV
    // stream (`--csv`) that an extra line would corrupt.
    if args.csv {
        eprintln!("graph: {} n={} m={}", args.family, graph.n(), graph.m());
    } else {
        println!("graph: {} n={} m={}", args.family, graph.n(), graph.m());
    }

    let mut cfg = ElectionConfig::tuned_for_simulation(graph.n());
    if args.fixed_t {
        cfg.sync = SyncMode::FixedT;
    }
    if args.large {
        cfg.msg_size = MsgSizeMode::Large;
    }
    if let Some(cap) = args.cap {
        cfg.max_walk_len = Some(cap);
    }

    let exec = match (args.latency, args.threads) {
        (Some(model), _) => {
            let mut model = model.seed(args.latency_seed.unwrap_or(args.seed));
            if let Some(rate) = args.service_rate {
                model = model.service_rate(rate);
            }
            Exec::Async(model)
        }
        (None, Some(k)) => Exec::Threaded(k),
        (None, None) => Exec::Auto,
    };
    // Adversarial network conditions, replayable from the fault seed.
    let fault_plan = if args.drop_rate.is_some() || args.crash.is_some() {
        let mut plan = FaultPlan::new(args.fault_seed.unwrap_or(args.seed));
        if let Some(rate) = args.drop_rate {
            plan = plan.drop_rate(rate);
        }
        if let Some(frac) = args.crash {
            plan = plan.crash_fraction(frac, args.crash_at.unwrap_or(1));
        }
        eprintln!(
            "faults: drop_rate={} crash_fraction={} crash_at={}",
            args.drop_rate.unwrap_or(0.0),
            args.crash.unwrap_or(0.0),
            args.crash_at.unwrap_or(1)
        );
        Some(plan)
    } else {
        None
    };
    let mut ok = true;
    if args.explicit {
        // The two-stage explicit election (implicit + broadcast) has its
        // own driver; the implicit stage inside it runs on the builder.
        for k in 0..args.seeds {
            let seed = args.seed + k as u64;
            let rep = run_explicit_election(&graph, &cfg, 10_000_000, seed);
            println!(
                "seed {seed}: leaders={:?} elect_msgs={} bcast_msgs={:?} success={}",
                rep.election.leaders,
                rep.election.messages,
                rep.broadcast.map(|b| b.messages),
                rep.is_success()
            );
            ok &= rep.is_success();
        }
    } else {
        if args.csv {
            println!("{}", Trial::csv_header());
        }
        // `on_trial` streams each trial's line as it completes, so long
        // sweeps show progress instead of buffering until the end.
        let csv = args.csv;
        let latent = args.latency.is_some();
        let multi_scenario = args.drop_sweep.as_ref().is_some_and(|s| s.len() > 1);
        let have_faults = fault_plan.is_some();
        let mut proto = Election::on(&graph).config(cfg).executor(exec);
        if let Some(plan) = fault_plan {
            proto = proto.faults(plan);
        }
        let mut campaign = Campaign::new(proto).label(args.family.clone());
        // Any telemetry flag turns the layer on; full retention is only
        // needed when the sample stream itself leaves the process.
        let want_telemetry = args.round_log.is_some() || args.phase_table || args.profile;
        if want_telemetry {
            let mut tcfg = if args.round_log.is_some() {
                TelemetryConfig::full()
            } else {
                TelemetryConfig::ring(0)
            };
            if args.profile {
                tcfg = tcfg.with_profile();
            }
            campaign = campaign.telemetry(tcfg);
        }
        // Fault-free scenarios drive the exit code; sweep scenarios with
        // drops are *expected* to lose some elections, so they only report.
        let mut strict_labels: Vec<String> = Vec::new();
        if let Some(rates) = &args.drop_sweep {
            for &p in rates {
                let label = format!("p={p}, {}", args.family);
                campaign = campaign.scenario(&label, &graph, cfg);
                if p > 0.0 {
                    campaign = campaign
                        .faults(FaultPlan::new(args.fault_seed.unwrap_or(args.seed)).drop_rate(p));
                } else {
                    strict_labels.push(label);
                }
            }
            campaign = campaign.without_base();
        } else {
            strict_labels.push(args.family.clone());
        }
        campaign = campaign.seeds(args.seed..args.seed + args.seeds as u64);
        if let Some(k) = args.trial_threads {
            campaign = campaign.trial_threads(k);
        }
        if let Some(path) = &args.out {
            campaign = campaign.stream_csv(path).resume(args.resume);
        }
        if let Some(max) = args.max_trials {
            campaign = campaign.budget_trials(max);
        }
        let outcome = match campaign
            .on_trial(|t| {
                let rep = &t.report;
                if csv {
                    println!("{}", t.csv_row());
                } else {
                    let scenario = if multi_scenario {
                        format!("[{}] ", t.scenario)
                    } else {
                        String::new()
                    };
                    let faults = if rep.dropped_messages > 0 || rep.crashed > 0 {
                        format!(" dropped={} crashed={}", rep.dropped_messages, rep.crashed)
                    } else {
                        String::new()
                    };
                    let vtime = if latent {
                        format!(" vtime={:.2}", rep.virtual_time)
                    } else {
                        String::new()
                    };
                    println!(
                        "{scenario}seed {}: leaders={:?} id={:?} contenders={} msgs={} bits={} \
                         rounds={} t_u={} epochs={} gave_up={}{faults}{vtime}",
                        t.seed,
                        rep.leaders,
                        rep.leader_id,
                        rep.contenders,
                        rep.messages,
                        rep.bits,
                        rep.decided_round,
                        rep.final_walk_len,
                        rep.epochs_used,
                        rep.gave_up
                    );
                }
            })
            .run()
        {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if outcome.resumed_trials > 0 {
            let path = args.out.as_deref().map(|p| p.display().to_string());
            eprintln!(
                "resumed {} completed trials from {}",
                outcome.resumed_trials,
                path.unwrap_or_default()
            );
        }
        let finished: usize = outcome.summaries.iter().map(|s| s.trials).sum();
        let planned = outcome.summaries.len() * args.seeds;
        if finished < planned {
            eprintln!(
                "stopped after {finished} of {planned} trials (--max-trials); \
                 rerun with --resume to finish"
            );
        }
        // Human-readable telemetry tables: stdout normally, stderr under
        // --csv so the trial stream stays machine-pure.
        let tprint = |text: &str| {
            if args.csv {
                eprint!("{text}");
            } else {
                print!("{text}");
            }
        };
        if args.phase_table || args.profile {
            for t in &outcome.trials {
                if args.phase_table {
                    tprint(&format!(
                        "phase breakdown (seed {}):\n{}",
                        t.seed,
                        phase_table(&t.report)
                    ));
                }
                if args.profile {
                    if let Some(table) = t.report.telemetry.as_ref().and_then(profile_table) {
                        tprint(&format!("profile (seed {}):\n{table}", t.seed));
                    }
                }
            }
        }
        if let Some(path) = &args.round_log {
            match outcome.trials.first().and_then(|t| t.report.telemetry.as_ref()) {
                Some(telemetry) => {
                    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
                    let written = std::fs::File::create(path).and_then(|f| {
                        let mut w = std::io::BufWriter::new(f);
                        if jsonl {
                            write_samples_jsonl(telemetry, &mut w)
                        } else {
                            write_round_log(telemetry, &mut w)
                        }
                    });
                    match written {
                        Ok(()) => eprintln!(
                            "round log: {} samples -> {}",
                            telemetry.samples.len(),
                            path.display()
                        ),
                        Err(e) => {
                            eprintln!("error: cannot write {}: {e}", path.display());
                            ok = false;
                        }
                    }
                }
                None => {
                    eprintln!("error: the run produced no telemetry for --round-log");
                    ok = false;
                }
            }
        }
        let show_summaries = args.seeds > 1 || outcome.summaries.len() > 1;
        for summary in &outcome.summaries {
            if show_summaries {
                if args.csv {
                    eprintln!("{summary}");
                } else {
                    println!("{summary}");
                }
            }
            // Historical contract for explicit --drop-rate/--crash runs:
            // lost elections still surface in the exit code.
            if have_faults || strict_labels.iter().any(|l| l == &summary.scenario) {
                ok &= summary.successes == summary.trials;
            }
        }
    }

    // Baseline comparison lines: stdout normally, stderr under --csv so
    // the trial stream on stdout stays machine-readable.
    let bprint = |line: String| {
        if args.csv {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    match args.baseline.as_deref() {
        Some("flood") => {
            let b = run_flood_max(&graph, args.seed);
            bprint(format!(
                "baseline flood-max: leaders={:?} msgs={} rounds={}",
                b.leaders, b.messages, b.rounds
            ));
        }
        Some("hs") => {
            let b = run_hirschberg_sinclair(&graph, args.seed);
            bprint(format!(
                "baseline hirschberg-sinclair: leaders={:?} msgs={} rounds={}",
                b.leaders, b.messages, b.rounds
            ));
        }
        Some("known-tmix") => {
            match mixing_time(
                &graph,
                MixingOptions {
                    horizon: 1_000_000,
                    starts: StartPolicy::Sample(8),
                },
            ) {
                Some(tmix) => {
                    let b = run_known_tmix_election(&graph, &cfg, tmix, 2, args.seed);
                    bprint(format!(
                        "baseline known-tmix (t_mix={tmix}): leaders={:?} msgs={}",
                        b.leaders, b.messages
                    ));
                }
                None => eprintln!("baseline known-tmix: graph did not mix within horizon"),
            }
        }
        Some(other) => eprintln!("unknown baseline {other}"),
        None => {}
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
