//! `welle` command-line runner: elect a leader on a generated topology
//! and print the report, with optional baselines and explicit election.
//!
//! ```sh
//! cargo run --release --bin welle -- expander 512 --seeds 5
//! cargo run --release --bin welle -- hypercube 256 --large --fixed-t
//! cargo run --release --bin welle -- ring 64 --baseline hs
//! cargo run --release --bin welle -- clique 128 --explicit
//! cargo run --release --bin welle -- lb 500 --eps 0.3
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use welle::core::baselines::{run_flood_max, run_hirschberg_sinclair, run_known_tmix_election};
use welle::core::broadcast::run_explicit_election;
use welle::core::{run_election, ElectionConfig, MsgSizeMode, SyncMode};
use welle::graph::{gen, Graph};
use welle::walks::{mixing_time, MixingOptions, StartPolicy};

struct Args {
    family: String,
    n: usize,
    seed: u64,
    seeds: usize,
    eps: f64,
    fixed_t: bool,
    large: bool,
    cap: Option<u32>,
    explicit: bool,
    baseline: Option<String>,
}

fn usage() -> &'static str {
    "usage: welle <family> <n> [options]\n\
     families: expander | hypercube | clique | torus | ring | gnp | lb\n\
     options:\n\
       --seed S        first seed (default 1)\n\
       --seeds K       number of seeded runs (default 1)\n\
       --eps E         epsilon for the lb family (default 0.3)\n\
       --fixed-t       paper-faithful fixed-T schedule (default adaptive)\n\
       --large         O(log^3 n) messages (default CONGEST)\n\
       --cap L         walk-length cap\n\
       --explicit      run explicit election (adds push-pull broadcast)\n\
       --baseline B    also run a baseline: flood | hs | known-tmix"
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        return Err(usage().to_string());
    }
    let mut args = Args {
        family: argv[0].clone(),
        n: argv[1].parse().map_err(|_| format!("bad n: {}", argv[1]))?,
        seed: 1,
        seeds: 1,
        eps: 0.3,
        fixed_t: false,
        large: false,
        cap: None,
        explicit: false,
        baseline: None,
    };
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).ok_or("--seed needs a value")?.parse().map_err(|_| "bad seed")?;
            }
            "--seeds" => {
                i += 1;
                args.seeds = argv.get(i).ok_or("--seeds needs a value")?.parse().map_err(|_| "bad seeds")?;
            }
            "--eps" => {
                i += 1;
                args.eps = argv.get(i).ok_or("--eps needs a value")?.parse().map_err(|_| "bad eps")?;
            }
            "--cap" => {
                i += 1;
                args.cap = Some(argv.get(i).ok_or("--cap needs a value")?.parse().map_err(|_| "bad cap")?);
            }
            "--baseline" => {
                i += 1;
                args.baseline = Some(argv.get(i).ok_or("--baseline needs a value")?.clone());
            }
            "--fixed-t" => args.fixed_t = true,
            "--large" => args.large = true,
            "--explicit" => args.explicit = true,
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
        i += 1;
    }
    Ok(args)
}

fn build_graph(args: &Args) -> Result<Arc<Graph>, String> {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF00D);
    let g = match args.family.as_str() {
        "expander" => gen::random_regular(args.n, 4, &mut rng),
        "hypercube" => {
            let dim = (args.n as f64).log2().round().max(1.0) as u32;
            gen::hypercube(dim)
        }
        "clique" => gen::clique(args.n),
        "torus" => {
            let side = (args.n as f64).sqrt().round().max(3.0) as usize;
            gen::torus2d(side, side)
        }
        "ring" => gen::ring(args.n),
        "gnp" => {
            let p = 2.0 * (args.n as f64).ln() / args.n as f64;
            gen::gnp_connected(args.n, p, &mut rng)
        }
        "lb" => {
            return gen::CliqueOfCliques::build(
                gen::CliqueOfCliquesParams::new(args.n, args.eps),
                &mut rng,
            )
            .map(|lb| Arc::new(lb.into_graph()))
            .map_err(|e| e.to_string());
        }
        other => return Err(format!("unknown family {other}\n{}", usage())),
    };
    g.map(Arc::new).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match build_graph(&args) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("graph: {} n={} m={}", args.family, graph.n(), graph.m());

    let mut cfg = ElectionConfig::tuned_for_simulation(graph.n());
    if args.fixed_t {
        cfg.sync = SyncMode::FixedT;
    }
    if args.large {
        cfg.msg_size = MsgSizeMode::Large;
    }
    if let Some(cap) = args.cap {
        cfg.max_walk_len = Some(cap);
    }

    let mut ok = true;
    for k in 0..args.seeds {
        let seed = args.seed + k as u64;
        if args.explicit {
            let rep = run_explicit_election(&graph, &cfg, 10_000_000, seed);
            println!(
                "seed {seed}: leaders={:?} elect_msgs={} bcast_msgs={:?} success={}",
                rep.election.leaders,
                rep.election.messages,
                rep.broadcast.map(|b| b.messages),
                rep.is_success()
            );
            ok &= rep.is_success();
        } else {
            let rep = run_election(&graph, &cfg, seed);
            println!(
                "seed {seed}: leaders={:?} id={:?} contenders={} msgs={} bits={} \
                 rounds={} t_u={} epochs={} gave_up={}",
                rep.leaders,
                rep.leader_id,
                rep.contenders,
                rep.messages,
                rep.bits,
                rep.decided_round,
                rep.final_walk_len,
                rep.epochs_used,
                rep.gave_up
            );
            ok &= rep.is_success();
        }
    }

    match args.baseline.as_deref() {
        Some("flood") => {
            let b = run_flood_max(&graph, args.seed);
            println!(
                "baseline flood-max: leaders={:?} msgs={} rounds={}",
                b.leaders, b.messages, b.rounds
            );
        }
        Some("hs") => {
            let b = run_hirschberg_sinclair(&graph, args.seed);
            println!(
                "baseline hirschberg-sinclair: leaders={:?} msgs={} rounds={}",
                b.leaders, b.messages, b.rounds
            );
        }
        Some("known-tmix") => {
            match mixing_time(
                &graph,
                MixingOptions {
                    horizon: 1_000_000,
                    starts: StartPolicy::Sample(8),
                },
            ) {
                Some(tmix) => {
                    let b = run_known_tmix_election(&graph, &cfg, tmix, 2, args.seed);
                    println!(
                        "baseline known-tmix (t_mix={tmix}): leaders={:?} msgs={}",
                        b.leaders, b.messages
                    );
                }
                None => eprintln!("baseline known-tmix: graph did not mix within horizon"),
            }
        }
        Some(other) => eprintln!("unknown baseline {other}"),
        None => {}
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
