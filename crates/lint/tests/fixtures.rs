//! Fixture tests: every check must fire on its known-bad fixture, stay
//! silent on the known-good mirror, and the real workspace must scan
//! clean (the same invariant CI enforces via `welle-lint --check`).
//!
//! The fixture trees are shaped like a miniature workspace
//! (`crates/congest/src/...`) so the path-scoped checks apply to them
//! exactly as they do to the real crates.

use std::path::{Path, PathBuf};

use welle_lint::{scan_root, ScanReport};

fn fixture(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn scan(which: &str) -> ScanReport {
    scan_root(&fixture(which)).expect("fixture tree scans")
}

/// Findings for `check` in `file` (path relative to the fixture root).
fn hits<'r>(report: &'r ScanReport, check: &str, file: &str) -> Vec<&'r welle_lint::Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.check == check && f.file == file)
        .collect()
}

#[test]
fn every_check_fires_on_its_bad_fixture() {
    let report = scan("bad");
    let expect = [
        ("no-hash-iter", "crates/congest/src/hash_iter.rs", 2),
        ("no-ambient-entropy", "crates/congest/src/entropy.rs", 1),
        ("tick-math-saturates", "crates/congest/src/async_engine.rs", 2),
        ("no-lib-unwrap", "crates/congest/src/unwraps.rs", 2),
        ("no-float-eq", "crates/congest/src/float_eq.rs", 2),
        ("no-narrowing-cast", "crates/congest/src/casts.rs", 1),
        ("invalid-pragma", "crates/congest/src/bad_pragma.rs", 2),
    ];
    for (check, file, at_least) in expect {
        let found = hits(&report, check, file);
        assert!(
            found.len() >= at_least,
            "{check} found {} finding(s) in {file}, expected >= {at_least}; all: {:#?}",
            found.len(),
            report.findings
        );
    }
    assert!(!report.is_clean());
}

#[test]
fn findings_carry_line_message_and_why() {
    let report = scan("bad");
    for f in &report.findings {
        assert!(f.line >= 1, "finding without a line: {f:?}");
        assert!(!f.message.is_empty(), "finding without a message: {f:?}");
        assert!(!f.why.is_empty(), "finding without a why: {f:?}");
        let rendered = f.to_string();
        assert!(
            rendered.contains(&format!("{}:{}", f.file, f.line)),
            "diagnostic must lead with file:line, got: {rendered}"
        );
    }
}

#[test]
fn bad_fixture_findings_do_not_cross_files() {
    // Each bad fixture is crafted to violate exactly one check (plus the
    // pragma fixture); a finding from check A inside check B's fixture
    // would be a false positive.
    let report = scan("bad");
    let paired = [
        ("no-hash-iter", "hash_iter.rs"),
        ("no-ambient-entropy", "entropy.rs"),
        ("tick-math-saturates", "async_engine.rs"),
        ("no-lib-unwrap", "unwraps.rs"),
        ("no-float-eq", "float_eq.rs"),
        ("no-narrowing-cast", "casts.rs"),
        ("invalid-pragma", "bad_pragma.rs"),
    ];
    for f in &report.findings {
        let home = paired
            .iter()
            .find(|(check, _)| *check == f.check)
            .map(|(_, file)| *file)
            .unwrap_or_else(|| panic!("finding from unknown check: {f:?}"));
        assert!(
            f.file.ends_with(home),
            "cross-file false positive: {f}"
        );
    }
}

#[test]
fn good_fixture_scans_clean_with_one_justified_pragma() {
    let report = scan("good");
    assert!(
        report.is_clean(),
        "good fixtures must be finding-free, got: {:#?}",
        report.findings
    );
    // The justified `head()` pragma in unwraps.rs is counted, proving
    // suppressions are tracked rather than silently discarded.
    assert_eq!(
        report.suppressed.get("no-lib-unwrap").copied().unwrap_or(0),
        1,
        "expected exactly one justified no-lib-unwrap suppression"
    );
    // The profiler-module fixture's ambient-time pragma is honored —
    // the one sanctioned seeded-path wall-clock site.
    assert_eq!(
        report
            .suppressed
            .get("no-ambient-entropy")
            .copied()
            .unwrap_or(0),
        1,
        "expected exactly one justified no-ambient-entropy suppression"
    );
}

#[test]
fn the_workspace_itself_is_lint_clean() {
    // crates/lint/ -> crates/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("manifest dir has a workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not where expected: {}",
        root.display()
    );
    let report = scan_root(root).expect("workspace scans");
    assert!(
        report.is_clean(),
        "the workspace must satisfy its own determinism contract; findings: {:#?}",
        report.findings
    );
    assert!(report.files_scanned > 50, "suspiciously small scan");
}

#[test]
fn json_report_is_well_formed_enough_for_ci() {
    let json = scan("bad").to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for key in ["\"findings\"", "\"files_scanned\"", "\"per_check\""] {
        assert!(json.contains(key), "missing {key} in: {json}");
    }
    assert!(json.contains("no-hash-iter"));
}
