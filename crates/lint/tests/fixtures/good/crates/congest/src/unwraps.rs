// Known-good fixture: fallible paths return errors or defaults; the one
// true invariant carries a justified pragma and is counted as such.
pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

pub fn head(v: &[u32]) -> u32 {
    // welle-lint: allow(no-lib-unwrap) — invariant: callers construct `v` non-empty one line above every call site
    *v.first().expect("constructed non-empty")
}
