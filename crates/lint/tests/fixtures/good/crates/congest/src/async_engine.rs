// Known-good fixture: schedule arithmetic saturates, so a pathological
// latency model parks an event at u64::MAX instead of wrapping to the
// past.
pub struct Sched {
    next_tick: u64,
}

impl Sched {
    pub fn advance(&mut self, delta: u64) {
        self.next_tick = self.next_tick.saturating_add(delta);
    }

    pub fn scale(&mut self, factor: u64) {
        self.next_tick = self.next_tick.saturating_mul(factor);
    }
}
