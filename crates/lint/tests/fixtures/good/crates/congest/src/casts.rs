// Known-good fixture: checked narrowing instead of a silent `as` cast.
pub fn narrow(indices: &[usize]) -> Vec<u32> {
    indices
        .iter()
        .map(|&i| u32::try_from(i).unwrap_or(u32::MAX))
        .collect()
}
