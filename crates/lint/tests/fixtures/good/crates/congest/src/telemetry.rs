// Known-good fixture: the designated profiler module is the one seeded
// source where a justified ambient-time pragma takes effect.
use std::time::Instant;

pub fn span_start(profiling: bool) -> Option<Instant> {
    // welle-lint: allow(no-ambient-entropy) — profiler wall-clock: reported in a dedicated field, never fed back into simulation state
    profiling.then(Instant::now)
}
