// Known-good fixture: ordered containers make iteration deterministic.
use std::collections::{BTreeMap, BTreeSet};

pub struct Seen {
    counts: BTreeMap<u64, u32>,
    ids: BTreeSet<u64>,
}

impl Seen {
    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for (_k, v) in self.counts.iter() {
            sum += v;
        }
        for id in &self.ids {
            if *id % 2 == 0 {
                sum += 1;
            }
        }
        sum
    }
}
