// Known-good fixture: tolerance tests and total orderings instead of
// exact float equality.
pub fn converged(err: f64) -> bool {
    err.abs() < 1e-12
}

pub fn same(a: f64, b: f64) -> bool {
    a.total_cmp(&b).is_eq()
}
