// Known-bad fixture: exact float comparison in a seeded path.
pub fn converged(err: f64) -> bool {
    err == 0.1
}

pub fn same(a: f64, b: f64) -> bool {
    a != b
}
