// Known-bad fixture: unwrap / expect in non-test library code.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller passed a number")
}
