// Known-bad fixture: silent narrowing casts on index expressions.
pub fn narrow(indices: &[usize]) -> Vec<u32> {
    let mut out = Vec::new();
    for &i in indices {
        out.push(i as u32);
    }
    out
}
