// Known-bad fixture: raw arithmetic on tick/due schedule fields in an
// executor file, where overflow must saturate instead of wrapping.
pub struct Sched {
    next_tick: u64,
}

impl Sched {
    pub fn advance(&mut self, delta: u64) {
        self.next_tick = self.next_tick + delta;
    }

    pub fn scale(&mut self, factor: u64) {
        self.next_tick = self.next_tick * factor;
    }
}
