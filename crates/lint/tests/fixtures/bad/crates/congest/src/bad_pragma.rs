// Known-bad fixture: malformed suppression pragmas. Both forms below
// must surface as unsuppressible `invalid-pragma` findings.

// welle-lint: allow(no-such-check) — the check name does not exist
pub fn unknown_check() {}

// welle-lint: allow(no-lib-unwrap)
pub fn missing_justification(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
