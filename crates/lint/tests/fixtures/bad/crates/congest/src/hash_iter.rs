// Known-bad fixture: iterating a HashMap / HashSet in a seeded crate.
use std::collections::{HashMap, HashSet};

pub struct Seen {
    counts: HashMap<u64, u32>,
    ids: HashSet<u64>,
}

impl Seen {
    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for (_k, v) in self.counts.iter() {
            sum += v;
        }
        for id in &self.ids {
            if *id % 2 == 0 {
                sum += 1;
            }
        }
        sum
    }
}
