// Known-bad fixture: ambient entropy sources outside the bench crate.
use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
