// Known-bad fixture: ambient entropy sources outside the bench crate.
use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

// A well-worded pragma cannot launder wall-clock reads into a seeded
// crate outside the sanctioned profiler module: this must still fire.
pub fn laundered() -> Instant {
    // welle-lint: allow(no-ambient-entropy) — sounds plausible, is not the profiler module
    Instant::now()
}
