//! `welle-lint` — the determinism-contract static analyzer.
//!
//! The workspace's load-bearing guarantee is that every election
//! replays byte-identically from its seed across executors, thread
//! counts, fault plans, and latency models. The dynamic fences
//! (differential proptests, CI timing guards) catch violations after
//! the fact; this crate proves the *absence* of the known hazard
//! classes before they ship:
//!
//! | check | hazard |
//! |---|---|
//! | `no-hash-iter` | iterating `HashMap`/`HashSet` in seeded crates |
//! | `no-ambient-entropy` | `Instant::now` / `SystemTime` / `thread_rng` / `from_entropy` outside `crates/bench` |
//! | `tick-math-saturates` | raw `+`/`*` on `*_tick`/`due` virtual-time quantities |
//! | `no-lib-unwrap` | `.unwrap()` / `.expect(` in non-test library code |
//! | `no-float-eq` | `==`/`!=` on float expressions in seeded crates |
//! | `no-narrowing-cast` | `as u32`/`as u16` on index expressions in the congest hot path and the graph crate's u32 CSR helpers |
//!
//! The analyzer is a hand-rolled token scanner (the build is offline:
//! no `syn`, no `dylint`), so checks are heuristic — which is exactly
//! why every one of them supports a *scoped, justified* suppression:
//!
//! ```text
//! // welle-lint: allow(no-lib-unwrap) — index bounded by n at construction
//! ```
//!
//! A pragma suppresses the named check(s) on its own line and the line
//! below it; a pragma with no justification, or naming an unknown
//! check, is itself reported (`invalid-pragma`) and cannot be
//! suppressed. `vendor/`, `target/`, `tests/` directories and
//! `#[cfg(test)]` / `#[test]` regions are skipped entirely.
//!
//! One check is stricter still: inside the seeded crates,
//! `allow(no-ambient-entropy)` pragmas are honored **only** in the
//! designated profiler module ([`PROFILER_MODULE`]) — the one seeded
//! file sanctioned to read wall-clock time, because its nanoseconds
//! live in a separate report field and never feed simulation state. A
//! justified-looking pragma on an `Instant::now` anywhere else in a
//! seeded crate is ignored and the finding stands: ambient time cannot
//! be laundered into the deterministic paths one pragma at a time.
//!
//! Run it with `cargo run -p welle-lint -- --check` (CI does); see
//! [`scan_root`] for the library entry point.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod checks;
pub mod lexer;

use lexer::{Lexed, Tok, TokKind};

/// The determinism-contract checks, in reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// Iteration over `HashMap`/`HashSet` in the seeded crates.
    NoHashIter,
    /// Wall-clock or OS entropy outside `crates/bench`.
    NoAmbientEntropy,
    /// Raw `+`/`*` on virtual-time tick quantities.
    TickMathSaturates,
    /// `.unwrap()`/`.expect(` in non-test library code.
    NoLibUnwrap,
    /// `==`/`!=` between float expressions in the seeded crates.
    NoFloatEq,
    /// `as u32`/`as u16` narrowing on congest index expressions and on
    /// the graph crate's u32 CSR index helpers.
    NoNarrowingCast,
}

/// All checks, in reporting order.
pub const ALL_CHECKS: [Check; 6] = [
    Check::NoHashIter,
    Check::NoAmbientEntropy,
    Check::TickMathSaturates,
    Check::NoLibUnwrap,
    Check::NoFloatEq,
    Check::NoNarrowingCast,
];

/// Crates whose sources are seeded simulation paths: hash-order and
/// float-comparison hazards are errors here.
const SEEDED_SCOPES: [&str; 4] = [
    "crates/congest/src",
    "crates/core/src",
    "crates/walks/src",
    "crates/graph/src",
];

/// The one seeded-path source sanctioned to read wall-clock time: the
/// telemetry span profiler, whose nanoseconds are reported in a
/// dedicated field (`SpanStats::wall_ns`) and never influence the
/// simulation. `allow(no-ambient-entropy)` pragmas inside seeded crates
/// take effect only here (see [`ambient_pragma_allowed`]).
pub const PROFILER_MODULE: &str = "crates/congest/src/telemetry.rs";

/// Whether an `allow(no-ambient-entropy)` pragma may take effect in
/// `rel`: yes in the designated [`PROFILER_MODULE`] and outside the
/// seeded crates (examples, binaries — human-facing timing), never
/// elsewhere within a seeded crate.
pub fn ambient_pragma_allowed(rel: &str) -> bool {
    rel == PROFILER_MODULE || !SEEDED_SCOPES.iter().any(|p| rel.starts_with(p))
}

impl Check {
    /// The kebab-case name used in diagnostics and pragmas.
    pub fn name(self) -> &'static str {
        match self {
            Check::NoHashIter => "no-hash-iter",
            Check::NoAmbientEntropy => "no-ambient-entropy",
            Check::TickMathSaturates => "tick-math-saturates",
            Check::NoLibUnwrap => "no-lib-unwrap",
            Check::NoFloatEq => "no-float-eq",
            Check::NoNarrowingCast => "no-narrowing-cast",
        }
    }

    /// Parses a pragma check name.
    pub fn from_name(s: &str) -> Option<Check> {
        ALL_CHECKS.into_iter().find(|c| c.name() == s)
    }

    /// One-line rationale attached to every diagnostic.
    pub fn why(self) -> &'static str {
        match self {
            Check::NoHashIter => {
                "hash iteration order varies with RandomState/std version; seeded paths must replay byte-identically — use BTreeMap/BTreeSet or index-ordered state"
            }
            Check::NoAmbientEntropy => {
                "wall-clock and OS randomness make runs a function of the machine, not the seed — thread a seeded StdRng or virtual clock through instead"
            }
            Check::TickMathSaturates => {
                "tick arithmetic can overflow u64 under large delays and wrap the event heap's ordering — use saturating_add/saturating_mul"
            }
            Check::NoLibUnwrap => {
                "a library panic tears down whole campaigns and hides the broken invariant — return a typed error or justify the invariant in a pragma"
            }
            Check::NoFloatEq => {
                "exact float equality is representation-dependent and can fork a seeded replay — compare integers, use explicit tolerances, or justify the exact-zero sentinel"
            }
            Check::NoNarrowingCast => {
                "as-casts truncate silently; an index overflow at scale becomes a wrong-but-plausible index — use a checked helper (debug-asserted bound) or justify"
            }
        }
    }

    /// Whether the check applies to `rel`, the forward-slash path of a
    /// source file relative to the scan root.
    pub fn applies_to(self, rel: &str) -> bool {
        let base = rel.rsplit('/').next().unwrap_or(rel);
        match self {
            Check::NoHashIter | Check::NoFloatEq => {
                SEEDED_SCOPES.iter().any(|p| rel.starts_with(p))
            }
            Check::NoAmbientEntropy => !rel.starts_with("crates/bench"),
            Check::TickMathSaturates => {
                matches!(base, "async_engine.rs" | "faults.rs" | "latency.rs")
            }
            Check::NoLibUnwrap => {
                (rel.starts_with("src/") || rel.contains("/src/")) && !rel.starts_with("crates/bench")
            }
            Check::NoNarrowingCast => {
                // The congest hot path, plus the graph crate since its
                // CSR went u32-indexed: a truncating cast on a node,
                // port, or offset there silently corrupts adjacency at
                // n = 10⁶⁺ — narrowing must route through the checked
                // constructors (`NodeId::new`, `builder::narrow`).
                rel.starts_with("crates/congest/src") || rel.starts_with("crates/graph/src")
            }
        }
    }
}

/// A check hit before pragma filtering (internal to the scan).
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// Which check fired.
    pub check: Check,
    /// 1-indexed source line.
    pub line: u32,
    /// What fired, with the offending identifier(s).
    pub message: String,
}

/// A reported diagnostic: a check violation that no pragma justified.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Check name (kebab-case; `invalid-pragma` for pragma errors).
    pub check: &'static str,
    /// Path relative to the scan root, forward slashes.
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// What fired.
    pub message: String,
    /// Why this is a hazard.
    pub why: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.file, self.line, self.check, self.message, self.why
        )
    }
}

/// Aggregate result of scanning one or more roots.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All surviving findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-check finding counts (zero-count checks included).
    pub counts: BTreeMap<&'static str, usize>,
    /// Per-check pragma-suppressed counts.
    pub suppressed: BTreeMap<&'static str, usize>,
}

impl ScanReport {
    /// Whether the scan is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as a JSON object (no external deps; used by
    /// `--format json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"files_scanned\": ");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"check\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.check),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        s.push_str("\n  ],\n  \"per_check\": {");
        for (i, (name, count)) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let suppressed = self.suppressed.get(name).copied().unwrap_or(0);
            s.push_str(&format!(
                "\n    \"{}\": {{\"findings\": {count}, \"suppressed\": {suppressed}}}",
                json_escape(name)
            ));
        }
        s.push_str("\n  }\n}");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Test-region exclusion
// ---------------------------------------------------------------------

/// Computes which tokens live inside `#[cfg(test)]` / `#[test]` items
/// and returns the token stream with those regions removed.
///
/// An attribute counts as a test attribute when it mentions the
/// identifier `test` and does not mention `not` (so `#[cfg(not(test))]`
/// code *is* scanned). The excluded region runs from the attribute to
/// the end of the annotated item: its matching `}` body, or the first
/// top-level `;` for bodyless items.
pub mod test_regions {
    use super::{Tok, TokKind};

    /// Returns the tokens outside all test regions.
    pub fn strip(toks: &[Tok]) -> Vec<Tok> {
        let mut keep = vec![true; toks.len()];
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
                let (attr_end, is_test) = scan_attr(toks, i + 1);
                if is_test {
                    let item_end = item_end(toks, attr_end);
                    for k in keep.iter_mut().take(item_end).skip(i) {
                        *k = false;
                    }
                    i = item_end;
                    continue;
                }
                i = attr_end;
                continue;
            }
            i = i.saturating_add(1);
        }
        toks.iter()
            .zip(keep)
            .filter_map(|(t, k)| if k { Some(t.clone()) } else { None })
            .collect()
    }

    /// Scans an attribute starting at its `[`; returns (index one past
    /// the closing `]`, whether it is a test attribute).
    fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
        let mut depth = 0usize;
        let mut saw_test = false;
        let mut saw_not = false;
        let mut j = open;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, saw_test && !saw_not);
                }
            } else if t.kind == TokKind::Ident {
                if t.text == "test" {
                    saw_test = true;
                } else if t.text == "not" {
                    saw_not = true;
                }
            }
            j += 1;
        }
        (toks.len(), saw_test && !saw_not)
    }

    /// Finds the end of the item starting at `from`: one past the
    /// matching `}` of its body, or one past the first `;` outside any
    /// nesting, skipping further attributes along the way.
    fn item_end(toks: &[Tok], from: usize) -> usize {
        let mut j = from;
        let mut paren = 0i64;
        let mut bracket = 0i64;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct(";") {
                    return j + 1;
                }
                if t.is_punct("{") {
                    let mut depth = 0i64;
                    while j < toks.len() {
                        if toks[j].is_punct("{") {
                            depth += 1;
                        } else if toks[j].is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                return j + 1;
                            }
                        }
                        j += 1;
                    }
                    return toks.len();
                }
            }
            j += 1;
        }
        toks.len()
    }
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

/// A parsed `// welle-lint: allow(check[, check]) — justification`.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-indexed line of the pragma comment.
    pub line: u32,
    /// Whether code precedes the pragma on its line: a trailing pragma
    /// covers only its own line, a standalone one covers the next.
    pub trailing: bool,
    /// Valid check names listed in `allow(...)`.
    pub checks: Vec<Check>,
    /// Unknown names listed in `allow(...)` (each is a finding).
    pub unknown: Vec<String>,
    /// Justification text after the closing paren (may be empty —
    /// which is a finding).
    pub justification: String,
}

/// The pragma marker scanned for inside `//` comments.
pub const PRAGMA_MARKER: &str = "welle-lint:";

/// Parses all pragmas out of a file's line comments.
pub fn parse_pragmas(lexed: &Lexed) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Doc comments are documentation, not suppression: the pragma
        // grammar can be *described* in rustdoc without taking effect.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find(PRAGMA_MARKER) else {
            continue;
        };
        let rest = c.text[at + PRAGMA_MARKER.len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            // A marker without allow(...) is malformed: surface it.
            out.push(Pragma {
                line: c.line,
                trailing: c.trailing,
                checks: Vec::new(),
                unknown: vec![rest.chars().take(24).collect()],
                justification: String::new(),
            });
            continue;
        };
        let (names, after) = match body.split_once(')') {
            Some((n, a)) => (n, a),
            None => (body, ""),
        };
        let mut checks = Vec::new();
        let mut unknown = Vec::new();
        for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Check::from_name(name) {
                Some(c) => checks.push(c),
                None => unknown.push(name.to_string()),
            }
        }
        let justification = after
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim()
            .to_string();
        out.push(Pragma {
            line: c.line,
            trailing: c.trailing,
            checks,
            unknown,
            justification,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------

/// Directory names never descended into: vendored stand-ins, build
/// output, and test trees (`#[cfg(test)]` regions are stripped
/// separately for in-file test modules).
const SKIP_DIRS: [&str; 5] = ["vendor", "target", "tests", ".git", "proptest-regressions"];

/// Recursively collects `.rs` sources under `root`, skipping
/// `SKIP_DIRS` (`vendor/`, `target/`, `tests/`, `.git/`,
/// `proptest-regressions/`), sorted for deterministic reports.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans a single source text as `rel` (forward-slash relative path),
/// returning surviving findings and per-check suppression counts.
pub fn scan_source(rel: &str, src: &str) -> (Vec<Finding>, BTreeMap<&'static str, usize>) {
    let lexed = lexer::lex(src);
    let live = test_regions::strip(&lexed.toks);
    let pragmas = parse_pragmas(&lexed);

    let mut raw: Vec<RawFinding> = Vec::new();
    for check in ALL_CHECKS {
        if check.applies_to(rel) {
            checks::run(check, &live, &mut raw);
        }
    }

    // One diagnostic per (check, line): repeated hits on one line are
    // one hazard to fix, and pragma suppression is line-granular.
    raw.sort_by_key(|f| (f.line, f.check));
    raw.dedup_by_key(|f| (f.line, f.check));

    let mut suppressed: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        // Ambient-time suppressions are scope-locked: a pragma cannot
        // excuse wall-clock reads in a seeded crate outside the one
        // sanctioned profiler module.
        let scope_ok = f.check != Check::NoAmbientEntropy || ambient_pragma_allowed(rel);
        let justified = scope_ok && pragmas.iter().any(|p| {
            p.checks.contains(&f.check)
                && !p.justification.is_empty()
                && if p.trailing {
                    p.line == f.line
                } else {
                    p.line == f.line || p.line + 1 == f.line
                }
        });
        if justified {
            *suppressed.entry(f.check.name()).or_insert(0) += 1;
        } else {
            findings.push(Finding {
                check: f.check.name(),
                file: rel.to_string(),
                line: f.line,
                message: f.message,
                why: f.check.why(),
            });
        }
    }
    // Malformed pragmas are findings in their own right — a suppression
    // that names the wrong check or skips the justification is exactly
    // the silent hole this tool exists to close.
    for p in &pragmas {
        for u in &p.unknown {
            findings.push(Finding {
                check: "invalid-pragma",
                file: rel.to_string(),
                line: p.line,
                message: format!("unknown check `{u}` in pragma"),
                why: "pragmas must name real checks; typos would silently suppress nothing",
            });
        }
        if p.unknown.is_empty() && !p.checks.is_empty() && p.justification.is_empty() {
            findings.push(Finding {
                check: "invalid-pragma",
                file: rel.to_string(),
                line: p.line,
                message: "pragma missing justification".to_string(),
                why: "every suppression must say why the hazard does not apply",
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.check).cmp(&(b.line, b.check)));
    (findings, suppressed)
}

/// Scans every source under `root` and aggregates the report.
///
/// # Errors
///
/// Propagates I/O failures from walking or reading sources.
pub fn scan_root(root: &Path) -> io::Result<ScanReport> {
    let mut report = ScanReport::default();
    for check in ALL_CHECKS {
        report.counts.insert(check.name(), 0);
        report.suppressed.insert(check.name(), 0);
    }
    report.counts.insert("invalid-pragma", 0);
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let (findings, suppressed) = scan_source(&rel, &src);
        report.files_scanned += 1;
        for (name, count) in suppressed {
            *report.suppressed.entry(name).or_insert(0) += count;
        }
        for f in &findings {
            *report.counts.entry(f.check).or_insert(0) += 1;
        }
        report.findings.extend(findings);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_are_stripped() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); z.unwrap(); } }";
        let (f, _) = scan_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_scanned() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }";
        let (f, _) = scan_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "// welle-lint: allow(no-lib-unwrap) — invariant: always present\n\
                   x.unwrap();\n\
                   y.unwrap(); // welle-lint: allow(no-lib-unwrap) — bounded above\n\
                   z.unwrap();";
        let (f, sup) = scan_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert_eq!(sup.get("no-lib-unwrap"), Some(&2));
    }

    #[test]
    fn pragma_without_justification_is_a_finding() {
        let src = "// welle-lint: allow(no-lib-unwrap)\nx.unwrap();";
        let (f, _) = scan_source("crates/core/src/x.rs", src);
        assert!(f.iter().any(|f| f.check == "invalid-pragma"), "{f:?}");
    }

    #[test]
    fn pragma_with_unknown_check_is_a_finding() {
        let src = "// welle-lint: allow(no-such-check) — because\nlet a = 1;";
        let (f, _) = scan_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].check, "invalid-pragma");
    }

    #[test]
    fn scoping_keeps_bench_free_of_entropy_check() {
        let src = "let t = Instant::now();";
        let (inside, _) = scan_source("crates/bench/src/x.rs", src);
        assert!(inside.is_empty(), "{inside:?}");
        let (outside, _) = scan_source("crates/core/src/x.rs", src);
        assert_eq!(outside.len(), 1);
    }

    #[test]
    fn ambient_pragmas_only_work_in_the_profiler_module() {
        let src = "// welle-lint: allow(no-ambient-entropy) — looks justified\n\
                   let t = Instant::now();";
        // The designated profiler module may justify wall-clock reads…
        let (prof, sup) = scan_source(super::PROFILER_MODULE, src);
        assert!(prof.is_empty(), "{prof:?}");
        assert_eq!(sup.get("no-ambient-entropy"), Some(&1));
        // …other seeded-crate files cannot, however well-worded the
        // pragma: the finding stands.
        for rel in [
            "crates/congest/src/engine.rs",
            "crates/core/src/runner.rs",
            "crates/walks/src/lib.rs",
        ] {
            let (f, sup) = scan_source(rel, src);
            assert_eq!(f.len(), 1, "{rel}: {f:?}");
            assert_eq!(f[0].check, "no-ambient-entropy", "{rel}");
            assert_eq!(sup.get("no-ambient-entropy"), None, "{rel}");
        }
        // Outside the seeded crates (examples, binaries) the ordinary
        // pragma rules apply.
        let (ex, _) = scan_source("examples/profile.rs", src);
        assert!(ex.is_empty(), "{ex:?}");
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut r = ScanReport::default();
        r.counts.insert("no-lib-unwrap", 1);
        r.findings.push(Finding {
            check: "no-lib-unwrap",
            file: "a \"b\".rs".into(),
            line: 3,
            message: "x\ny".into(),
            why: "",
        });
        let j = r.to_json();
        assert!(j.contains("a \\\"b\\\".rs"));
        assert!(j.contains("x\\ny"));
    }
}
