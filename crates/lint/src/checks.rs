//! The six determinism-contract checks, as token-stream scanners.
//!
//! Each check receives the file's token stream with `#[cfg(test)]` /
//! `#[test]` regions already removed (see [`crate::test_regions`]) and
//! emits raw findings; pragma suppression happens in
//! [`crate::scan_source`].

use crate::lexer::{Tok, TokKind};
use crate::{Check, RawFinding};

/// Methods whose call on a hash container observes bucket order.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "retain",
];

/// Runs `check` over `toks`, appending findings to `out`.
pub fn run(check: Check, toks: &[Tok], out: &mut Vec<RawFinding>) {
    match check {
        Check::NoHashIter => no_hash_iter(toks, out),
        Check::NoAmbientEntropy => no_ambient_entropy(toks, out),
        Check::TickMathSaturates => tick_math_saturates(toks, out),
        Check::NoLibUnwrap => no_lib_unwrap(toks, out),
        Check::NoFloatEq => no_float_eq(toks, out),
        Check::NoNarrowingCast => no_narrowing_cast(toks, out),
    }
}

/// Collects identifiers declared with a type (or constructor) that
/// mentions any name in `types`: struct fields / params (`name: T<..>`)
/// and lets (`let [mut] name ... = T::...;`).
fn declared_names(toks: &[Tok], types: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    let is_type = |t: &Tok| types.iter().any(|ty| t.is_ident(ty));
    for i in 0..toks.len() {
        // `name : ... T` within a short lookahead (fields, params,
        // typed lets). The lookahead stops at declaration boundaries.
        if toks[i].kind == TokKind::Ident && i + 2 < toks.len() && toks[i + 1].is_punct(":") {
            for t in toks.iter().skip(i + 2).take(6) {
                if t.is_punct(",")
                    || t.is_punct(";")
                    || t.is_punct("{")
                    || t.is_punct("=")
                    || t.is_punct(")")
                {
                    break;
                }
                if is_type(t) {
                    names.push(toks[i].text.clone());
                    break;
                }
            }
        }
        // `let [mut] name = ... T ... ;`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct(";") && k - j < 24 {
                    if is_type(&toks[k]) {
                        names.push(name.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// **no-hash-iter** — iterating a `HashMap`/`HashSet` observes bucket
/// order, which varies across `RandomState` seeds and std versions: any
/// seeded path that does so replays differently run to run.
fn no_hash_iter(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let hash_names = declared_names(toks, &["HashMap", "HashSet"]);
    if hash_names.is_empty() {
        return;
    }
    let is_hash = |t: &Tok| t.kind == TokKind::Ident && hash_names.contains(&t.text);
    for i in 0..toks.len() {
        // name.iter() / name.keys() / ...
        if is_hash(&toks[i])
            && i + 2 < toks.len()
            && toks[i + 1].is_punct(".")
            && HASH_ITER_METHODS.iter().any(|m| toks[i + 2].is_ident(m))
        {
            out.push(RawFinding {
                check: Check::NoHashIter,
                line: toks[i].line,
                message: format!(
                    "`{}.{}()` iterates hash-ordered state",
                    toks[i].text, toks[i + 2].text
                ),
            });
        }
        // for pat in <expr mentioning a hash name> { ... }
        if toks[i].is_ident("for") {
            let mut j = i + 1;
            let mut saw_in = false;
            while j < toks.len() && j - i < 40 {
                if toks[j].is_punct("{") || toks[j].is_punct(";") {
                    break;
                }
                if toks[j].is_ident("in") {
                    saw_in = true;
                } else if saw_in && is_hash(&toks[j]) {
                    out.push(RawFinding {
                        check: Check::NoHashIter,
                        line: toks[j].line,
                        message: format!("`for` loop over hash-ordered `{}`", toks[j].text),
                    });
                    break;
                }
                j += 1;
            }
        }
    }
}

/// **no-ambient-entropy** — wall-clock time and OS randomness make a
/// run a function of the machine, not the seed.
fn no_ambient_entropy(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        let hit = if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            Some("Instant::now")
        } else if t.is_ident("SystemTime") {
            Some("SystemTime")
        } else if t.is_ident("thread_rng") {
            Some("thread_rng")
        } else if t.is_ident("from_entropy") {
            Some("from_entropy")
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                check: Check::NoAmbientEntropy,
                line: t.line,
                message: format!("`{what}` draws ambient entropy"),
            });
        }
    }
}

/// Identifier naming convention for virtual-time quantities.
fn is_tick_ident(t: &Tok) -> bool {
    if t.kind != TokKind::Ident {
        return false;
    }
    let s = t.text.as_str();
    s == "due" || s == "tick" || s == "ticks" || s.ends_with("_tick") || s.ends_with("_ticks")
        || s.starts_with("due_")
}

/// Token kinds that can legally end a binary operand (so a following
/// `*` is multiplication, not a dereference).
fn ends_operand(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::IntLit | TokKind::FloatLit)
        || t.is_punct(")")
        || t.is_punct("]")
}

/// **tick-math-saturates** — raw `+`/`*` on virtual-time ticks can
/// overflow u64 under large delays and wrap the event heap's ordering;
/// `saturating_add`/`saturating_mul` keep due-times monotone.
fn tick_math_saturates(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct {
            continue;
        }
        let op = t.text.as_str();
        if !matches!(op, "+" | "*" | "+=" | "*=") {
            continue;
        }
        let prev = if i > 0 { Some(&toks[i - 1]) } else { None };
        let next = toks.get(i + 1);
        let binary = prev.is_some_and(ends_operand);
        let prev_tick = prev.is_some_and(is_tick_ident);
        let next_tick = next.is_some_and(is_tick_ident);
        if (binary || op.ends_with('=')) && (prev_tick || (binary && next_tick)) {
            let name = if prev_tick {
                &toks[i - 1].text
            } else {
                // binary && next_tick: next exists by is_some_and above.
                &toks[i + 1].text
            };
            out.push(RawFinding {
                check: Check::TickMathSaturates,
                line: t.line,
                message: format!("raw `{op}` on tick quantity `{name}`"),
            });
        }
    }
}

/// **no-lib-unwrap** — a panic in library code tears down whole
/// campaigns and hides the invariant that actually broke; use typed
/// errors, or document the invariant in a pragma.
fn no_lib_unwrap(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for i in 0..toks.len().saturating_sub(2) {
        if !toks[i].is_punct(".") {
            continue;
        }
        let m = &toks[i + 1];
        if (m.is_ident("unwrap") || m.is_ident("expect")) && toks[i + 2].is_punct("(") {
            out.push(RawFinding {
                check: Check::NoLibUnwrap,
                line: m.line,
                message: format!("`.{}(...)` in library code", m.text),
            });
        }
    }
}

/// **no-float-eq** — exact float comparison is representation-
/// dependent; in seeded paths a `==` that flips under a rounding-mode
/// or libm difference silently forks the replay.
fn no_float_eq(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let float_names = declared_names(toks, &["f32", "f64"]);
    let is_float_operand = |t: &Tok| {
        t.kind == TokKind::FloatLit
            || (t.kind == TokKind::Ident && float_names.contains(&t.text))
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_hit = i > 0 && is_float_operand(&toks[i - 1]);
        let next_hit = toks.get(i + 1).is_some_and(&is_float_operand);
        if prev_hit || next_hit {
            out.push(RawFinding {
                check: Check::NoFloatEq,
                line: t.line,
                message: format!("float `{}` comparison", t.text),
            });
        }
    }
}

/// **no-narrowing-cast** — `as u32`/`as u16` silently truncates; on
/// node/edge indices in the congest hot path that turns an overflow at
/// scale into a wrong-but-plausible index. Route narrowing through a
/// checked helper or justify the bound.
fn no_narrowing_cast(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for i in 0..toks.len().saturating_sub(1) {
        if !toks[i].is_ident("as") {
            continue;
        }
        let ty = &toks[i + 1];
        if !(ty.is_ident("u32") || ty.is_ident("u16")) {
            continue;
        }
        // Literal casts (`0 as u32`) carry their bound on their face.
        if i > 0 && matches!(toks[i - 1].kind, TokKind::IntLit | TokKind::CharLit) {
            continue;
        }
        out.push(RawFinding {
            check: Check::NoNarrowingCast,
            line: toks[i].line,
            message: format!("narrowing `as {}` on index expression", ty.text),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(check: Check, src: &str) -> Vec<RawFinding> {
        let mut out = Vec::new();
        run(check, &lex(src).toks, &mut out);
        out
    }

    #[test]
    fn hash_iter_flags_declared_names_only() {
        let src = "struct S { m: HashMap<u64, u32>, v: Vec<u32> }\n\
                   fn f(s: &S) { for k in s.m.keys() {} for x in &s.v {} s.v.iter(); }";
        let f = findings(Check::NoHashIter, src);
        // The for-loop and method rules both anchor line 2; scan_source
        // dedups by (check, line), so raw hits just need to exist and
        // stay off the Vec.
        assert!(!f.is_empty(), "{f:?}");
        assert!(f.iter().all(|f| f.message.contains("`m")), "{f:?}");
        assert!(f.iter().all(|f| !f.message.contains("`v")), "{f:?}");
    }

    #[test]
    fn hash_iter_sees_let_bindings() {
        let src = "fn f() { let mut seen = HashSet::new(); seen.insert(1); for s in seen.drain() {} }";
        let f = findings(Check::NoHashIter, src);
        // `.drain()` method hit and the for-loop both anchor on `seen`.
        assert!(!f.is_empty(), "{f:?}");
    }

    #[test]
    fn entropy_hits_all_four() {
        let src = "let a = Instant::now(); let b = SystemTime::now(); let c = thread_rng(); let d = StdRng::from_entropy();";
        assert_eq!(findings(Check::NoAmbientEntropy, src).len(), 4);
    }

    #[test]
    fn tick_math_binary_only() {
        let f = findings(Check::TickMathSaturates, "let x = base_tick + 4; due *= 2; let p = *due_ref;");
        // base_tick + 4, due *= 2 flagged; `*due_ref` deref position not.
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn unwrap_and_expect_but_not_unwrap_or() {
        let f = findings(Check::NoLibUnwrap, "a.unwrap(); b.expect(\"x\"); c.unwrap_or(3); d.unwrap_or_else(f);");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn float_eq_but_not_tuple_fields() {
        let f = findings(Check::NoFloatEq, "if x == 0.0 {} if pair.0 == usize::MAX {} let b: f64 = 1.0; if b != c {}");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn narrowing_cast_skips_literals_and_widening() {
        let f = findings(
            Check::NoNarrowingCast,
            "let a = dir as u32; let b = 0 as u32; let c = x as u64; let d = len() as u16;",
        );
        assert_eq!(f.len(), 2, "{f:?}");
    }
}
