//! A minimal, robust Rust lexer for the determinism checks.
//!
//! This is *not* a full Rust front end — the build environment is
//! offline, so `syn`/`dylint` are unavailable — but it is a faithful
//! token scanner: strings (plain, raw, byte), char literals vs.
//! lifetimes, nested block comments, numeric literals with float
//! detection, and maximal-munch compound operators all lex correctly,
//! so the checks in [`crate::checks`] never fire inside a string or
//! comment. Line comments are captured separately because they carry
//! the suppression pragmas (see [`crate::Pragma`]).

/// What kind of token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `as`, `HashMap`, ...).
    Ident,
    /// Integer literal (including tuple-index `0` in `pair.0`).
    IntLit,
    /// Float literal (`1.0`, `2e9`, `3f64`, ...).
    FloatLit,
    /// String literal of any flavor (plain, raw, byte).
    StrLit,
    /// Character or byte literal.
    CharLit,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation / operator, compound operators as one token.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// The token's kind.
    pub kind: TokKind,
    /// The token's exact source text (operators normalized verbatim).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A captured `//` line comment (pragma carrier).
#[derive(Clone, Debug)]
pub struct LineComment {
    /// Comment text including the leading `//`.
    pub text: String,
    /// 1-indexed line of the comment.
    pub line: u32,
    /// Whether any token precedes the comment on its line (trailing
    /// comments apply to their own line; standalone ones to the next).
    pub trailing: bool,
}

/// Output of [`lex`]: the token stream plus captured line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All `//` comments in source order.
    pub comments: Vec<LineComment>,
}

/// Compound operators, longest first so maximal munch is a prefix scan.
const OPERATORS: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "::", "->", "=>", "..", "//",
];

/// Lexes `src` into tokens and line comments. Never fails: unexpected
/// bytes become single-character punctuation, so a file that rustc
/// would reject still scans (the checks just see odd tokens).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if b[i + 1] == '/' {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                let trailing = out.toks.last().is_some_and(|t| t.line == line);
                out.comments.push(LineComment { text, line, trailing });
                continue;
            }
            if b[i + 1] == '*' {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Raw / byte string prefixes and raw identifiers.
        if c == 'r' || c == 'b' {
            if let Some((tok, ni, nl)) = lex_prefixed(&b, i, line) {
                out.toks.push(tok);
                i = ni;
                line = nl;
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (tok, ni) = lex_number(&b, i, line);
            out.toks.push(tok);
            i = ni;
            continue;
        }
        // Plain strings.
        if c == '"' {
            let (text, ni, nl) = lex_string(&b, i, line);
            out.toks.push(Tok {
                kind: TokKind::StrLit,
                text,
                line,
            });
            i = ni;
            line = nl;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (tok, ni) = lex_quote(&b, i, line);
            out.toks.push(tok);
            i = ni;
            continue;
        }
        // Operators, longest first.
        let mut matched = false;
        for op in OPERATORS {
            let oc: Vec<char> = op.chars().collect();
            if b[i..].starts_with(&oc[..]) {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: op.to_string(),
                    line,
                });
                i += oc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Lexes constructs starting with `r`/`b`: raw strings `r"..."` /
/// `r#"..."#`, byte strings `b"..."`, byte chars `b'x'`, raw
/// identifiers `r#name`, and `br`/`rb` combinations. Returns `None`
/// when the prefix is just the start of an ordinary identifier.
fn lex_prefixed(b: &[char], i: usize, line: u32) -> Option<(Tok, usize, u32)> {
    let n = b.len();
    let mut j = i;
    // Consume up to two prefix letters (r, b, br, rb).
    while j < n && (b[j] == 'r' || b[j] == 'b') && j - i < 2 {
        j += 1;
    }
    if j >= n {
        return None;
    }
    let has_r = b[i..j].contains(&'r');
    match b[j] {
        '"' => {
            let (text, ni, nl) = lex_string(b, j, line);
            Some((
                Tok {
                    kind: TokKind::StrLit,
                    text,
                    line,
                },
                ni,
                nl,
            ))
        }
        '#' if has_r => {
            // Raw string r#"..."# or raw identifier r#name.
            let mut hashes = 0usize;
            let mut k = j;
            while k < n && b[k] == '#' {
                hashes += 1;
                k += 1;
            }
            if k < n && b[k] == '"' {
                // Raw string: scan to `"` followed by `hashes` hashes.
                let mut l = line;
                let mut m = k + 1;
                while m < n {
                    if b[m] == '\n' {
                        l += 1;
                    } else if b[m] == '"' && b[m + 1..].len() >= hashes
                        && b[m + 1..m + 1 + hashes].iter().all(|&h| h == '#')
                    {
                        m += 1 + hashes;
                        let text: String = b[i..m].iter().collect();
                        return Some((
                            Tok {
                                kind: TokKind::StrLit,
                                text,
                                line,
                            },
                            m,
                            l,
                        ));
                    }
                    m += 1;
                }
                // Unterminated: swallow the rest.
                let text: String = b[i..].iter().collect();
                Some((
                    Tok {
                        kind: TokKind::StrLit,
                        text,
                        line,
                    },
                    n,
                    l,
                ))
            } else if hashes == 1 && k < n && (b[k].is_alphabetic() || b[k] == '_') {
                // Raw identifier.
                let mut m = k;
                while m < n && (b[m].is_alphanumeric() || b[m] == '_') {
                    m += 1;
                }
                let text: String = b[k..m].iter().collect();
                Some((
                    Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                    },
                    m,
                    line,
                ))
            } else {
                None
            }
        }
        '\'' if !has_r => {
            let (tok, ni) = lex_quote(b, j, line);
            Some((tok, ni, line))
        }
        _ => None,
    }
}

/// Lexes a plain (escaped) string starting at the opening `"`.
/// Returns `(text, next_index, next_line)`.
fn lex_string(b: &[char], i: usize, line: u32) -> (String, usize, u32) {
    let n = b.len();
    let mut j = i + 1;
    let mut l = line;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                l += 1;
                j += 1;
            }
            '"' => {
                j += 1;
                return (b[i..j].iter().collect(), j, l);
            }
            _ => j += 1,
        }
    }
    (b[i..].iter().collect(), n, l)
}

/// Lexes either a char literal or a lifetime starting at `'`.
fn lex_quote(b: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    // Lifetime: 'ident NOT followed by a closing quote.
    if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
        let mut j = i + 1;
        while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        if j >= n || b[j] != '\'' {
            return (
                Tok {
                    kind: TokKind::Lifetime,
                    text: b[i..j].iter().collect(),
                    line,
                },
                j,
            );
        }
    }
    // Char literal: scan escapes up to the closing quote.
    let mut j = i + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\'' => {
                j += 1;
                return (
                    Tok {
                        kind: TokKind::CharLit,
                        text: b[i..j].iter().collect(),
                        line,
                    },
                    j,
                );
            }
            '\n' => break,
            _ => j += 1,
        }
    }
    (
        Tok {
            kind: TokKind::CharLit,
            text: b[i..j].iter().collect(),
            line,
        },
        j,
    )
}

/// Lexes a numeric literal; floats are `1.0`-style fractions, exponent
/// forms, or explicit `f32`/`f64` suffixes. `1..2` and `pair.0` stay
/// integers followed by punctuation.
fn lex_number(b: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    let mut j = i;
    let mut is_float = false;
    let hex = j + 1 < n && b[j] == '0' && (b[j + 1] == 'x' || b[j + 1] == 'X');
    if hex {
        j += 2;
        while j < n && (b[j].is_ascii_hexdigit() || b[j] == '_') {
            j += 1;
        }
    } else {
        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
            j += 1;
        }
        // Fraction: '.' followed by a digit (not `..`, not `.method`).
        if j + 1 < n && b[j] == '.' && b[j + 1].is_ascii_digit() {
            is_float = true;
            j += 1;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        } else if j < n
            && b[j] == '.'
            && (j + 1 >= n || (!b[j + 1].is_alphanumeric() && b[j + 1] != '.' && b[j + 1] != '_'))
        {
            // Trailing-dot float `1.`.
            is_float = true;
            j += 1;
        }
        // Exponent.
        if j < n && (b[j] == 'e' || b[j] == 'E') {
            let mut k = j + 1;
            if k < n && (b[k] == '+' || b[k] == '-') {
                k += 1;
            }
            if k < n && b[k].is_ascii_digit() {
                is_float = true;
                j = k;
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
            }
        }
    }
    // Suffix (u32, f64, usize, ...).
    let suf_start = j;
    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    let suffix: String = b[suf_start..j].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    (
        Tok {
            kind: if is_float {
                TokKind::FloatLit
            } else {
                TokKind::IntLit
            },
            text: b[i..j].iter().collect(),
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let l = lex("let s = \"for x in map.iter()\"; // thread_rng here\n/* SystemTime */ let t = 1;");
        assert!(!l.toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(!l.toks.iter().any(|t| t.is_ident("SystemTime")));
        assert!(!l.toks.iter().any(|t| t.is_ident("iter")));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].trailing);
    }

    #[test]
    fn raw_strings_and_chars() {
        let l = lex("let s = r#\"unwrap() \"quoted\" \"#; let c = '\\''; let lt: &'static str = b\"x\";");
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let k = kinds("1.0 1..2 x.0 2e9 3f64 0x1F 7usize");
        assert_eq!(k[0].0, TokKind::FloatLit);
        assert_eq!(k[1].0, TokKind::IntLit); // 1
        assert_eq!(k[2].1, ".."); // range stays punctuation
        let floats: Vec<_> = k.iter().filter(|(kind, _)| *kind == TokKind::FloatLit).collect();
        assert_eq!(floats.len(), 3, "1.0, 2e9, 3f64: {k:?}");
    }

    #[test]
    fn compound_operators_lex_once() {
        let k = kinds("a == b != c += d :: e -> f");
        let puncts: Vec<_> = k
            .iter()
            .filter(|(kind, _)| *kind == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "+=", "::", "->"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\"multi\nline\"\nc");
        let c = l.toks.iter().find(|t| t.is_ident("c")).map(|t| t.line);
        assert_eq!(c, Some(5));
    }
}
