//! `welle-lint` CLI: scan the workspace (or given roots) for
//! determinism-contract violations.
//!
//! ```text
//! cargo run -p welle-lint -- [--check] [--format text|json] [--quiet] [PATH...]
//! ```
//!
//! With no `PATH`, scans the current directory (the workspace root when
//! run via `cargo run` from the root). `--check` exits nonzero when any
//! finding survives pragma filtering — that is the CI mode.

use std::path::PathBuf;
use std::process::ExitCode;

use welle_lint::{scan_root, ScanReport, ALL_CHECKS};

struct Args {
    check: bool,
    json: bool,
    quiet: bool,
    roots: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        json: false,
        quiet: false,
        roots: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => args.check = true,
            "--quiet" | "-q" => args.quiet = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {other:?}"
                    ))
                }
            },
            "--help" | "-h" => {
                println!(
                    "welle-lint — determinism-contract static analyzer\n\n\
                     USAGE: welle-lint [--check] [--format text|json] [--quiet] [PATH...]\n\n\
                     --check          exit 1 if any finding survives pragma filtering\n\
                     --format json    machine-readable report on stdout\n\
                     --quiet          suppress the per-check stats table\n\n\
                     Checks: {}",
                    ALL_CHECKS
                        .iter()
                        .map(|c| c.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.roots.push(PathBuf::from(path)),
        }
    }
    if args.roots.is_empty() {
        args.roots.push(PathBuf::from("."));
    }
    Ok(args)
}

fn merge(into: &mut ScanReport, from: ScanReport) {
    into.files_scanned += from.files_scanned;
    into.findings.extend(from.findings);
    for (k, v) in from.counts {
        *into.counts.entry(k).or_insert(0) += v;
    }
    for (k, v) in from.suppressed {
        *into.suppressed.entry(k).or_insert(0) += v;
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("welle-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = ScanReport::default();
    for root in &args.roots {
        match scan_root(root) {
            Ok(r) => merge(&mut report, r),
            Err(e) => {
                eprintln!("welle-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    if args.json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        if !args.quiet {
            eprintln!(
                "welle-lint: {} file(s), {} finding(s)",
                report.files_scanned,
                report.findings.len()
            );
            for (name, count) in &report.counts {
                let sup = report.suppressed.get(name).copied().unwrap_or(0);
                if *count > 0 || sup > 0 {
                    eprintln!("  {name:<22} {count:>4} finding(s)  {sup:>4} justified");
                }
            }
            if report.findings.iter().all(|_| false) && report.counts.values().all(|&c| c == 0) {
                eprintln!("  clean — every check at zero findings");
            }
        }
    }

    if args.check && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
