//! Property-based tests for the walk machinery.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle_graph::{analysis, gen, NodeId};
use welle_walks::{
    endpoint_distribution, lazy_step, run_walk_fleet, split_lazy, Hop, ReverseRoute, TrailStore,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_conserves_arbitrary_counts(count in 0u32..5_000, degree in 1usize..64, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = split_lazy(count, degree, &mut rng);
        let moved: u32 = s.moves.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(s.stay + moved, count);
        let mut ports: Vec<usize> = s.moves.iter().map(|&(p, _)| p.index()).collect();
        ports.dedup();
        prop_assert_eq!(ports.len(), s.moves.len(), "ports are distinct and sorted");
    }

    #[test]
    fn distribution_mass_is_preserved(n in 4usize..32, steps in 0u32..50, start_seed in any::<u64>()) {
        let g = gen::ring(n.max(3)).unwrap();
        let start = NodeId::new((start_seed % n as u64) as usize % g.n());
        let d = endpoint_distribution(&g, start, steps);
        let mass: f64 = d.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn stationary_is_fixed_point_on_random_graphs(seed in any::<u64>(), n in 6usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnp_connected(n, 0.5, &mut rng).unwrap();
        let pi = analysis::stationary_distribution(&g).unwrap();
        let mut next = vec![0.0; g.n()];
        lazy_step(&g, &pi, &mut next);
        for (a, b) in pi.iter().zip(&next) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trail_reverse_route_terminates(steps in 1u32..40, seed in any::<u64>()) {
        // Build a random single-walk trail: at each step, stay or come
        // from a random port; reverse routing must reach Origin.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = TrailStore::new();
        let t = store.enter_epoch(9, 0, steps).unwrap();
        t.record_in(0, Hop::Origin);
        for s in 1..=steps {
            let hop = if rand::RngExt::random_bool(&mut rng, 0.5) {
                Hop::Stay
            } else {
                Hop::Via(welle_graph::Port::new(rand::RngExt::random_range(&mut rng, 0..4usize)))
            };
            t.record_in(s, hop);
        }
        // From any step, the route either forwards over an edge or lands
        // at the origin — never Broken.
        let trail = store.current(9).unwrap();
        for s in 0..=steps {
            prop_assert_ne!(trail.reverse_route(s), ReverseRoute::Broken);
        }
    }

    #[test]
    fn walk_fleet_conservation_on_random_graphs(seed in any::<u64>(), n in 8usize..24, walks in 1u32..200, len in 1u32..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(gen::gnp_connected(n, 0.4, &mut rng).unwrap());
        let origin = (seed % n as u64) as usize;
        let (counts, reported) = run_walk_fleet(&g, origin, walks, len, seed ^ 7);
        let total: u32 = counts.iter().sum();
        prop_assert_eq!(total, walks, "every walk ends exactly once");
        prop_assert_eq!(reported, walks, "every endpoint reports back");
    }

    #[test]
    fn endpoints_stay_within_walk_radius(seed in any::<u64>(), len in 1u32..6) {
        let g = Arc::new(gen::torus2d(6, 6).unwrap());
        let (counts, _) = run_walk_fleet(&g, 0, 50, len, seed);
        let dist = analysis::bfs(&g, NodeId::new(0));
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                prop_assert!(dist[i] <= len, "endpoint {i} at distance {} > {len}", dist[i]);
            }
        }
    }
}
