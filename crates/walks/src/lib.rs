//! Lazy random walks for the `welle` leader-election reproduction.
//!
//! Everything §2–§3 of the paper needs from random walks:
//!
//! * [`mixing_time`] — the paper's `t_mix` (first `t` with
//!   `‖πₜ − π*‖∞ ≤ 1/2n`), computed by exact distribution evolution, plus
//!   a spectral estimate for large graphs,
//! * [`TokenBatch`] / [`split_lazy`] — aggregated walk tokens and their
//!   lazy one-step splitting (the CONGEST congestion trick of Lemma 12),
//! * [`TrailStore`] — per-node breadcrumb trails recording how walks
//!   passed through, supporting the reverse (proxy → contender) and
//!   forward (contender → proxies) routing of Algorithm 2,
//! * [`sampling`] — centralized walk simulation used to validate the
//!   distributed machinery.
//!
//! The distributed pieces run under the CONGEST assumptions enforced by
//! `welle-congest`: one message per directed edge per round (excess
//! queues as congestion — which is why tokens travel *aggregated* as
//! counts), and an `O(log n)`-bit per-message budget
//! (`EngineConfig::bandwidth_bits`) that aggregated counts must fit.
//!
//! ```
//! use welle_graph::gen;
//! use welle_walks::{mixing_time, MixingOptions};
//!
//! let g = gen::hypercube(5).unwrap();
//! let t = mixing_time(&g, MixingOptions::default()).unwrap();
//! assert!(t > 0 && t < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mixing;
mod token;
mod trails;

pub mod distributed;
pub mod sampling;

pub use mixing::{
    endpoint_distribution, lazy_step, linf_distance, mixing_time, mixing_time_from,
    mixing_time_spectral_estimate, MixingOptions, StartPolicy,
};
pub use distributed::{run_walk_fleet, FleetMsg, WalkFleetNode, SIGNAL_REPORT};
pub use token::{split_lazy, LazySplit, TokenBatch};
pub use trails::{Hop, ReverseRoute, Trail, TrailStore};
