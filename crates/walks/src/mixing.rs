//! Mixing time of the lazy random walk (§2 of the paper).
//!
//! The walk has transition matrix `P = ½I + ½D⁻¹A` and stationary
//! distribution `π*(v) = deg(v)/2m`. The paper defines
//! `t_mix = min { t : ∀π₀, ‖πₜ − π*‖∞ ≤ 1/2n }`; because the distance is
//! convex in the start distribution, the maximum is attained at point
//! masses, so we evolve the walk from single-node starts.

use welle_graph::{analysis, Graph, NodeId};

/// Which start vertices to examine when maximizing over `π₀`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartPolicy {
    /// All `n` point masses — the exact `t_mix` (cost `O(n · m · t_mix)`).
    All,
    /// A deterministic sample of `k` starts (stride over node indices)
    /// plus the extremal-degree nodes; a lower bound on `t_mix` that is
    /// nearly always exact on the symmetric families used here.
    Sample(usize),
    /// A single given start (gives that start's mixing time only).
    Single(NodeId),
}

/// Options for [`mixing_time`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixingOptions {
    /// Give up (return `None`) if the walk has not mixed after this many
    /// steps. Remember `t_mix` can be `Θ(n³)` on lollipop-like graphs.
    pub horizon: u32,
    /// Start-vertex policy.
    pub starts: StartPolicy,
}

impl Default for MixingOptions {
    fn default() -> Self {
        MixingOptions {
            horizon: 100_000,
            starts: StartPolicy::All,
        }
    }
}

/// One lazy-walk step: `next = Pᵀ cur`, i.e.
/// `next[v] = ½·cur[v] + Σ_{u∼v} cur[u]/(2·deg(u))`.
pub fn lazy_step(g: &Graph, cur: &[f64], next: &mut [f64]) {
    debug_assert_eq!(cur.len(), g.n());
    debug_assert_eq!(next.len(), g.n());
    for v in g.nodes() {
        let mut acc = 0.5 * cur[v.index()];
        for &u in g.neighbors(v) {
            acc += cur[u.index()] / (2.0 * g.degree(u) as f64);
        }
        next[v.index()] = acc;
    }
}

/// `‖a − b‖∞`.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Mixing time from a single start vertex: the first `t` with
/// `‖πₜ − π*‖∞ ≤ 1/2n`. `None` if the graph has an isolated node, is
/// disconnected, or the horizon is exceeded.
pub fn mixing_time_from(g: &Graph, start: NodeId, horizon: u32) -> Option<u32> {
    let pi_star = analysis::stationary_distribution(g)?;
    if !analysis::is_connected(g) {
        return None;
    }
    let n = g.n();
    let threshold = 1.0 / (2.0 * n as f64);
    let mut cur = vec![0.0f64; n];
    cur[start.index()] = 1.0;
    let mut next = vec![0.0f64; n];
    if linf_distance(&cur, &pi_star) <= threshold {
        return Some(0);
    }
    for t in 1..=horizon {
        lazy_step(g, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
        if linf_distance(&cur, &pi_star) <= threshold {
            return Some(t);
        }
    }
    None
}

/// The walk distribution after `t` steps from `start` (exact evolution).
pub fn endpoint_distribution(g: &Graph, start: NodeId, t: u32) -> Vec<f64> {
    let n = g.n();
    let mut cur = vec![0.0f64; n];
    cur[start.index()] = 1.0;
    let mut next = vec![0.0f64; n];
    for _ in 0..t {
        lazy_step(g, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// The paper's `t_mix`: worst mixing time over the chosen start set.
///
/// Returns `None` for disconnected graphs / isolated nodes, or when any
/// examined start fails to mix within the horizon.
///
/// ```
/// use welle_graph::gen;
/// use welle_walks::{mixing_time, MixingOptions};
///
/// let g = gen::clique(16).unwrap();
/// let t = mixing_time(&g, MixingOptions::default()).unwrap();
/// assert!(t <= 8, "cliques mix in O(1): got {t}");
/// ```
pub fn mixing_time(g: &Graph, opts: MixingOptions) -> Option<u32> {
    let starts: Vec<NodeId> = match opts.starts {
        StartPolicy::All => g.nodes().collect(),
        StartPolicy::Single(v) => vec![v],
        StartPolicy::Sample(k) => {
            let k = k.max(1);
            let n = g.n();
            let stride = (n / k).max(1);
            let mut v: Vec<NodeId> = (0..n).step_by(stride).map(NodeId::new).collect();
            // Extremal degrees are the usual worst starts; include them.
            let min_deg = g.nodes().min_by_key(|&u| g.degree(u));
            let max_deg = g.nodes().max_by_key(|&u| g.degree(u));
            v.extend(min_deg);
            v.extend(max_deg);
            v.sort_unstable();
            v.dedup();
            v
        }
    };
    let mut worst = 0u32;
    for s in starts {
        let t = mixing_time_from(g, s, opts.horizon)?;
        worst = worst.max(t);
    }
    Some(worst)
}

/// Spectral upper estimate of `t_mix` from the lazy spectral gap `γ`:
/// `t ≈ ln(2n / π_min) / γ` (the standard relaxation-time bound for
/// reversible chains, with the paper's `1/2n` accuracy target).
///
/// This is an *estimate*, not a certificate — use [`mixing_time`] when
/// exactness matters; use this to cross-check `Θ(1/φ) ≤ t_mix ≤ Θ(1/φ²)`
/// (Eq. 1) on graphs too large for full evolution.
pub fn mixing_time_spectral_estimate(g: &Graph) -> Option<f64> {
    let gap = analysis::lazy_spectral_gap(g, analysis::SpectralOptions::default())?;
    if gap <= 0.0 {
        return None;
    }
    let pi = analysis::stationary_distribution(g)?;
    let pi_min = pi.iter().copied().fold(f64::INFINITY, f64::min);
    let n = g.n() as f64;
    Some(((2.0 * n / pi_min).ln() / gap).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use welle_graph::gen;

    #[test]
    fn lazy_step_preserves_mass_and_fixes_stationary() {
        let g = gen::hypercube(4).unwrap();
        let pi = analysis::stationary_distribution(&g).unwrap();
        let mut next = vec![0.0; g.n()];
        lazy_step(&g, &pi, &mut next);
        assert!(linf_distance(&pi, &next) < 1e-12, "π* is a fixed point");
        let mass: f64 = next.iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clique_mixes_in_constant_time() {
        for n in [8usize, 16, 32] {
            let g = gen::clique(n).unwrap();
            let t = mixing_time(&g, MixingOptions::default()).unwrap();
            assert!(t <= 8, "K_{n} should mix in O(1), got {t}");
        }
    }

    #[test]
    fn ring_mixing_grows_quadratically() {
        let opts = MixingOptions {
            horizon: 200_000,
            starts: StartPolicy::Single(NodeId::new(0)),
        };
        let t8 = mixing_time(&gen::ring(8).unwrap(), opts).unwrap();
        let t16 = mixing_time(&gen::ring(16).unwrap(), opts).unwrap();
        let t32 = mixing_time(&gen::ring(32).unwrap(), opts).unwrap();
        // Quadratic growth: doubling n should roughly 4x the time.
        let r1 = t16 as f64 / t8 as f64;
        let r2 = t32 as f64 / t16 as f64;
        assert!(r1 > 2.5 && r1 < 6.0, "t8={t8} t16={t16} ratio {r1}");
        assert!(r2 > 2.5 && r2 < 6.0, "t16={t16} t32={t32} ratio {r2}");
    }

    #[test]
    fn expander_mixing_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(4);
        let g64 = gen::random_regular(64, 4, &mut rng).unwrap();
        let g256 = gen::random_regular(256, 4, &mut rng).unwrap();
        let opts = MixingOptions {
            horizon: 10_000,
            starts: StartPolicy::Sample(8),
        };
        let t64 = mixing_time(&g64, opts).unwrap();
        let t256 = mixing_time(&g256, opts).unwrap();
        // O(log n): far below sqrt(n), and growing slowly.
        assert!(t64 <= 40, "t_mix(64) = {t64}");
        assert!(t256 <= 60, "t_mix(256) = {t256}");
        assert!(t256 as f64 <= 2.5 * t64 as f64, "t64={t64} t256={t256}");
    }

    #[test]
    fn sinclair_sandwich_eq1() {
        // Θ(1/φ) ≤ t_mix ≤ Θ(1/φ²) with explicit modest constants.
        for g in [
            gen::ring(16).unwrap(),
            gen::hypercube(4).unwrap(),
            gen::clique(12).unwrap(),
            gen::barbell(6).unwrap(),
        ] {
            let phi = analysis::conductance_sweep(&g, 2000);
            let t = mixing_time(&g, MixingOptions::default()).unwrap() as f64;
            assert!(
                t <= 16.0 / (phi * phi),
                "t_mix {t} above O(1/φ²) for φ={phi}"
            );
            assert!(
                t >= 0.05 / phi,
                "t_mix {t} below Ω(1/φ) for φ={phi}"
            );
        }
    }

    #[test]
    fn endpoint_distribution_converges_to_stationary() {
        let g = gen::torus2d(4, 4).unwrap();
        let pi = analysis::stationary_distribution(&g).unwrap();
        let d = endpoint_distribution(&g, NodeId::new(0), 400);
        assert!(linf_distance(&d, &pi) < 1e-6);
    }

    #[test]
    fn horizon_exceeded_returns_none() {
        let g = gen::ring(64).unwrap();
        let opts = MixingOptions {
            horizon: 3,
            starts: StartPolicy::Single(NodeId::new(0)),
        };
        assert_eq!(mixing_time(&g, opts), None);
    }

    #[test]
    fn disconnected_returns_none() {
        let g = welle_graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(mixing_time_from(&g, NodeId::new(0), 100), None);
    }

    #[test]
    fn spectral_estimate_brackets_exact_loosely() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::random_regular(128, 4, &mut rng).unwrap();
        let exact = mixing_time(&g, MixingOptions::default()).unwrap() as f64;
        let est = mixing_time_spectral_estimate(&g).unwrap();
        // The relaxation bound overshoots but should stay within ~20x.
        assert!(est >= exact * 0.5, "est {est} vs exact {exact}");
        assert!(est <= exact * 30.0, "est {est} vs exact {exact}");
    }

    #[test]
    fn sample_policy_matches_all_on_vertex_transitive_graphs() {
        let g = gen::hypercube(4).unwrap();
        let all = mixing_time(&g, MixingOptions::default()).unwrap();
        let sampled = mixing_time(
            &g,
            MixingOptions {
                horizon: 100_000,
                starts: StartPolicy::Sample(4),
            },
        )
        .unwrap();
        assert_eq!(all, sampled);
    }
}
