//! A standalone CONGEST protocol exercising the distributed walk
//! machinery in isolation: one origin launches `k` aggregated lazy walks
//! of length `L`; proxies report back along the recorded trails. Used to
//! validate (a) that token counts are conserved end-to-end, (b) that the
//! empirical endpoint distribution matches the exact `P^L` evolution,
//! and (c) that reverse routing always reaches the origin — independent
//! of the election protocol built on top.

use welle_congest::{bits_for, Context, Payload, Protocol};
use welle_graph::Port;

use crate::token::split_lazy;
use crate::trails::{Hop, ReverseRoute, TrailStore};

/// Message of the walk-fleet protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetMsg {
    /// A bundle of walks in flight.
    Token {
        /// Steps left.
        remaining: u32,
        /// Bundle multiplicity.
        count: u32,
    },
    /// A proxy's report travelling back to the origin: how many walks
    /// ended at it.
    Report {
        /// Step index at the receiving node (reverse-routing state).
        step: u32,
        /// Number of walks that ended at the reporting proxy.
        count: u32,
    },
}

/// The empty token bundle: fills recycled engine arena slots (the
/// [`Payload`] contract) and is never sent by the protocol.
impl Default for FleetMsg {
    fn default() -> Self {
        FleetMsg::Token {
            remaining: 0,
            count: 0,
        }
    }
}

impl Payload for FleetMsg {
    fn bit_size(&self) -> usize {
        match self {
            FleetMsg::Token { remaining, count } => {
                1 + bits_for(*remaining as u64 + 1) + bits_for(*count as u64)
            }
            FleetMsg::Report { step, count } => {
                1 + bits_for(*step as u64 + 1) + bits_for(*count as u64)
            }
        }
    }
}

/// One node of the walk fleet (single origin, epoch 0).
#[derive(Debug)]
pub struct WalkFleetNode {
    is_origin: bool,
    walks: u32,
    walk_len: u32,
    trails: TrailStore,
    pending_stays: Vec<(u32, u32)>,
    /// Walks that ended at this node.
    ended_here: u32,
    /// Reports received back at the origin: total walks accounted for.
    reported: u32,
    reported_own: bool,
}

/// Signal value instructing proxies to send their reports (broadcast by
/// the driver once the walk traffic has quiesced).
pub const SIGNAL_REPORT: welle_congest::Signal = 1;

const ORIGIN_KEY: u64 = 1;

impl WalkFleetNode {
    /// Creates a node; the single `origin` node launches `walks` walks of
    /// `walk_len` steps; proxies report when the driver broadcasts
    /// [`SIGNAL_REPORT`].
    pub fn new(is_origin: bool, walks: u32, walk_len: u32) -> Self {
        WalkFleetNode {
            is_origin,
            walks,
            walk_len,
            trails: TrailStore::new(),
            pending_stays: Vec::new(),
            ended_here: 0,
            reported: 0,
            reported_own: false,
        }
    }

    /// Number of walks that ended at this node.
    pub fn ended_here(&self) -> u32 {
        self.ended_here
    }

    /// Total walks the origin has heard reports for.
    pub fn reported(&self) -> u32 {
        self.reported
    }

    fn handle_tokens(
        &mut self,
        ctx: &mut Context<'_, FleetMsg>,
        remaining: u32,
        count: u32,
        via: Hop,
    ) {
        let step = self.walk_len - remaining;
        let trail = self
            .trails
            .enter_epoch(ORIGIN_KEY, 0, self.walk_len)
            // welle-lint: allow(no-lib-unwrap) — invariant: this protocol only ever runs epoch 0 with one fixed walk_len
            .expect("single epoch");
        trail.record_in(step, via);
        if remaining == 0 {
            self.ended_here += count;
            return;
        }
        let split = split_lazy(count, ctx.degree(), ctx.rng());
        if split.stay > 0 {
            self.trails
                .enter_epoch(ORIGIN_KEY, 0, self.walk_len)
                // welle-lint: allow(no-lib-unwrap) — invariant: this protocol only ever runs epoch 0 with one fixed walk_len
                .expect("single epoch")
                .record_out(step, Hop::Stay);
            self.pending_stays.push((remaining - 1, split.stay));
            let next = ctx.round() + 1;
            ctx.wake_at(next);
        }
        for (port, cnt) in split.moves {
            self.trails
                .enter_epoch(ORIGIN_KEY, 0, self.walk_len)
                // welle-lint: allow(no-lib-unwrap) — invariant: this protocol only ever runs epoch 0 with one fixed walk_len
                .expect("single epoch")
                .record_out(step, Hop::Via(port));
            ctx.send(
                port,
                FleetMsg::Token {
                    remaining: remaining - 1,
                    count: cnt,
                },
            );
        }
    }

    fn route_report(&mut self, ctx: &mut Context<'_, FleetMsg>, step: u32, count: u32) {
        let route = match self.trails.at_epoch(ORIGIN_KEY, 0) {
            Some(t) => t.reverse_route(step),
            None => ReverseRoute::Broken,
        };
        match route {
            ReverseRoute::AtOrigin => {
                debug_assert!(self.is_origin, "reports must land at the origin");
                self.reported += count;
            }
            ReverseRoute::Forward(port, next_step) => ctx.send(
                port,
                FleetMsg::Report {
                    step: next_step,
                    count,
                },
            ),
            ReverseRoute::Broken => panic!("broken reverse route in walk fleet"),
        }
    }
}

impl Protocol for WalkFleetNode {
    type Msg = FleetMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, FleetMsg>) {
        if self.is_origin {
            let (walks, len) = (self.walks, self.walk_len);
            self.handle_tokens(ctx, len, walks, Hop::Origin);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, FleetMsg>, inbox: &mut Vec<(Port, FleetMsg)>) {
        let stays = std::mem::take(&mut self.pending_stays);
        for (remaining, count) in stays {
            self.handle_tokens(ctx, remaining, count, Hop::Stay);
        }
        for (port, msg) in inbox.drain(..) {
            match msg {
                FleetMsg::Token { remaining, count } => {
                    self.handle_tokens(ctx, remaining, count, Hop::Via(port))
                }
                FleetMsg::Report { step, count } => self.route_report(ctx, step, count),
            }
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_, FleetMsg>, signal: welle_congest::Signal) {
        if signal == SIGNAL_REPORT && !self.reported_own && self.ended_here > 0 {
            self.reported_own = true;
            let (len, ended) = (self.walk_len, self.ended_here);
            self.route_report(ctx, len, ended);
        }
    }
}

/// Runs a walk fleet on `graph` from `origin`, returning
/// `(per-node endpoint counts, walks reported back to origin)`.
pub fn run_walk_fleet(
    graph: &std::sync::Arc<welle_graph::Graph>,
    origin: usize,
    walks: u32,
    walk_len: u32,
    seed: u64,
) -> (Vec<u32>, u32) {
    let mut engine = welle_congest::Engine::from_fn(
        std::sync::Arc::clone(graph),
        welle_congest::EngineConfig {
            seed,
            bandwidth_bits: None,
        },
        |i| WalkFleetNode::new(i == origin, walks, walk_len),
    );
    // Phase 1: walks spread until the network quiesces.
    engine.run(1_000_000);
    // Phase 2: proxies report back along the trails.
    engine.signal(SIGNAL_REPORT);
    engine.run(2_000_000);
    let counts: Vec<u32> = engine.nodes().iter().map(|n| n.ended_here()).collect();
    let reported = engine.node(origin).reported();
    (counts, reported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixing::endpoint_distribution;
    use std::sync::Arc;
    use welle_graph::{gen, NodeId};

    #[test]
    fn walk_counts_are_conserved() {
        let g = Arc::new(gen::hypercube(5).unwrap());
        let (counts, reported) = run_walk_fleet(&g, 3, 500, 8, 1);
        let total: u32 = counts.iter().sum();
        assert_eq!(total, 500, "every walk ends somewhere");
        assert_eq!(reported, 500, "every endpoint reports back to origin");
    }

    #[test]
    fn endpoint_distribution_matches_exact_evolution() {
        let g = Arc::new(gen::clique(16).unwrap());
        let walks = 40_000u32;
        let len = 4u32;
        let (counts, _) = run_walk_fleet(&g, 0, walks, len, 7);
        let exact = endpoint_distribution(&g, NodeId::new(0), len);
        let mut tv = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            tv += (c as f64 / walks as f64 - exact[i]).abs();
        }
        tv *= 0.5;
        assert!(tv < 0.02, "total variation {tv} too large");
    }

    #[test]
    fn zero_length_walks_stay_home() {
        let g = Arc::new(gen::ring(8).unwrap());
        // walk_len >= 1 enforced by construction; length-1 walks spread
        // only to neighbours or stay.
        let (counts, reported) = run_walk_fleet(&g, 2, 100, 1, 3);
        assert_eq!(reported, 100);
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                let d = welle_graph::analysis::bfs(&g, NodeId::new(2))[i];
                assert!(d <= 1, "length-1 walk ended {d} hops away");
            }
        }
    }
}
