//! Centralized (non-distributed) walk simulation, used to validate the
//! distributed token machinery and to sanity-check that "walks of length
//! ≥ t_mix end at near-uniform (stationary) nodes" — the black-box view
//! the paper takes in §3.

use rand::{Rng, RngExt};
use welle_graph::{Graph, NodeId};

/// Simulates one lazy random walk of `steps` steps from `start`, returning
/// the end node.
///
/// # Panics
///
/// Panics if the walk reaches an isolated node (impossible on connected
/// graphs).
pub fn walk_endpoint<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    steps: u32,
    rng: &mut R,
) -> NodeId {
    let mut at = start;
    for _ in 0..steps {
        let d = g.degree(at);
        assert!(d > 0, "walk stranded on isolated node {at}");
        if !rng.random_bool(0.5) {
            let p = rng.random_range(0..d);
            at = g.neighbor(at, welle_graph::Port::new(p));
        }
    }
    at
}

/// Empirical endpoint distribution of `samples` walks of length `steps`.
pub fn empirical_endpoints<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    steps: u32,
    samples: usize,
    rng: &mut R,
) -> Vec<f64> {
    let mut counts = vec![0usize; g.n()];
    for _ in 0..samples {
        counts[walk_endpoint(g, start, steps, rng).index()] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / samples as f64)
        .collect()
}

/// Total-variation distance `½‖a − b‖₁` between two distributions.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixing::{endpoint_distribution, mixing_time_from};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use welle_graph::{analysis, gen};

    #[test]
    fn empirical_matches_exact_distribution() {
        let g = gen::hypercube(3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let t = 6;
        let exact = endpoint_distribution(&g, NodeId::new(0), t);
        let emp = empirical_endpoints(&g, NodeId::new(0), t, 40_000, &mut rng);
        assert!(
            total_variation(&exact, &emp) < 0.02,
            "tv = {}",
            total_variation(&exact, &emp)
        );
    }

    #[test]
    fn long_walks_sample_near_stationary() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::random_regular(64, 4, &mut rng).unwrap();
        let tmix = mixing_time_from(&g, NodeId::new(0), 10_000).unwrap();
        let pi = analysis::stationary_distribution(&g).unwrap();
        let emp = empirical_endpoints(&g, NodeId::new(0), 2 * tmix, 30_000, &mut rng);
        assert!(
            total_variation(&pi, &emp) < 0.05,
            "walks of length 2·t_mix are near-stationary"
        );
    }

    #[test]
    fn zero_step_walk_stays_home() {
        let g = gen::ring(5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(walk_endpoint(&g, NodeId::new(3), 0, &mut rng), NodeId::new(3));
    }

    #[test]
    fn total_variation_bounds() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
        assert!(total_variation(&a, &a) < 1e-12);
    }
}
