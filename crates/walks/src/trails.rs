//! Breadcrumb trails for routing along completed random-walk paths.
//!
//! Algorithm 2 requires three kinds of traffic to follow the walks after
//! they complete: proxy replies travel *backwards* to the contender
//! (rounds 1 and 3), contender broadcasts travel *forwards* to the proxies
//! (round 2, winner messages, stop commitments). Nodes therefore remember,
//! per `(origin, epoch, step)`, through which ports walk tokens arrived and
//! left. Since the origin is the unique source of its walks, following
//! *any* recorded in-port backwards reaches the origin; following all
//! recorded out-ports forwards (with per-wave dedup — the paper's
//! "filtering and forwarding") reaches every proxy.
//!
//! Trails store sparse `(step, hop)` pairs: memory is proportional to the
//! number of distinct passages, not to the walk length.

use std::collections::BTreeMap;

use welle_graph::Port;

/// One hop of a walk trail as seen from a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hop {
    /// The walk started here (only at step 0 on the origin itself).
    Origin,
    /// The walk stayed here for a lazy step.
    Stay,
    /// The walk crossed the edge behind this local port.
    Via(Port),
}

/// The recorded passage of one origin's walks through one node during one
/// epoch.
#[derive(Clone, Debug)]
pub struct Trail {
    epoch: u32,
    len: u32,
    finalized: bool,
    /// Deduplicated `(step, hop)` pairs: step-`s` tokens arrived via hop.
    ins: Vec<(u32, Hop)>,
    /// Deduplicated `(step, hop)` pairs: step-`s` tokens left via hop
    /// (arriving elsewhere as step `s + 1`).
    outs: Vec<(u32, Hop)>,
}

impl Trail {
    fn new(epoch: u32, len: u32) -> Self {
        Trail {
            epoch,
            len,
            finalized: false,
            ins: Vec::new(),
            outs: Vec::new(),
        }
    }

    /// Epoch this trail belongs to.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Walk length of that epoch.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the trail has no recorded hops at all.
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.outs.is_empty()
    }

    /// Whether the origin committed to this epoch as its final guess.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Records that step-`step` tokens arrived here via `hop`
    /// (deduplicated).
    pub fn record_in(&mut self, step: u32, hop: Hop) {
        if !self.ins.contains(&(step, hop)) {
            self.ins.push((step, hop));
        }
    }

    /// Records that step-`step` tokens left here via `hop` (deduplicated).
    pub fn record_out(&mut self, step: u32, hop: Hop) {
        if !self.outs.contains(&(step, hop)) {
            self.outs.push((step, hop));
        }
    }

    /// Hops through which step-`step` tokens arrived.
    pub fn ins(&self, step: u32) -> impl Iterator<Item = Hop> + '_ {
        self.ins
            .iter()
            .filter(move |&&(s, _)| s == step)
            .map(|&(_, h)| h)
    }

    /// Hops through which step-`step` tokens departed.
    pub fn outs(&self, step: u32) -> impl Iterator<Item = Hop> + '_ {
        self.outs
            .iter()
            .filter(move |&&(s, _)| s == step)
            .map(|&(_, h)| h)
    }

    /// The reverse-routing decision at `step`: follow the first recorded
    /// in-hop (any recorded hop leads to the origin). Skips over lazy
    /// stays by descending steps.
    pub fn reverse_route(&self, step: u32) -> ReverseRoute {
        let mut s = step;
        loop {
            let Some(hop) = self.ins(s).next() else {
                return ReverseRoute::Broken;
            };
            match hop {
                Hop::Origin => return ReverseRoute::AtOrigin,
                Hop::Stay => {
                    debug_assert!(s > 0, "stay recorded at step 0");
                    s -= 1;
                }
                Hop::Via(p) => {
                    debug_assert!(s > 0, "in-edge recorded at step 0");
                    return ReverseRoute::Forward(p, s - 1);
                }
            }
        }
    }

    /// Number of recorded (in, out) entries — memory diagnostics.
    pub fn footprint(&self) -> (usize, usize) {
        (self.ins.len(), self.outs.len())
    }

    /// Distinct ports over which tokens ever left this node, across all
    /// steps. Forward waves (round 2, stop marks, winner messages) are
    /// relayed over exactly these ports once per item — the paper's
    /// "filtering and forwarding": every path segment of the walk DAG is
    /// covered, and per-node dedup keeps one copy per edge.
    pub fn distinct_out_ports(&self) -> Vec<Port> {
        let mut ports: Vec<Port> = self
            .outs
            .iter()
            .filter_map(|&(_, h)| match h {
                Hop::Via(p) => Some(p),
                _ => None,
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    }
}

/// Outcome of a reverse-routing lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReverseRoute {
    /// This node *is* the origin: deliver locally.
    AtOrigin,
    /// Send over the port; the receiver continues at the given step.
    Forward(Port, u32),
    /// No trail information (protocol bug or stale GC) — callers treat
    /// this as a dropped reply.
    Broken,
}

/// Per-node store of trails, keyed by origin id.
///
/// Epoch discipline (Fidelity note 5 of DESIGN.md): non-finalized trails
/// of an older epoch are replaced when the origin starts a new epoch;
/// finalized trails persist for the rest of the execution (their origin
/// stopped and keeps its proxies).
///
/// Ordered map: [`TrailStore::iter`] walks the store, and seeded-path
/// iteration order must be deterministic (`welle-lint: no-hash-iter`).
#[derive(Clone, Debug, Default)]
pub struct TrailStore {
    trails: BTreeMap<u64, Trail>,
}

impl TrailStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TrailStore::default()
    }

    /// Number of tracked origins.
    pub fn len(&self) -> usize {
        self.trails.len()
    }

    /// Whether the store tracks no origin.
    pub fn is_empty(&self) -> bool {
        self.trails.is_empty()
    }

    /// The trail for `origin` usable at `epoch`: creates or resets it if
    /// the stored one is older and not finalized. Returns `None` if the
    /// stored trail is finalized with a different epoch (walks of a
    /// stopped contender cannot restart) or newer than `epoch` (stale
    /// token arriving late — dropped).
    pub fn enter_epoch(&mut self, origin: u64, epoch: u32, len: u32) -> Option<&mut Trail> {
        match self.trails.get(&origin) {
            Some(t) if t.finalized => {
                if t.epoch == epoch {
                    return self.trails.get_mut(&origin);
                }
                return None;
            }
            Some(t) if t.epoch > epoch => return None,
            Some(t) if t.epoch == epoch => return self.trails.get_mut(&origin),
            _ => {}
        }
        self.trails.insert(origin, Trail::new(epoch, len));
        self.trails.get_mut(&origin)
    }

    /// The trail for `origin` at exactly `epoch`, if present.
    pub fn at_epoch(&self, origin: u64, epoch: u32) -> Option<&Trail> {
        self.trails.get(&origin).filter(|t| t.epoch == epoch)
    }

    /// The current trail of `origin`, whatever its epoch.
    pub fn current(&self, origin: u64) -> Option<&Trail> {
        self.trails.get(&origin)
    }

    /// Marks `origin`'s trail at `epoch` as final (the contender stopped
    /// with this guess); ignored if the stored epoch differs.
    pub fn finalize(&mut self, origin: u64, epoch: u32) {
        if let Some(t) = self.trails.get_mut(&origin) {
            if t.epoch == epoch {
                t.finalized = true;
            }
        }
    }

    /// Drops non-finalized trails older than `current_epoch` (their
    /// origins moved on; the records can never be used again).
    pub fn gc(&mut self, current_epoch: u32) {
        self.trails
            .retain(|_, t| t.finalized || t.epoch >= current_epoch);
    }

    /// Iterates over `(origin, trail)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Trail)> {
        self.trails.iter().map(|(&o, t)| (o, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_dedup() {
        let mut t = Trail::new(2, 4);
        t.record_in(1, Hop::Via(Port::new(0)));
        t.record_in(1, Hop::Via(Port::new(0)));
        t.record_in(1, Hop::Via(Port::new(2)));
        assert_eq!(t.ins(1).count(), 2);
        assert_eq!(t.ins(0).count(), 0);
        t.record_out(1, Hop::Stay);
        t.record_out(1, Hop::Stay);
        assert_eq!(t.outs(1).collect::<Vec<_>>(), vec![Hop::Stay]);
        assert_eq!(t.footprint(), (2, 1));
    }

    #[test]
    fn no_preallocation_for_long_walks() {
        let mut store = TrailStore::new();
        let t = store.enter_epoch(1, 20, 1 << 20).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.footprint(), (0, 0));
        assert_eq!(t.len(), 1 << 20);
    }

    #[test]
    fn reverse_route_skips_stays() {
        let mut t = Trail::new(0, 5);
        // Token arrived at step 1 via port 3, stayed for steps 2 and 3.
        t.record_in(1, Hop::Via(Port::new(3)));
        t.record_in(2, Hop::Stay);
        t.record_in(3, Hop::Stay);
        assert_eq!(t.reverse_route(3), ReverseRoute::Forward(Port::new(3), 0));
    }

    #[test]
    fn reverse_route_at_origin() {
        let mut t = Trail::new(0, 2);
        t.record_in(0, Hop::Origin);
        t.record_in(1, Hop::Stay);
        assert_eq!(t.reverse_route(1), ReverseRoute::AtOrigin);
        assert_eq!(t.reverse_route(0), ReverseRoute::AtOrigin);
    }

    #[test]
    fn reverse_route_broken_without_records() {
        let t = Trail::new(0, 3);
        assert_eq!(t.reverse_route(2), ReverseRoute::Broken);
    }

    #[test]
    fn epoch_replacement_rules() {
        let mut store = TrailStore::new();
        store.enter_epoch(7, 0, 1).unwrap().record_in(0, Hop::Origin);
        // Same epoch: same trail.
        assert_eq!(
            store.enter_epoch(7, 0, 1).unwrap().ins(0).collect::<Vec<_>>(),
            vec![Hop::Origin]
        );
        // Newer epoch replaces a non-finalized trail.
        let t = store.enter_epoch(7, 1, 2).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.epoch(), 1);
        // Stale (older-epoch) token is rejected.
        assert!(store.enter_epoch(7, 0, 1).is_none());
    }

    #[test]
    fn finalized_trails_are_immutable_across_epochs() {
        let mut store = TrailStore::new();
        store.enter_epoch(9, 2, 4).unwrap();
        store.finalize(9, 2);
        assert!(store.current(9).unwrap().is_finalized());
        // A finalized trail refuses other epochs but accepts its own.
        assert!(store.enter_epoch(9, 3, 8).is_none());
        assert!(store.enter_epoch(9, 2, 4).is_some());
        // GC keeps finalized trails forever.
        store.gc(10);
        assert!(store.current(9).is_some());
    }

    #[test]
    fn gc_drops_stale_unfinalized() {
        let mut store = TrailStore::new();
        store.enter_epoch(1, 0, 1);
        store.enter_epoch(2, 5, 32);
        store.gc(3);
        assert!(store.current(1).is_none());
        assert!(store.current(2).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn finalize_wrong_epoch_is_ignored() {
        let mut store = TrailStore::new();
        store.enter_epoch(4, 1, 2);
        store.finalize(4, 0);
        assert!(!store.current(4).unwrap().is_finalized());
    }
}
