//! Aggregated random-walk tokens (the CONGEST trick of Lemma 12).
//!
//! Instead of sending `count` separate `⟨u, t_u⟩` tokens along the same
//! edge, a node sends one [`TokenBatch`] carrying the count — "we send
//! only one token and the count of tokens that need to be sent", as the
//! paper puts it. At each step a batch is split *lazily* (each walk stays
//! with probability ½) and the movers are assigned to ports uniformly.

use rand::{Rng, RngExt};
use welle_congest::{bits_for, id_bits};
use welle_graph::Port;

/// A bundle of `count` parallel random walks of the same origin and epoch
/// crossing an edge together.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TokenBatch {
    /// The originating contender's id (the paper's random id in `[1, n⁴]`).
    pub origin: u64,
    /// Guess-and-double epoch this walk belongs to (walk length `2^epoch`).
    pub epoch: u32,
    /// Remaining steps before the holder becomes a proxy.
    pub remaining: u32,
    /// Number of walks in this bundle.
    pub count: u32,
}

impl TokenBatch {
    /// Wire size: an id (`4⌈log₂n⌉` bits), an epoch (`⌈log₂ horizon⌉`),
    /// a step counter, and the multiplicity.
    pub fn bit_size(&self, n: usize) -> usize {
        id_bits(n) + bits_for(64) + bits_for(self.remaining.max(1) as u64)
            + bits_for(self.count as u64)
    }
}

/// Result of one lazy splitting step of a [`TokenBatch`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LazySplit {
    /// Walks that stay at the current node this step.
    pub stay: u32,
    /// Walks leaving through each port, as sparse `(port, count)` pairs
    /// sorted by port.
    pub moves: Vec<(Port, u32)>,
}

/// Splits `count` walks one lazy step: each stays with probability ½,
/// otherwise picks one of `degree` ports uniformly.
///
/// # Panics
///
/// Panics if `degree == 0` (an isolated node cannot host walks).
pub fn split_lazy<R: Rng + ?Sized>(count: u32, degree: usize, rng: &mut R) -> LazySplit {
    assert!(degree > 0, "cannot forward walks from an isolated node");
    let mut stay = 0u32;
    let mut port_counts: Vec<u32> = vec![0; degree];
    for _ in 0..count {
        if rng.random_bool(0.5) {
            stay += 1;
        } else {
            let p = rng.random_range(0..degree);
            port_counts[p] += 1;
        }
    }
    let moves = port_counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(p, c)| (Port::new(p), c))
        .collect();
    LazySplit { stay, moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_conserves_count() {
        let mut rng = StdRng::seed_from_u64(3);
        for count in [0u32, 1, 7, 100, 2_000] {
            for degree in [1usize, 2, 5, 32] {
                let s = split_lazy(count, degree, &mut rng);
                let moved: u32 = s.moves.iter().map(|&(_, c)| c).sum();
                assert_eq!(s.stay + moved, count);
                for &(p, c) in &s.moves {
                    assert!(p.index() < degree);
                    assert!(c > 0);
                }
            }
        }
    }

    #[test]
    fn split_is_roughly_half_lazy() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut stayed = 0u64;
        let total = 200_000u32;
        let s = split_lazy(total, 4, &mut rng);
        stayed += s.stay as u64;
        let frac = stayed as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "lazy fraction {frac}");
    }

    #[test]
    fn split_moves_are_uniform_over_ports() {
        let mut rng = StdRng::seed_from_u64(6);
        let degree = 8;
        let s = split_lazy(400_000, degree, &mut rng);
        let moved: u32 = s.moves.iter().map(|&(_, c)| c).sum();
        let expect = moved as f64 / degree as f64;
        for &(_, c) in &s.moves {
            assert!(
                (c as f64 - expect).abs() < 0.05 * expect,
                "port got {c}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn token_bit_size_is_logarithmic() {
        let t = TokenBatch {
            origin: 12345,
            epoch: 3,
            remaining: 16,
            count: 500,
        };
        let bits = t.bit_size(1024);
        // 44 (id) + 7 (epoch) + 5 (remaining) + 9 (count)
        assert_eq!(bits, 44 + 7 + 5 + 9);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn split_on_isolated_node_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = split_lazy(1, 0, &mut rng);
    }
}
