//! Engine termination edge cases: `Done` vs `Quiescent` vs `RoundLimit`,
//! asserted on a 2-node path and on a graph with an isolated node, for
//! both executors.

use std::sync::Arc;

use welle_congest::testing::{Echo, FloodMax};
use welle_congest::{
    Context, Engine, EngineConfig, Protocol, RunOutcome, ThreadedEngine,
};
use welle_graph::{from_edges, gen, Graph, Port};

/// Sends one message per round through port 0, forever; never done.
struct Chatter;

impl Protocol for Chatter {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if ctx.degree() > 0 {
            ctx.send(Port::new(0), 0);
        }
    }
    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        inbox.clear();
        if ctx.degree() > 0 {
            ctx.send(Port::new(0), ctx.round());
        }
    }
}

fn path2() -> Arc<Graph> {
    Arc::new(gen::path(2).unwrap())
}

/// Node 2 is isolated: degree 0, no way to ever receive anything.
fn with_isolated_node() -> Arc<Graph> {
    Arc::new(from_edges(3, &[(0, 1)]).unwrap())
}

#[test]
fn done_on_path_when_all_report_done() {
    // FloodMax reports done right after its initial flood.
    let mut e = Engine::new(
        path2(),
        vec![FloodMax::new(3), FloodMax::new(9)],
        EngineConfig::default(),
    );
    let out = e.run(1_000);
    assert!(matches!(out, RunOutcome::Done { .. }), "got {out:?}");
    assert_eq!(e.in_flight(), 0);
    assert!(e.nodes().iter().all(|n| n.best() == 9));
}

#[test]
fn quiescent_on_path_when_nodes_never_finish() {
    // Echo never reports done; once the ping/pong drains, no message is
    // in flight and no wake-up is pending: the run can never progress.
    let mut e = Engine::new(
        path2(),
        vec![Echo::new(true), Echo::new(false)],
        EngineConfig::default(),
    );
    let out = e.run(1_000);
    assert!(matches!(out, RunOutcome::Quiescent { .. }), "got {out:?}");
    assert!(out.round() < 1_000, "quiescence must beat the limit");
    assert_eq!(e.node(0).replies_received(), 1);
}

#[test]
fn round_limit_on_path_with_endless_traffic() {
    let mut e = Engine::new(path2(), vec![Chatter, Chatter], EngineConfig::default());
    let out = e.run(50);
    assert!(matches!(out, RunOutcome::RoundLimit { round: 50 }), "got {out:?}");
    assert_eq!(e.round(), 50);
}

#[test]
fn done_with_isolated_node() {
    // FloodMax is done immediately after flooding — the isolated node
    // floods through zero ports and is done too, so the run ends `Done`
    // even though node 2 never heard the maximum.
    let g = with_isolated_node();
    let nodes = (0..3).map(|i| FloodMax::new(i as u64)).collect();
    let mut e = Engine::new(g, nodes, EngineConfig::default());
    let out = e.run(1_000);
    assert!(matches!(out, RunOutcome::Done { .. }), "got {out:?}");
    assert_eq!(e.node(1).best(), 1);
    assert_eq!(e.node(2).best(), 2, "isolated node only knows itself");
}

#[test]
fn quiescent_with_isolated_node_that_waits_forever() {
    // BfsWave roots at node 0; the wave covers {0, 1} but can never
    // reach the isolated node 2, which never reports done → Quiescent.
    let g = with_isolated_node();
    let nodes = (0..3)
        .map(|i| welle_congest::testing::BfsWave::new(i == 0))
        .collect();
    let mut e = Engine::new(g, nodes, EngineConfig::default());
    let out = e.run(1_000);
    assert!(matches!(out, RunOutcome::Quiescent { .. }), "got {out:?}");
    assert_eq!(e.node(1).level(), Some(1));
    assert_eq!(e.node(2).level(), None);
}

/// Wakes far in the future and records whether `on_round` ever fired.
struct LateSleeper {
    fired: bool,
}

impl Protocol for LateSleeper {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        ctx.wake_at(100);
    }
    fn on_round(&mut self, _ctx: &mut Context<'_, ()>, inbox: &mut Vec<(Port, ())>) {
        inbox.clear();
        self.fired = true;
    }
}

#[test]
fn idle_skip_past_round_limit_stops_before_the_wake() {
    // The next wake (round 100) lies beyond the limit (50): both
    // executors must stop at the limit without running the wake round.
    let mut serial = Engine::new(
        path2(),
        vec![LateSleeper { fired: false }, LateSleeper { fired: false }],
        EngineConfig::default(),
    );
    let serial_out = serial.run(50);
    assert!(matches!(serial_out, RunOutcome::RoundLimit { .. }));
    assert!(serial.nodes().iter().all(|n| !n.fired));

    for threads in [1usize, 2] {
        let mut par = ThreadedEngine::new(
            path2(),
            vec![LateSleeper { fired: false }, LateSleeper { fired: false }],
            EngineConfig::default(),
            threads,
        );
        par.set_inline_cutoff(0); // force the sharded loop's bookkeeping
        let out = par.run(50);
        assert_eq!(serial_out.round(), out.round(), "threads={threads}");
        assert!(matches!(out, RunOutcome::RoundLimit { .. }));
        assert!(par.nodes().iter().all(|n| !n.fired), "threads={threads}");
    }
}

#[test]
fn threaded_engine_agrees_on_all_three_outcomes() {
    for threads in [1usize, 2] {
        let mut done = ThreadedEngine::new(
            path2(),
            vec![FloodMax::new(3), FloodMax::new(9)],
            EngineConfig::default(),
            threads,
        );
        assert!(matches!(done.run(1_000), RunOutcome::Done { .. }));

        let mut quiescent = ThreadedEngine::new(
            with_isolated_node(),
            (0..3).map(|i| welle_congest::testing::BfsWave::new(i == 0)).collect(),
            EngineConfig::default(),
            threads,
        );
        assert!(matches!(quiescent.run(1_000), RunOutcome::Quiescent { .. }));

        let mut limited = ThreadedEngine::new(
            path2(),
            vec![Chatter, Chatter],
            EngineConfig::default(),
            threads,
        );
        assert!(matches!(limited.run(50), RunOutcome::RoundLimit { round: 50 }));
    }
}
