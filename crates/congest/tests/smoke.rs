//! Engine hot-path smoke test: a tiny, fully deterministic max-id
//! election on an expander, end to end through the event-driven engine.
//!
//! This is deliberately small (n = 64, < 1 s) so that any regression in
//! the simulator hot path — message delivery, congestion queues, idle
//! round skipping, metrics — is caught by a test that runs on every
//! `cargo test`, not only by the heavyweight integration suites.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use welle_congest::testing::FloodMax;
use welle_congest::{Engine, EngineConfig};
use welle_graph::gen;

/// Runs one seeded election and returns `(leader_indices, messages)`.
fn run_once(seed: u64) -> (Vec<usize>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Arc::new(gen::random_regular(64, 4, &mut rng).unwrap());
    // Random distinct ids drawn from the same seeded stream.
    let ids: Vec<u64> = (0..g.n() as u64)
        .map(|i| (rng.random_range(0..u64::MAX / 2) << 6) | i)
        .collect();
    let nodes: Vec<FloodMax> = ids.iter().map(|&id| FloodMax::new(id)).collect();
    let mut engine = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
    let outcome = engine.run(10_000);
    assert!(outcome.is_done(), "flood must stabilize well within bound");

    let max = *ids.iter().max().unwrap();
    let leaders: Vec<usize> = engine
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, node)| node.is_leader())
        .map(|(i, _)| i)
        .collect();
    for (i, node) in engine.nodes().iter().enumerate() {
        assert_eq!(node.best(), max, "node {i} must learn the global max");
    }
    (leaders, engine.metrics().messages)
}

#[test]
fn deterministic_expander_election_elects_unique_leader() {
    let (leaders, messages) = run_once(0xC0FFEE);
    assert_eq!(leaders.len(), 1, "exactly one leader, got {leaders:?}");
    assert!(messages > 0);

    // The run is a pure function of the seed: identical leader set and
    // message count on a re-run.
    let (leaders2, messages2) = run_once(0xC0FFEE);
    assert_eq!(leaders, leaders2);
    assert_eq!(messages, messages2);

    // And a different seed still elects exactly one leader.
    let (leaders3, _) = run_once(7);
    assert_eq!(leaders3.len(), 1);
}
