//! Property-based tests of engine semantics.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle_congest::testing::FloodMax;
use welle_congest::{
    Context, Engine, EngineConfig, Protocol, RecordingObserver, ThreadedEngine,
};
use welle_graph::{gen, Graph, Port};

fn random_connected_graph(n: usize, extra: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = welle_graph::GraphBuilder::new(n);
    for child in 1..n {
        let parent = rand::RngExt::random_range(&mut rng, 0..child);
        b.add_edge(parent, child).unwrap();
    }
    for _ in 0..extra {
        let u = rand::RngExt::random_range(&mut rng, 0..n);
        let v = rand::RngExt::random_range(&mut rng, 0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
        }
    }
    Arc::new(b.build().unwrap())
}

/// Sends `k` sequence-numbered messages through port 0 at start.
struct Sequencer {
    k: u32,
    received: Vec<u64>,
}

impl Protocol for Sequencer {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if ctx.degree() > 0 {
            for i in 0..self.k {
                ctx.send(Port::new(0), i as u64);
            }
        }
    }
    fn on_round(&mut self, _ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        for (_, v) in inbox.drain(..) {
            self.received.push(v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_sent_message_is_delivered(n in 4usize..24, extra in 0usize..20, seed in any::<u64>()) {
        let g = random_connected_graph(n, extra, seed);
        let nodes = (0..n).map(|i| FloodMax::new((i as u64 * 31) % 17)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig { seed, bandwidth_bits: None });
        let mut rec = RecordingObserver::default();
        e.run_observed(100_000, &mut rec);
        prop_assert_eq!(rec.events.len() as u64, e.metrics().messages);
        prop_assert_eq!(e.in_flight(), 0, "no message left behind");
        let per_node_total: u64 = e.metrics().sent_by_node.iter().sum();
        prop_assert_eq!(per_node_total, e.metrics().messages);
    }

    #[test]
    fn fifo_per_directed_edge(k in 1u32..12) {
        let g = Arc::new(gen::path(2).unwrap());
        let nodes = vec![
            Sequencer { k, received: Vec::new() },
            Sequencer { k: 0, received: Vec::new() },
        ];
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.run(10_000);
        let received = &e.node(1).received;
        prop_assert_eq!(received.len(), k as usize);
        for (i, &v) in received.iter().enumerate() {
            prop_assert_eq!(v, i as u64, "FIFO order preserved");
        }
    }

    #[test]
    fn serial_and_threaded_agree(n in 4usize..20, extra in 0usize..16, seed in any::<u64>(), threads in 1usize..5) {
        let g = random_connected_graph(n, extra, seed);
        let cfg = EngineConfig { seed: seed ^ 1, bandwidth_bits: None };
        let mk = || (0..n).map(|i| FloodMax::new((i as u64 * 7) % 13)).collect::<Vec<_>>();
        let mut serial = Engine::new(Arc::clone(&g), mk(), cfg);
        let mut par = ThreadedEngine::new(Arc::clone(&g), mk(), cfg, threads);
        serial.run(100_000);
        par.run(100_000);
        prop_assert_eq!(serial.metrics().messages, par.metrics().messages);
        prop_assert_eq!(serial.metrics().bits, par.metrics().bits);
        for (a, b) in serial.nodes().iter().zip(par.nodes()) {
            prop_assert_eq!(a.best(), b.best());
        }
    }

    #[test]
    fn determinism_across_runs(n in 4usize..16, seed in any::<u64>()) {
        let g = random_connected_graph(n, 6, seed);
        let run = |s| {
            let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
            let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig { seed: s, bandwidth_bits: None });
            e.run(100_000);
            (e.metrics().messages, e.metrics().bits, e.round())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn flood_converges_to_global_max(n in 3usize..24, extra in 0usize..20, seed in any::<u64>()) {
        let g = random_connected_graph(n, extra, seed);
        let ids: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E3779B9) % 1000).collect();
        let max = *ids.iter().max().unwrap();
        let nodes = ids.iter().map(|&i| FloodMax::new(i)).collect();
        let mut e = Engine::new(g, nodes, EngineConfig { seed, bandwidth_bits: None });
        let out = e.run(100_000);
        prop_assert!(out.is_done());
        for node in e.nodes() {
            prop_assert_eq!(node.best(), max);
        }
    }
}
