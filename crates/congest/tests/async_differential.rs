//! Differential suite locking [`AsyncEngine`] to the round engine.
//!
//! The async executor's contract has two halves:
//!
//! * under [`LatencyModel::zero`] it is **event-for-event identical** to
//!   the serial [`Engine`] — same transmission stream, same metrics,
//!   same round count — on any graph, seed, and fault plan;
//! * under any nonzero model it is a pure function of
//!   `(graph, protocols, seed, model)`: repeats replay byte-identically.
//!
//! This file is the CI fence for the async executor (see
//! `.github/workflows/ci.yml`).

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle_congest::testing::FloodMax;
use welle_congest::{
    AsyncEngine, Engine, EngineConfig, FaultPlan, LatencyModel, Metrics, RecordingObserver,
    TransmitEvent,
};
use welle_graph::Graph;

fn random_connected_graph(n: usize, extra: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = welle_graph::GraphBuilder::new(n);
    for child in 1..n {
        let parent = rand::RngExt::random_range(&mut rng, 0..child);
        b.add_edge(parent, child).unwrap();
    }
    for _ in 0..extra {
        let u = rand::RngExt::random_range(&mut rng, 0..n);
        let v = rand::RngExt::random_range(&mut rng, 0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
        }
    }
    Arc::new(b.build().unwrap())
}

/// The adversarial conditions the differential check sweeps: clean,
/// drops, uniform delivery delay, and drops + crashes combined.
fn fault_plan(kind: u8, seed: u64) -> Option<FaultPlan> {
    match kind % 4 {
        0 => None,
        1 => Some(FaultPlan::new(seed).drop_rate(0.15)),
        2 => Some(FaultPlan::new(seed).delay_all(2)),
        _ => Some(FaultPlan::new(seed).drop_rate(0.1).crash_fraction(0.1, 3)),
    }
}

fn mk_node(i: usize) -> FloodMax {
    FloodMax::new((i as u64).wrapping_mul(131) % 97)
}

/// One observed run: the full transmission stream plus the summary
/// numbers a driver would read off the engine afterwards.
struct Run {
    events: Vec<TransmitEvent>,
    metrics: Metrics,
    round: u64,
    done: bool,
    virtual_time: f64,
}

fn run_sync(g: &Arc<Graph>, seed: u64, plan: Option<&FaultPlan>) -> Run {
    let nodes = (0..g.n()).map(mk_node).collect();
    let cfg = EngineConfig {
        seed,
        bandwidth_bits: None,
    };
    let mut e = Engine::new(Arc::clone(g), nodes, cfg);
    if let Some(p) = plan {
        e.set_fault_plan(p).unwrap();
    }
    let mut rec = RecordingObserver::default();
    let out = e.run_observed(10_000, &mut rec);
    Run {
        events: rec.events,
        metrics: e.metrics().clone(),
        round: e.round(),
        done: out.is_done(),
        virtual_time: e.round() as f64,
    }
}

fn run_async(g: &Arc<Graph>, seed: u64, model: LatencyModel, plan: Option<&FaultPlan>) -> Run {
    let cfg = EngineConfig {
        seed,
        bandwidth_bits: None,
    };
    let mut e = AsyncEngine::from_fn(Arc::clone(g), cfg, model, mk_node);
    if let Some(p) = plan {
        e.set_fault_plan(p).unwrap();
    }
    let mut rec = RecordingObserver::default();
    let out = e.run_observed(10_000, &mut rec);
    Run {
        events: rec.events,
        metrics: e.metrics().clone(),
        round: e.round(),
        done: out.is_done(),
        virtual_time: e.virtual_time(),
    }
}

/// The nonzero models the determinism check sweeps, including a
/// sub-unit service rate (hub congestion) composed with sampling.
fn nonzero_model(kind: u8, seed: u64) -> LatencyModel {
    match kind % 4 {
        0 => LatencyModel::fixed(1.5).seed(seed),
        1 => LatencyModel::uniform(0.0, 3.0).seed(seed),
        2 => LatencyModel::log_normal(0.3, 0.6).seed(seed),
        _ => LatencyModel::uniform(0.5, 2.0).seed(seed).service_rate(0.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract: at zero latency the async engine replays
    /// the round engine's exact transmission stream — across random
    /// graphs, seeds, and every fault-plan shape.
    #[test]
    fn zero_latency_matches_the_round_engine_event_for_event(
        n in 4usize..20,
        extra in 0usize..16,
        seed in any::<u64>(),
        fault_kind in 0u8..4,
    ) {
        let g = random_connected_graph(n, extra, seed);
        let plan = fault_plan(fault_kind, seed ^ 0xBEEF);
        let sync = run_sync(&g, seed, plan.as_ref());
        let async_ = run_async(&g, seed, LatencyModel::zero(), plan.as_ref());
        prop_assert_eq!(sync.events, async_.events, "transmission streams diverge");
        prop_assert_eq!(sync.metrics, async_.metrics);
        prop_assert_eq!(sync.round, async_.round);
        prop_assert_eq!(sync.done, async_.done);
        prop_assert_eq!(sync.virtual_time, async_.virtual_time,
            "zero latency must not stretch virtual time");
    }

    /// Nonzero models: the run is a pure function of the inputs — two
    /// fresh engines replay the same event stream byte for byte.
    #[test]
    fn nonzero_latency_replays_identically(
        n in 4usize..16,
        extra in 0usize..12,
        seed in any::<u64>(),
        model_kind in 0u8..4,
        fault_kind in 0u8..4,
    ) {
        let g = random_connected_graph(n, extra, seed);
        let model = nonzero_model(model_kind, seed ^ 0xCAFE);
        let plan = fault_plan(fault_kind, seed ^ 0xBEEF);
        let a = run_async(&g, seed, model, plan.as_ref());
        let b = run_async(&g, seed, model, plan.as_ref());
        prop_assert_eq!(a.events, b.events, "replay diverged");
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.round, b.round);
        prop_assert_eq!(a.virtual_time, b.virtual_time);
    }

    /// Latency reorders deliveries in time but loses nothing: whatever
    /// the model, every message that is not dropped by a fault arrives
    /// (quiescence implies an empty heap), and sampled-latency runs
    /// deliver exactly as many messages as the seed dictates.
    #[test]
    fn latency_never_loses_messages(
        n in 4usize..16,
        extra in 0usize..12,
        seed in any::<u64>(),
        model_kind in 0u8..4,
    ) {
        let g = random_connected_graph(n, extra, seed);
        let model = nonzero_model(model_kind, seed ^ 0xCAFE);
        let run = run_async(&g, seed, model, None);
        prop_assert_eq!(run.events.len() as u64, run.metrics.messages);
        prop_assert_eq!(run.metrics.dropped_messages, 0);
        prop_assert!(run.virtual_time >= 0.0);
    }
}
