//! Telemetry-layer fences: the per-round sample stream, phase tables,
//! and the final `Metrics` must be bit-identical across every executor
//! (`testing::all_execs`), with and without faults; samples must
//! reconcile exactly against the aggregate counters; and installing
//! telemetry must not change the execution itself.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle_congest::testing::{assert_all_execs_agree, run_everywhere, BfsWave, Echo, FloodMax};
use welle_congest::{
    Context, Engine, EngineConfig, FaultPlan, Protocol, Retention, SpanStage, TelemetryConfig,
};
use welle_graph::{gen, Graph, Port};

fn expander(n: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(gen::random_regular(n, 4, &mut rng).unwrap())
}

/// FloodMax with a phase tag derived from protocol state: phase
/// advances every 4 callbacks, cycling over 5 phases — a deterministic
/// stand-in for the election's segment schedule.
#[derive(Clone, Debug)]
struct PhasedFlood {
    inner: FloodMax,
    callbacks: u64,
}

impl PhasedFlood {
    fn new(id: u64) -> Self {
        PhasedFlood {
            inner: FloodMax::new(id),
            callbacks: 0,
        }
    }
}

impl Protocol for PhasedFlood {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.inner.on_start(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        self.callbacks += 1;
        self.inner.on_round(ctx, inbox);
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn phase_tag(&self) -> Option<u8> {
        Some(((self.callbacks / 4) % 5) as u8)
    }
}

#[test]
fn sample_streams_identical_across_executors() {
    let g = expander(64, 3);
    let oracle = assert_all_execs_agree(
        &g,
        EngineConfig::default(),
        None,
        Some(TelemetryConfig::full().with_profile()),
        10_000,
        |i| FloodMax::new((i as u64 * 31) % 47),
    );
    let report = oracle.telemetry.expect("telemetry was installed");
    assert!(report.total_samples > 0);
    assert_eq!(report.samples.len() as u64, report.total_samples);
}

#[test]
fn samples_reconcile_against_metrics() {
    let g = expander(64, 5);
    let oracle = assert_all_execs_agree(
        &g,
        EngineConfig::default(),
        None,
        Some(TelemetryConfig::full()),
        10_000,
        |i| FloodMax::new(i as u64),
    );
    let report = oracle.telemetry.expect("telemetry was installed");
    let m = &oracle.metrics;
    assert_eq!(report.total_samples, m.active_rounds, "one sample per active round");
    let msgs: u64 = report.samples.iter().map(|s| s.messages).sum();
    let bits: u64 = report.samples.iter().map(|s| s.bits).sum();
    let dropped: u64 = report.samples.iter().map(|s| s.dropped).sum();
    let backlog = report.samples.iter().map(|s| s.max_backlog).max().unwrap_or(0);
    assert_eq!(msgs, m.messages);
    assert_eq!(bits, m.bits);
    assert_eq!(dropped, m.dropped_messages);
    assert_eq!(backlog, m.max_edge_backlog);
    // Rounds are strictly increasing and ticks follow the round clock.
    for w in report.samples.windows(2) {
        assert!(w[0].round < w[1].round);
        assert!(w[0].tick < w[1].tick);
    }
}

#[test]
fn faulted_streams_identical_across_executors() {
    let g = expander(64, 7);
    let plan = FaultPlan::new(11)
        .drop_rate(0.1)
        .crash_fraction(0.1, 6)
        .delay_all(1);
    let oracle = assert_all_execs_agree(
        &g,
        EngineConfig::default(),
        Some(&plan),
        Some(TelemetryConfig::full().with_profile()),
        10_000,
        |i| FloodMax::new((i as u64 * 13) % 29),
    );
    let report = oracle.telemetry.expect("telemetry was installed");
    let dropped: u64 = report.samples.iter().map(|s| s.dropped).sum();
    assert!(dropped > 0, "the plan must actually bite");
    assert_eq!(dropped, oracle.metrics.dropped_messages);
}

#[test]
fn phase_tables_identical_across_executors() {
    let g = expander(48, 9);
    let oracle = assert_all_execs_agree(
        &g,
        EngineConfig::default(),
        None,
        Some(TelemetryConfig::full()),
        10_000,
        |i| PhasedFlood::new((i as u64 * 17) % 37),
    );
    let report = oracle.telemetry.expect("telemetry was installed");
    // Phase 0 is published from the first sampled round onwards, so no
    // sample can precede attribution.
    assert!(report.samples.iter().all(|s| s.phase.is_some()));
    let phase_rounds: u64 = report
        .phases
        .iter()
        .map(|(_, totals)| totals.rounds)
        .sum();
    assert_eq!(phase_rounds, report.total_samples);
    let phase_msgs: u64 = report
        .phases
        .iter()
        .map(|(_, totals)| totals.messages)
        .sum();
    assert_eq!(phase_msgs, oracle.metrics.messages);
}

#[test]
fn ring_retention_bounds_samples_but_keeps_totals() {
    let g = expander(48, 13);
    let full = assert_all_execs_agree(
        &g,
        EngineConfig::default(),
        None,
        Some(TelemetryConfig::full()),
        10_000,
        |i| PhasedFlood::new(i as u64),
    );
    let ring = assert_all_execs_agree(
        &g,
        EngineConfig::default(),
        None,
        Some(TelemetryConfig::ring(4)),
        10_000,
        |i| PhasedFlood::new(i as u64),
    );
    let full = full.telemetry.unwrap();
    let ring = ring.telemetry.unwrap();
    assert!(ring.samples.len() <= 4);
    assert_eq!(ring.total_samples, full.total_samples);
    assert_eq!(ring.phases, full.phases);
    assert_eq!(
        ring.samples.as_slice(),
        &full.samples[full.samples.len() - ring.samples.len()..],
        "the ring keeps the stream's tail"
    );
    // Ring(0) drops every sample but still aggregates.
    let none = assert_all_execs_agree(
        &g,
        EngineConfig::default(),
        None,
        Some(TelemetryConfig::ring(0)),
        10_000,
        |i| PhasedFlood::new(i as u64),
    )
    .telemetry
    .unwrap();
    assert!(none.samples.is_empty());
    assert_eq!(none.total_samples, full.total_samples);
    assert_eq!(none.phases, full.phases);
}

#[test]
fn profiler_counts_are_deterministic_and_wall_clock_is_separate() {
    let g = expander(48, 17);
    let run = |seed| {
        let nodes = (0..g.n()).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig { seed, ..EngineConfig::default() });
        e.set_telemetry(TelemetryConfig::full().with_profile());
        e.run(10_000);
        (e.metrics().active_rounds, e.take_telemetry().unwrap())
    };
    let (active, a) = run(1);
    let (_, b) = run(1);
    let pa = a.profile.expect("profiling was on");
    let pb = b.profile.expect("profiling was on");
    for (x, y) in pa.iter().zip(pb.iter()) {
        assert_eq!(x.stage, y.stage);
        assert_eq!(x.entries, y.entries, "{}: entries deterministic", x.stage.name());
        assert_eq!(x.events, y.events, "{}: events deterministic", x.stage.name());
        // wall_ns is intentionally NOT compared: it is the only
        // non-deterministic field and lives apart from the counts.
    }
    let round = pa.iter().find(|s| s.stage == SpanStage::Round).unwrap();
    assert_eq!(round.entries, active, "one Round span per active round");
    let heap = pa.iter().find(|s| s.stage == SpanStage::LatencyHeap).unwrap();
    assert_eq!(heap.entries, 0, "the serial engine has no latency heap");
}

#[test]
fn telemetry_is_inert_when_absent_and_when_installed() {
    let g = expander(48, 19);
    // No telemetry at all: take_telemetry is None.
    let plain = run_everywhere(
        &g,
        EngineConfig::default(),
        None,
        None,
        10_000,
        |i| Echo::new(i == 0),
    );
    assert!(plain.iter().all(|r| r.telemetry.is_none()));
    // Installing telemetry must not perturb the execution: identical
    // metrics with and without the layer.
    let observed = run_everywhere(
        &g,
        EngineConfig::default(),
        None,
        Some(TelemetryConfig::full().with_profile()),
        10_000,
        |i| Echo::new(i == 0),
    );
    for (p, o) in plain.iter().zip(observed.iter()) {
        assert_eq!(p.metrics, o.metrics, "{}: telemetry perturbed the run", p.name);
        assert_eq!(p.outcome, o.outcome, "{}: telemetry perturbed the outcome", p.name);
    }
}

#[test]
fn bfs_wave_streams_agree_on_structured_graphs() {
    for (gname, g) in [
        ("ring", Arc::new(gen::ring(40).unwrap())),
        ("torus", Arc::new(gen::torus2d(6, 7).unwrap())),
    ] {
        let oracle = assert_all_execs_agree(
            &g,
            EngineConfig::default(),
            None,
            Some(TelemetryConfig::full()),
            10_000,
            |i| BfsWave::new(i == 0),
        );
        let report = oracle.telemetry.unwrap();
        assert!(report.total_samples > 0, "{gname}: wave produced samples");
        // A BFS wave is always active once started: exactly one sample
        // per engine round until quiescence.
        assert!(
            report.samples.iter().all(|s| s.active_nodes > 0),
            "{gname}: sampled rounds ran callbacks"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn telemetry_streams_agree_for_random_inputs(
        n in 8usize..40,
        seed in any::<u64>(),
        drop_pct in 0u32..20,
        ring in 0usize..9,
    ) {
        let g = expander(n.max(8) / 2 * 2, seed ^ 0xA5A5);
        let plan = if drop_pct > 0 {
            Some(FaultPlan::new(seed).drop_rate(f64::from(drop_pct) / 100.0))
        } else {
            None
        };
        // ring == 8 doubles as "full retention".
        let retention = if ring < 8 {
            TelemetryConfig::ring(ring)
        } else {
            TelemetryConfig::full()
        };
        let cfg = EngineConfig { seed, ..EngineConfig::default() };
        let oracle = assert_all_execs_agree(
            &g,
            cfg,
            plan.as_ref(),
            Some(retention.with_profile()),
            50_000,
            |i| PhasedFlood::new((i as u64).wrapping_mul(0x9E37) % 101),
        );
        let report = oracle.telemetry.unwrap();
        prop_assert_eq!(report.total_samples, oracle.metrics.active_rounds);
        if let Retention::Ring(k) = retention.retention {
            prop_assert!(report.samples.len() <= k);
        }
    }
}
