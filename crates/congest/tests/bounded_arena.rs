//! Differential suite for the bounded-arena transmit pump.
//!
//! The engines drain each round's sends through a recycling slot arena
//! in fixed-size chunks ([`Engine::set_transmit_chunk`]). The contract:
//! the chunk limit bounds *memory*, never *behaviour* — at any setting,
//! on any graph, seed, and fault plan, every executor replays the exact
//! same transmission stream, metrics, and outcome as the unchunked run.
//!
//! This file is the CI fence for the bounded-arena engine rework (see
//! `.github/workflows/ci.yml`).

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle_congest::testing::FloodMax;
use welle_congest::{
    AsyncEngine, Engine, EngineConfig, FaultPlan, LatencyModel, Metrics, RecordingObserver,
    ThreadedEngine, TransmitEvent,
};
use welle_graph::Graph;

fn random_connected_graph(n: usize, extra: usize, seed: u64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = welle_graph::GraphBuilder::new(n);
    for child in 1..n {
        let parent = rand::RngExt::random_range(&mut rng, 0..child);
        b.add_edge(parent, child).unwrap();
    }
    for _ in 0..extra {
        let u = rand::RngExt::random_range(&mut rng, 0..n);
        let v = rand::RngExt::random_range(&mut rng, 0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
        }
    }
    Arc::new(b.build().unwrap())
}

/// Clean, drops, delays, and drops + crashes — the fault shapes the
/// chunked pump must stay transparent under.
fn fault_plan(kind: u8, seed: u64) -> Option<FaultPlan> {
    match kind % 4 {
        0 => None,
        1 => Some(FaultPlan::new(seed).drop_rate(0.15)),
        2 => Some(FaultPlan::new(seed).delay_all(2)),
        _ => Some(FaultPlan::new(seed).drop_rate(0.1).crash_fraction(0.1, 3)),
    }
}

fn mk_node(i: usize) -> FloodMax {
    FloodMax::new((i as u64).wrapping_mul(131) % 97)
}

struct Run {
    events: Vec<TransmitEvent>,
    metrics: Metrics,
    round: u64,
    done: bool,
    peak_arena_slots: u64,
}

/// `chunk = None` leaves the engine at its default transmit chunk.
fn run_serial(g: &Arc<Graph>, seed: u64, plan: Option<&FaultPlan>, chunk: Option<usize>) -> Run {
    let nodes = (0..g.n()).map(mk_node).collect();
    let cfg = EngineConfig {
        seed,
        bandwidth_bits: None,
    };
    let mut e = Engine::new(Arc::clone(g), nodes, cfg);
    if let Some(c) = chunk {
        e.set_transmit_chunk(c);
    }
    if let Some(p) = plan {
        e.set_fault_plan(p).unwrap();
    }
    let mut rec = RecordingObserver::default();
    let out = e.run_observed(10_000, &mut rec);
    Run {
        events: rec.events,
        metrics: e.metrics().clone(),
        round: e.round(),
        done: out.is_done(),
        peak_arena_slots: e.peak_arena_slots(),
    }
}

fn run_threaded(
    g: &Arc<Graph>,
    seed: u64,
    plan: Option<&FaultPlan>,
    chunk: Option<usize>,
    workers: usize,
) -> Run {
    let nodes = (0..g.n()).map(mk_node).collect();
    let cfg = EngineConfig {
        seed,
        bandwidth_bits: None,
    };
    let mut e = ThreadedEngine::new(Arc::clone(g), nodes, cfg, workers);
    if let Some(c) = chunk {
        e.set_transmit_chunk(c);
    }
    if let Some(p) = plan {
        e.set_fault_plan(p).unwrap();
    }
    let mut rec = RecordingObserver::default();
    let out = e.run_observed(10_000, &mut rec);
    Run {
        events: rec.events,
        metrics: e.metrics().clone(),
        round: e.round(),
        done: out.is_done(),
        peak_arena_slots: e.peak_arena_slots(),
    }
}

fn run_async_zero(
    g: &Arc<Graph>,
    seed: u64,
    plan: Option<&FaultPlan>,
    chunk: Option<usize>,
) -> Run {
    let cfg = EngineConfig {
        seed,
        bandwidth_bits: None,
    };
    let mut e = AsyncEngine::from_fn(Arc::clone(g), cfg, LatencyModel::zero(), mk_node);
    if let Some(c) = chunk {
        e.set_transmit_chunk(c);
    }
    if let Some(p) = plan {
        e.set_fault_plan(p).unwrap();
    }
    let mut rec = RecordingObserver::default();
    let out = e.run_observed(10_000, &mut rec);
    Run {
        events: rec.events,
        metrics: e.metrics().clone(),
        round: e.round(),
        done: out.is_done(),
        peak_arena_slots: e.peak_arena_slots(),
    }
}

fn assert_same(base: &Run, other: &Run, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&base.events, &other.events, "{}: transmission streams diverge", what);
    prop_assert_eq!(&base.metrics, &other.metrics, "{}: metrics diverge", what);
    prop_assert_eq!(base.round, other.round, "{}: round counts diverge", what);
    prop_assert_eq!(base.done, other.done, "{}: outcomes diverge", what);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole contract: the transmit-chunk limit — down to one
    /// slot at a time — is invisible to every observable, on every
    /// executor, under every fault shape.
    #[test]
    fn chunk_limit_is_unobservable_on_every_executor(
        n in 4usize..24,
        extra in 0usize..16,
        seed in any::<u64>(),
        fault_kind in 0u8..4,
        workers in 1usize..4,
    ) {
        let g = random_connected_graph(n, extra, seed);
        let plan = fault_plan(fault_kind, seed ^ 0xBEEF);
        let base = run_serial(&g, seed, plan.as_ref(), None);
        for chunk in [1usize, 2, 7] {
            let s = run_serial(&g, seed, plan.as_ref(), Some(chunk));
            assert_same(&base, &s, "serial/chunked")?;
            // The arena's high-water mark is a pure function of the
            // traffic, not of how finely the pump drains it.
            prop_assert_eq!(base.peak_arena_slots, s.peak_arena_slots,
                "chunk limit must not change the arena peak");
            let t = run_threaded(&g, seed, plan.as_ref(), Some(chunk), workers);
            assert_same(&base, &t, "threaded/chunked")?;
            let a = run_async_zero(&g, seed, plan.as_ref(), Some(chunk));
            assert_same(&base, &a, "async-zero/chunked")?;
        }
    }

    /// Arena recycling is airtight: after a run every slot is back on
    /// the free list (no leaks), and the peak never exceeds the total
    /// traffic that ever entered the queues.
    #[test]
    fn arena_slots_recycle_without_leaking(
        n in 4usize..24,
        extra in 0usize..16,
        seed in any::<u64>(),
        fault_kind in 0u8..4,
    ) {
        let g = random_connected_graph(n, extra, seed);
        let plan = fault_plan(fault_kind, seed ^ 0xBEEF);
        let run = run_serial(&g, seed, plan.as_ref(), Some(1));
        prop_assert!(run.peak_arena_slots <= run.metrics.messages + run.metrics.dropped_messages,
            "peak {} exceeds total traffic {}",
            run.peak_arena_slots, run.metrics.messages + run.metrics.dropped_messages);
    }
}
