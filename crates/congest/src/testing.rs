//! Reference protocols used to validate engine semantics (and as simple
//! examples of the [`crate::Protocol`] interface). They are `pub` because
//! downstream crates reuse them in integration tests and benchmarks.

use welle_graph::Port;

use crate::exec::Exec;
use crate::latency::LatencyModel;
use crate::protocol::{Context, Protocol};

/// Every concrete executor choice a cross-executor equivalence check
/// should cover, labelled for assertion messages: the serial engine
/// (the oracle), the sharded engine at one and several workers, and
/// the async engine under the zero-latency model (which contracts to
/// be bit-identical to serial). Suites that iterate this list pick up
/// new executors automatically instead of enumerating them by hand.
pub fn all_execs() -> [(&'static str, Exec); 4] {
    [
        ("serial", Exec::Serial),
        ("threaded1", Exec::Threaded(1)),
        ("threaded3", Exec::Threaded(3)),
        ("async0", Exec::Async(LatencyModel::zero())),
    ]
}

/// Classic flooding of the maximum id: on learning a larger id, forward it
/// through every port. Terminates when the true maximum has stabilized
/// (each node is done once it has flooded its current best and heard
/// nothing better).
///
/// This is the `O(m · D)`-message baseline the paper contrasts with
/// (see §1 Prior Works); `welle-core` wraps it as an election baseline.
#[derive(Clone, Debug)]
pub struct FloodMax {
    id: u64,
    best: u64,
    needs_flood: bool,
}

impl FloodMax {
    /// A node with identity `id`.
    pub fn new(id: u64) -> Self {
        FloodMax {
            id,
            best: id,
            needs_flood: true,
        }
    }

    /// This node's own id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Largest id seen so far.
    pub fn best(&self) -> u64 {
        self.best
    }

    /// Whether this node currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.best == self.id
    }
}

impl Protocol for FloodMax {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        for p in 0..ctx.degree() {
            ctx.send(Port::new(p), self.best);
        }
        self.needs_flood = false;
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        let mut improved = false;
        for (_, id) in inbox.drain(..) {
            if id > self.best {
                self.best = id;
                improved = true;
            }
        }
        if improved {
            for p in 0..ctx.degree() {
                ctx.send(Port::new(p), self.best);
            }
        }
    }

    fn is_done(&self) -> bool {
        !self.needs_flood
    }
}

/// Minimal request/response pair: designated initiators ping port 0 once;
/// any node answers pings on the arrival port.
#[derive(Clone, Debug)]
pub struct Echo {
    initiator: bool,
    replies: usize,
}

/// Message type for [`Echo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EchoMsg {
    /// Request.
    Ping,
    /// Response.
    Pong,
}

impl crate::message::Payload for EchoMsg {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Echo {
    /// Creates a node; `initiator` nodes ping through port 0 at start.
    pub fn new(initiator: bool) -> Self {
        Echo {
            initiator,
            replies: 0,
        }
    }

    /// Number of pongs received.
    pub fn replies_received(&self) -> usize {
        self.replies
    }
}

impl Protocol for Echo {
    type Msg = EchoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, EchoMsg>) {
        if self.initiator && ctx.degree() > 0 {
            ctx.send(Port::new(0), EchoMsg::Ping);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, EchoMsg>, inbox: &mut Vec<(Port, EchoMsg)>) {
        for (port, msg) in inbox.drain(..) {
            match msg {
                EchoMsg::Ping => ctx.send(port, EchoMsg::Pong),
                EchoMsg::Pong => self.replies += 1,
            }
        }
    }
}

/// Distributed BFS layering from designated roots: each node records the
/// round at which the wave first reached it. Used to cross-validate the
/// engine's timing against [`welle_graph::analysis::bfs`].
#[derive(Clone, Debug)]
pub struct BfsWave {
    root: bool,
    level: Option<u64>,
}

impl BfsWave {
    /// Creates a node; `root` nodes start the wave at level 0.
    pub fn new(root: bool) -> Self {
        BfsWave { root, level: None }
    }

    /// The BFS level at which the wave arrived (`0` for roots), if it has.
    pub fn level(&self) -> Option<u64> {
        self.level
    }
}

impl Protocol for BfsWave {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.root {
            self.level = Some(0);
            for p in 0..ctx.degree() {
                ctx.send(Port::new(p), 1);
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        let mut first: Option<u64> = None;
        for (_, lvl) in inbox.drain(..) {
            first = Some(match first {
                Some(f) => f.min(lvl),
                None => lvl,
            });
        }
        if self.level.is_none() {
            if let Some(lvl) = first {
                self.level = Some(lvl);
                for p in 0..ctx.degree() {
                    ctx.send(Port::new(p), lvl + 1);
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.level.is_some()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use welle_graph::{analysis, gen, NodeId};

    #[test]
    fn bfs_wave_matches_graph_bfs() {
        let g = Arc::new(gen::torus2d(4, 5).unwrap());
        let nodes = (0..g.n()).map(|i| BfsWave::new(i == 7)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
        let out = e.run(1_000);
        assert!(out.is_done());
        let dist = analysis::bfs(&g, NodeId::new(7));
        for (i, node) in e.nodes().iter().enumerate() {
            assert_eq!(node.level(), Some(dist[i] as u64), "node {i}");
        }
    }

    #[test]
    fn flood_max_message_budget_is_linear_in_m_for_lucky_start() {
        // When the max node floods first and dominates, total messages are
        // O(m); in general it is O(m * D). Check the upper bound loosely.
        let g = Arc::new(gen::clique(10).unwrap());
        let nodes = (0..10).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
        e.run(1_000);
        let m = g.m() as u64;
        assert!(e.metrics().messages >= 2 * m); // initial flood uses 2m
        assert!(e.metrics().messages <= 2 * m * 10);
    }

    #[test]
    fn echo_only_replies_to_pings() {
        let g = Arc::new(gen::path(3).unwrap());
        let nodes = vec![Echo::new(true), Echo::new(false), Echo::new(false)];
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.run(50);
        assert_eq!(e.node(0).replies_received(), 1);
        assert_eq!(e.node(1).replies_received(), 0);
        assert_eq!(e.node(2).replies_received(), 0);
    }
}
