//! Reference protocols used to validate engine semantics (and as simple
//! examples of the [`crate::Protocol`] interface). They are `pub` because
//! downstream crates reuse them in integration tests and benchmarks.

use std::sync::Arc;

use welle_graph::{Graph, Port};

use crate::async_engine::AsyncEngine;
use crate::engine::{Engine, EngineConfig, RunOutcome};
use crate::exec::Exec;
use crate::faults::FaultPlan;
use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::protocol::{Context, Protocol};
use crate::telemetry::{TelemetryConfig, TelemetryReport};
use crate::threaded::ThreadedEngine;

/// Every concrete executor choice a cross-executor equivalence check
/// should cover, labelled for assertion messages: the serial engine
/// (the oracle), the sharded engine at one and several workers, and
/// the async engine under the zero-latency model (which contracts to
/// be bit-identical to serial). Suites that iterate this list pick up
/// new executors automatically instead of enumerating them by hand.
pub fn all_execs() -> [(&'static str, Exec); 4] {
    [
        ("serial", Exec::Serial),
        ("threaded1", Exec::Threaded(1)),
        ("threaded3", Exec::Threaded(3)),
        ("async0", Exec::Async(LatencyModel::zero())),
    ]
}

/// One executor's view of a run driven by [`run_everywhere`].
#[derive(Clone, Debug)]
pub struct ExecRun {
    /// Label from [`all_execs`].
    pub name: &'static str,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Final traffic metrics.
    pub metrics: Metrics,
    /// Everything the telemetry layer recorded, when one was installed.
    pub telemetry: Option<TelemetryReport>,
}

/// Runs `make`-built protocols on every executor of [`all_execs`] under
/// the same `(graph, cfg, faults, telemetry)` and collects each run's
/// outcome, final [`Metrics`], and [`TelemetryReport`]. Multi-worker
/// thread pools are forced through the sharded barrier path
/// (`inline_cutoff = 0`) so the check exercises the real parallel code
/// even on single-core CI hosts.
pub fn run_everywhere<P: Protocol>(
    graph: &Arc<Graph>,
    cfg: EngineConfig,
    faults: Option<&FaultPlan>,
    telemetry: Option<TelemetryConfig>,
    round_limit: u64,
    make: impl Fn(usize) -> P,
) -> Vec<ExecRun> {
    let mut runs = Vec::new();
    for (name, exec) in all_execs() {
        let nodes: Vec<P> = (0..graph.n()).map(&make).collect();
        let (outcome, metrics, report) = match exec {
            Exec::Serial => {
                let mut e = Engine::new(Arc::clone(graph), nodes, cfg);
                if let Some(plan) = faults {
                    // welle-lint: allow(no-lib-unwrap) — test-support harness: a misfitting plan is a broken test, and panicking is its assertion mechanism
                    e.set_fault_plan(plan).expect("fault plan fits the graph");
                }
                if let Some(tcfg) = telemetry {
                    e.set_telemetry(tcfg);
                }
                let out = e.run(round_limit);
                (out, e.metrics().clone(), e.take_telemetry())
            }
            Exec::Threaded(k) => {
                let mut e = ThreadedEngine::new(Arc::clone(graph), nodes, cfg, k);
                if k > 1 {
                    e.set_inline_cutoff(0);
                }
                if let Some(plan) = faults {
                    // welle-lint: allow(no-lib-unwrap) — test-support harness: a misfitting plan is a broken test, and panicking is its assertion mechanism
                    e.set_fault_plan(plan).expect("fault plan fits the graph");
                }
                if let Some(tcfg) = telemetry {
                    e.set_telemetry(tcfg);
                }
                let out = e.run(round_limit);
                (out, e.metrics().clone(), e.take_telemetry())
            }
            Exec::Async(model) => {
                let mut e = AsyncEngine::new(Arc::clone(graph), nodes, cfg, model);
                if let Some(plan) = faults {
                    // welle-lint: allow(no-lib-unwrap) — test-support harness: a misfitting plan is a broken test, and panicking is its assertion mechanism
                    e.set_fault_plan(plan).expect("fault plan fits the graph");
                }
                if let Some(tcfg) = telemetry {
                    e.set_telemetry(tcfg);
                }
                let out = e.run(round_limit);
                (out, e.metrics().clone(), e.take_telemetry())
            }
            Exec::Auto => unreachable!("all_execs never yields Auto"),
        };
        runs.push(ExecRun {
            name,
            outcome,
            metrics,
            telemetry: report,
        });
    }
    runs
}

/// Cross-executor equality fence: drives [`run_everywhere`] and asserts
/// every executor reproduces the serial oracle's outcome, its full
/// [`Metrics`] (message/bit totals, per-node counts, `active_rounds`,
/// `max_edge_backlog`, drop/crash counters), and — when telemetry is
/// installed — its exact sample stream, sample count, and per-phase
/// totals. Span profiles are *not* compared: which stages an executor
/// enters is executor-specific by design. Returns the serial run for
/// further assertions.
///
/// # Panics
///
/// Panics (assertion failure) on any divergence.
pub fn assert_all_execs_agree<P: Protocol>(
    graph: &Arc<Graph>,
    cfg: EngineConfig,
    faults: Option<&FaultPlan>,
    telemetry: Option<TelemetryConfig>,
    round_limit: u64,
    make: impl Fn(usize) -> P,
) -> ExecRun {
    let mut runs = run_everywhere(graph, cfg, faults, telemetry, round_limit, make).into_iter();
    // welle-lint: allow(no-lib-unwrap) — test-support harness: all_execs always lists the serial oracle first
    let oracle = runs.next().expect("all_execs is non-empty");
    assert_eq!(oracle.name, "serial", "first executor must be the oracle");
    for run in runs {
        let what = run.name;
        assert_eq!(oracle.outcome, run.outcome, "{what}: run outcome");
        assert_eq!(oracle.metrics, run.metrics, "{what}: metrics");
        match (&oracle.telemetry, &run.telemetry) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.samples, b.samples, "{what}: telemetry samples");
                assert_eq!(a.total_samples, b.total_samples, "{what}: sample count");
                assert_eq!(a.phases, b.phases, "{what}: phase totals");
            }
            (a, b) => panic!(
                "{what}: telemetry presence diverged (oracle: {}, {what}: {})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
    oracle
}

/// Classic flooding of the maximum id: on learning a larger id, forward it
/// through every port. Terminates when the true maximum has stabilized
/// (each node is done once it has flooded its current best and heard
/// nothing better).
///
/// This is the `O(m · D)`-message baseline the paper contrasts with
/// (see §1 Prior Works); `welle-core` wraps it as an election baseline.
#[derive(Clone, Debug)]
pub struct FloodMax {
    id: u64,
    best: u64,
    needs_flood: bool,
}

impl FloodMax {
    /// A node with identity `id`.
    pub fn new(id: u64) -> Self {
        FloodMax {
            id,
            best: id,
            needs_flood: true,
        }
    }

    /// This node's own id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Largest id seen so far.
    pub fn best(&self) -> u64 {
        self.best
    }

    /// Whether this node currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.best == self.id
    }
}

impl Protocol for FloodMax {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        for p in 0..ctx.degree() {
            ctx.send(Port::new(p), self.best);
        }
        self.needs_flood = false;
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        let mut improved = false;
        for (_, id) in inbox.drain(..) {
            if id > self.best {
                self.best = id;
                improved = true;
            }
        }
        if improved {
            for p in 0..ctx.degree() {
                ctx.send(Port::new(p), self.best);
            }
        }
    }

    fn is_done(&self) -> bool {
        !self.needs_flood
    }
}

/// Minimal request/response pair: designated initiators ping port 0 once;
/// any node answers pings on the arrival port.
#[derive(Clone, Debug)]
pub struct Echo {
    initiator: bool,
    replies: usize,
}

/// Message type for [`Echo`]. (`Default` fills recycled arena slots —
/// see [`crate::Payload`]; the value itself is never delivered.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EchoMsg {
    /// Request.
    #[default]
    Ping,
    /// Response.
    Pong,
}

impl crate::message::Payload for EchoMsg {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Echo {
    /// Creates a node; `initiator` nodes ping through port 0 at start.
    pub fn new(initiator: bool) -> Self {
        Echo {
            initiator,
            replies: 0,
        }
    }

    /// Number of pongs received.
    pub fn replies_received(&self) -> usize {
        self.replies
    }
}

impl Protocol for Echo {
    type Msg = EchoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, EchoMsg>) {
        if self.initiator && ctx.degree() > 0 {
            ctx.send(Port::new(0), EchoMsg::Ping);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, EchoMsg>, inbox: &mut Vec<(Port, EchoMsg)>) {
        for (port, msg) in inbox.drain(..) {
            match msg {
                EchoMsg::Ping => ctx.send(port, EchoMsg::Pong),
                EchoMsg::Pong => self.replies += 1,
            }
        }
    }
}

/// Distributed BFS layering from designated roots: each node records the
/// round at which the wave first reached it. Used to cross-validate the
/// engine's timing against [`welle_graph::analysis::bfs`].
#[derive(Clone, Debug)]
pub struct BfsWave {
    root: bool,
    level: Option<u64>,
}

impl BfsWave {
    /// Creates a node; `root` nodes start the wave at level 0.
    pub fn new(root: bool) -> Self {
        BfsWave { root, level: None }
    }

    /// The BFS level at which the wave arrived (`0` for roots), if it has.
    pub fn level(&self) -> Option<u64> {
        self.level
    }
}

impl Protocol for BfsWave {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.root {
            self.level = Some(0);
            for p in 0..ctx.degree() {
                ctx.send(Port::new(p), 1);
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        let mut first: Option<u64> = None;
        for (_, lvl) in inbox.drain(..) {
            first = Some(match first {
                Some(f) => f.min(lvl),
                None => lvl,
            });
        }
        if self.level.is_none() {
            if let Some(lvl) = first {
                self.level = Some(lvl);
                for p in 0..ctx.degree() {
                    ctx.send(Port::new(p), lvl + 1);
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.level.is_some()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use welle_graph::{analysis, gen, NodeId};

    #[test]
    fn bfs_wave_matches_graph_bfs() {
        let g = Arc::new(gen::torus2d(4, 5).unwrap());
        let nodes = (0..g.n()).map(|i| BfsWave::new(i == 7)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
        let out = e.run(1_000);
        assert!(out.is_done());
        let dist = analysis::bfs(&g, NodeId::new(7));
        for (i, node) in e.nodes().iter().enumerate() {
            assert_eq!(node.level(), Some(dist[i] as u64), "node {i}");
        }
    }

    #[test]
    fn flood_max_message_budget_is_linear_in_m_for_lucky_start() {
        // When the max node floods first and dominates, total messages are
        // O(m); in general it is O(m * D). Check the upper bound loosely.
        let g = Arc::new(gen::clique(10).unwrap());
        let nodes = (0..10).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
        e.run(1_000);
        let m = g.m() as u64;
        assert!(e.metrics().messages >= 2 * m); // initial flood uses 2m
        assert!(e.metrics().messages <= 2 * m * 10);
    }

    #[test]
    fn echo_only_replies_to_pings() {
        let g = Arc::new(gen::path(3).unwrap());
        let nodes = vec![Echo::new(true), Echo::new(false), Echo::new(false)];
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.run(50);
        assert_eq!(e.node(0).replies_received(), 1);
        assert_eq!(e.node(1).replies_received(), 0);
        assert_eq!(e.node(2).replies_received(), 0);
    }
}
