//! Deterministic adversarial network conditions: the [`FaultPlan`].
//!
//! The CONGEST engines are exact by default — every message sent is
//! delivered next round (or serialized by congestion). A [`FaultPlan`]
//! composes four kinds of misbehaviour on top of that, all resolved
//! **deterministically** from the plan's own seed so a faulty run is
//! still a pure function of `(graph, protocols, seed, plan)`:
//!
//! * **drops** — each message crossing an edge is lost i.i.d. with
//!   probability `p`. The decision is a stateless hash of
//!   `(plan seed, round, directed edge)`, which is well-defined because
//!   the CONGEST discipline admits at most one crossing per directed
//!   edge per round — no RNG stream ordering is involved, so serial and
//!   sharded executors cannot disagree.
//! * **crash-stop** — node `v` falls silent from round `r`: none of its
//!   protocol callbacks run from that round on, and every message whose
//!   source or destination is crashed at crossing time is discarded.
//! * **delivery delay** — messages crossing edge `e` arrive `d` rounds
//!   late (the edge still carries at most one message per round; the
//!   extra latency models slow links without abandoning round
//!   semantics). Late arrivals are released in deterministic
//!   `(due round, crossing order)` order.
//! * **edge cuts** — edge `e` disappears at round `r`; messages sent
//!   into it afterwards vanish (no failure detector is modelled).
//!   Cutting a graph's bridges yields partition experiments.
//!
//! Suppressed messages are counted in
//! [`Metrics::dropped_messages`](crate::Metrics::dropped_messages)
//! rather than silently vanishing. A plan with drop rate 0, no crashes,
//! zero delays, and no cuts is **bit-identical** to running without a
//! plan — the engines' property suites enforce this.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Bernoulli, RngExt, SeedableRng};
use welle_graph::{Graph, NodeId};

/// Crash round meaning "never".
const NEVER: u64 = u64::MAX;

/// A declarative, seed-driven schedule of network faults.
///
/// Build one with the fluent setters, hand it to
/// [`Engine::set_fault_plan`](crate::Engine::set_fault_plan) (or the
/// higher-level election driver), and the same plan replays the same
/// faults on every run. Random selections (`crash_fraction`,
/// `cut_fraction`) are materialized from the plan's seed when the plan
/// is compiled against a concrete graph.
///
/// ```
/// use welle_congest::FaultPlan;
///
/// let plan = FaultPlan::new(7)
///     .drop_rate(0.05)        // lose 5% of messages in transit
///     .crash(3, 100)          // node 3 goes silent from round 100
///     .crash_fraction(0.1, 50) // plus a random tenth of all nodes at 50
///     .delay_all(2);          // every link delivers two rounds late
/// assert!(!plan.is_vacuous());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    crashes: Vec<(usize, u64)>,
    crash_fractions: Vec<(f64, u64)>,
    delay_all: u32,
    random_delay_max: u32,
    cuts: Vec<(usize, usize, u64)>,
    cut_fractions: Vec<(f64, u64)>,
}

impl FaultPlan {
    /// Starts an empty plan whose random selections derive from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the i.i.d. per-message drop probability.
    pub fn drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = p;
        self
    }

    /// Crash-stops node `node` from round `round` on (the earliest of
    /// several schedules for the same node wins).
    pub fn crash(mut self, node: usize, round: u64) -> Self {
        self.crashes.push((node, round));
        self
    }

    /// Crash-stops a seed-chosen random fraction of all nodes from
    /// round `round` on (each node is selected i.i.d. with probability
    /// `fraction`).
    pub fn crash_fraction(mut self, fraction: f64, round: u64) -> Self {
        self.crash_fractions.push((fraction, round));
        self
    }

    /// Delays delivery on **every** edge by `rounds` (messages sent at
    /// round `r` arrive at `r + 1 + rounds`).
    pub fn delay_all(mut self, rounds: u32) -> Self {
        self.delay_all = rounds;
        self
    }

    /// Gives each edge an independent seed-chosen delay uniform in
    /// `0..=max_rounds`, on top of [`FaultPlan::delay_all`].
    pub fn random_delays(mut self, max_rounds: u32) -> Self {
        self.random_delay_max = max_rounds;
        self
    }

    /// Removes the edge between nodes `u` and `v` from round `round` on.
    pub fn cut(mut self, u: usize, v: usize, round: u64) -> Self {
        self.cuts.push((u, v, round));
        self
    }

    /// Removes a seed-chosen random fraction of all edges from round
    /// `round` on.
    pub fn cut_fraction(mut self, fraction: f64, round: u64) -> Self {
        self.cut_fractions.push((fraction, round));
        self
    }

    /// Whether this plan schedules no faults at all. A vacuous plan is
    /// still a valid plan — it exercises the fault-aware delivery path
    /// and must be bit-identical to running without one.
    pub fn is_vacuous(&self) -> bool {
        // welle-lint: allow(no-float-eq) — exact-zero sentinel test on a user-set rate; never the result of arithmetic
        self.drop_rate == 0.0
            && self.crashes.is_empty()
            && self.crash_fractions.is_empty()
            && self.delay_all == 0
            && self.random_delay_max == 0
            && self.cuts.is_empty()
            && self.cut_fractions.is_empty()
    }

    /// Checks the plan against a concrete graph without installing it:
    /// probabilities in range, crash targets in `0..n`, cut edges
    /// present. Drivers call this up front so batch sweeps fail before
    /// anything is simulated.
    ///
    /// # Errors
    ///
    /// The first [`FaultError`] found, if any.
    pub fn validate(&self, graph: &Graph) -> Result<(), FaultError> {
        self.compile_for(graph).map(|_| ())
    }

    /// Resolves the plan against a concrete graph once, yielding an
    /// opaque handle engines install in `O(1)`
    /// ([`Engine::set_compiled_faults`](crate::Engine::set_compiled_faults)).
    /// Batch drivers sweeping many seeds over one scenario compile once
    /// here instead of once per trial (compilation materializes per-node
    /// crash rounds and per-edge delays/cuts, `O(n + m)`).
    ///
    /// # Errors
    ///
    /// The first [`FaultError`] found, if any.
    pub fn compile_for(&self, graph: &Graph) -> Result<CompiledFaultPlan, FaultError> {
        CompiledFaults::compile(self, graph).map(|c| CompiledFaultPlan(Arc::new(c)))
    }
}

/// A [`FaultPlan`] resolved against one specific graph (see
/// [`FaultPlan::compile_for`]). Opaque and cheap to clone; installing it
/// on an engine of a *different* graph is a logic error (schedules are
/// indexed by that graph's nodes and edges).
#[derive(Clone, Debug)]
pub struct CompiledFaultPlan(pub(crate) Arc<CompiledFaults>);

/// Why a [`FaultPlan`] cannot apply to a graph.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// The drop rate is not a probability.
    BadDropRate(f64),
    /// A crash or cut fraction is not a probability.
    BadFraction(f64),
    /// A crash schedule names a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The graph size.
        n: usize,
    },
    /// A cut names an edge the graph does not have.
    NoSuchEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadDropRate(p) => {
                write!(f, "drop rate must be a probability in [0, 1], got {p}")
            }
            FaultError::BadFraction(p) => {
                write!(f, "fault fraction must be a probability in [0, 1], got {p}")
            }
            FaultError::NodeOutOfRange { node, n } => {
                write!(f, "fault plan crashes node {node}, but the graph has n = {n}")
            }
            FaultError::NoSuchEdge { u, v } => {
                write!(f, "fault plan cuts edge ({u}, {v}), which the graph does not have")
            }
        }
    }
}

impl Error for FaultError {}

/// A [`FaultPlan`] resolved against one concrete graph: per-node crash
/// rounds, per-edge delays and cut rounds, and the drop threshold.
/// Immutable once built, so the sharded engine shares it with its
/// workers behind an `Arc`.
#[derive(Debug)]
pub(crate) struct CompiledFaults {
    /// Drop distribution; `None` when the rate is exactly zero.
    drop: Option<Bernoulli>,
    /// Stream key for the stateless drop hash.
    drop_seed: u64,
    /// Crash round per node; empty when nothing crashes.
    crash_round: Vec<u64>,
    /// Extra delivery delay per undirected edge; empty when all zero.
    delay: Vec<u32>,
    /// Cut round per undirected edge; empty when nothing is cut.
    cut_round: Vec<u64>,
    /// Number of nodes with a scheduled crash (reporting).
    pub(crate) scheduled_crashes: u64,
}

impl CompiledFaults {
    /// Resolves `plan` against `graph`.
    pub(crate) fn compile(plan: &FaultPlan, graph: &Graph) -> Result<Self, FaultError> {
        let n = graph.n();
        let m = graph.m();
        if !plan.drop_rate.is_finite() || !(0.0..=1.0).contains(&plan.drop_rate) {
            return Err(FaultError::BadDropRate(plan.drop_rate));
        }
        for &(frac, _) in plan.crash_fractions.iter().chain(&plan.cut_fractions) {
            if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
                return Err(FaultError::BadFraction(frac));
            }
        }

        let mut crash_round = Vec::new();
        let touch_crash = |node: usize, round: u64, crash_round: &mut Vec<u64>| {
            if crash_round.is_empty() {
                crash_round.resize(n, NEVER);
            }
            crash_round[node] = crash_round[node].min(round);
        };
        for &(node, round) in &plan.crashes {
            if node >= n {
                return Err(FaultError::NodeOutOfRange { node, n });
            }
            touch_crash(node, round, &mut crash_round);
        }
        // Random selections draw from dedicated streams derived from the
        // plan seed, so adding e.g. a cut fraction cannot shift which
        // nodes a crash fraction picks.
        let mut crash_rng = StdRng::seed_from_u64(plan.seed ^ 0xC4A5_4CA5_4CA5_4CA5);
        for &(frac, round) in &plan.crash_fractions {
            // welle-lint: allow(no-lib-unwrap) — invariant: compile() rejected out-of-range fractions before this loop
            let dist = Bernoulli::new(frac).expect("fraction validated above");
            for node in 0..n {
                if crash_rng.sample_bernoulli(&dist) {
                    touch_crash(node, round, &mut crash_round);
                }
            }
        }
        let scheduled_crashes = crash_round.iter().filter(|&&r| r != NEVER).count() as u64;

        let mut delay = Vec::new();
        if plan.delay_all > 0 {
            delay.resize(m, plan.delay_all);
        }
        if plan.random_delay_max > 0 {
            if delay.is_empty() {
                delay.resize(m, 0);
            }
            let mut delay_rng = StdRng::seed_from_u64(plan.seed ^ 0xDE1A_DE1A_DE1A_DE1A);
            for d in delay.iter_mut() {
                *d += delay_rng.random_range(0..=plan.random_delay_max);
            }
        }

        let mut cut_round = Vec::new();
        let touch_cut = |edge: usize, round: u64, cut_round: &mut Vec<u64>| {
            if cut_round.is_empty() {
                cut_round.resize(m, NEVER);
            }
            cut_round[edge] = cut_round[edge].min(round);
        };
        for &(u, v, round) in &plan.cuts {
            let edge = (u < n && v < n)
                .then(|| {
                    let un = NodeId::new(u);
                    graph
                        .ports(un)
                        .find(|&p| graph.neighbor(un, p) == NodeId::new(v))
                        .map(|p| graph.edge_id(un, p).index())
                })
                .flatten()
                .ok_or(FaultError::NoSuchEdge { u, v })?;
            touch_cut(edge, round, &mut cut_round);
        }
        let mut cut_rng = StdRng::seed_from_u64(plan.seed ^ 0x0C07_0C07_0C07_0C07);
        for &(frac, round) in &plan.cut_fractions {
            // welle-lint: allow(no-lib-unwrap) — invariant: compile() rejected out-of-range fractions before this loop
            let dist = Bernoulli::new(frac).expect("fraction validated above");
            for edge in 0..m {
                if cut_rng.sample_bernoulli(&dist) {
                    touch_cut(edge, round, &mut cut_round);
                }
            }
        }

        Ok(CompiledFaults {
            drop: if plan.drop_rate > 0.0 {
                // welle-lint: allow(no-lib-unwrap) — invariant: compile() rejected out-of-range drop rates before constructing CompiledFaults
                Some(Bernoulli::new(plan.drop_rate).expect("rate validated above"))
            } else {
                None
            },
            drop_seed: plan.seed,
            crash_round,
            delay,
            cut_round,
            scheduled_crashes,
        })
    }

    /// Whether `node` has crash-stopped by `round`.
    #[inline]
    pub(crate) fn is_crashed(&self, node: usize, round: u64) -> bool {
        !self.crash_round.is_empty() && round >= self.crash_round[node]
    }

    /// Whether the message crossing directed edge `dir` at `round` is
    /// dropped in transit. Pure in `(seed, round, dir)`: the CONGEST
    /// one-crossing-per-round discipline makes the pair a unique message
    /// identity, so this is an i.i.d. coin per message with no RNG
    /// stream to keep executors in sync over.
    #[inline]
    pub(crate) fn dropped_in_transit(&self, round: u64, dir: usize) -> bool {
        match &self.drop {
            None => false,
            Some(dist) => dist.check(mix3(self.drop_seed, round, dir as u64)),
        }
    }

    /// Whether undirected edge `edge` has been cut by `round`.
    #[inline]
    pub(crate) fn edge_cut(&self, edge: usize, round: u64) -> bool {
        !self.cut_round.is_empty() && round >= self.cut_round[edge]
    }

    /// Extra delivery delay for undirected edge `edge`.
    #[inline]
    pub(crate) fn edge_delay(&self, edge: usize) -> u32 {
        if self.delay.is_empty() {
            0
        } else {
            self.delay[edge]
        }
    }
}

/// SplitMix64-style mix of three words into one uniform word. Shared
/// with the latency layer, which keys its per-crossing samples the same
/// way the drop layer keys its coins.
#[inline]
pub(crate) fn mix3(seed: u64, round: u64, dir: u64) -> u64 {
    let mut z = seed
        ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ dir.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A message parked by the delay layer, ordered by `(due, seq)` so a
/// `BinaryHeap<DelayedMsg>` pops the earliest due message first and
/// preserves crossing order within a round.
#[derive(Debug)]
pub(crate) struct DelayedMsg<M> {
    pub(crate) due: u64,
    pub(crate) seq: u64,
    pub(crate) dir: u32,
    pub(crate) msg: M,
}

impl<M> PartialEq for DelayedMsg<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for DelayedMsg<M> {}
impl<M> PartialOrd for DelayedMsg<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for DelayedMsg<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the heap is a max-heap, we want earliest-due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Runtime state of an installed fault plan: the compiled schedule plus
/// the delay buffer. Lives inside the (inner) engine so both executors
/// drive the identical state through the shared `Transmitter`.
#[derive(Debug)]
pub(crate) struct FaultState<M> {
    pub(crate) compiled: Arc<CompiledFaults>,
    pub(crate) delayed: BinaryHeap<DelayedMsg<M>>,
    seq: u64,
}

impl<M> FaultState<M> {
    pub(crate) fn new(compiled: Arc<CompiledFaults>) -> Self {
        FaultState {
            compiled,
            delayed: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Parks a message that crossed `dir` for release at round `due`.
    pub(crate) fn park(&mut self, due: u64, dir: u32, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.delayed.push(DelayedMsg { due, seq, dir, msg });
    }

    /// Messages parked in the delay buffer (they count as in flight).
    pub(crate) fn parked(&self) -> usize {
        self.delayed.len()
    }

    /// Whether any parked message is due at `round`.
    pub(crate) fn due_now(&self, round: u64) -> bool {
        self.delayed.peek().is_some_and(|d| d.due <= round)
    }

    /// Round of the earliest parked release, if any (the engines' idle
    /// skip jumps to it instead of stepping empty rounds).
    pub(crate) fn next_due(&self) -> Option<u64> {
        self.delayed.peek().map(|d| d.due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::gen;

    #[test]
    fn vacuous_plan_compiles_to_all_noops() {
        let g = gen::ring(8).unwrap();
        let plan = FaultPlan::new(1);
        assert!(plan.is_vacuous());
        let c = CompiledFaults::compile(&plan, &g).unwrap();
        for dir in 0..g.directed_edge_count() {
            assert!(!c.dropped_in_transit(3, dir));
        }
        for node in 0..g.n() {
            assert!(!c.is_crashed(node, u64::MAX - 1));
        }
        for e in 0..g.m() {
            assert!(!c.edge_cut(e, u64::MAX - 1));
            assert_eq!(c.edge_delay(e), 0);
        }
        assert_eq!(c.scheduled_crashes, 0);
    }

    #[test]
    fn compile_rejects_bad_inputs() {
        let g = gen::ring(8).unwrap();
        assert_eq!(
            FaultPlan::new(0).drop_rate(1.5).validate(&g),
            Err(FaultError::BadDropRate(1.5))
        );
        assert_eq!(
            FaultPlan::new(0).crash_fraction(-0.1, 5).validate(&g),
            Err(FaultError::BadFraction(-0.1))
        );
        assert_eq!(
            FaultPlan::new(0).crash(8, 1).validate(&g),
            Err(FaultError::NodeOutOfRange { node: 8, n: 8 })
        );
        // Ring 0-1-2-...-7-0: (0, 4) is not an edge.
        assert_eq!(
            FaultPlan::new(0).cut(0, 4, 1).validate(&g),
            Err(FaultError::NoSuchEdge { u: 0, v: 4 })
        );
        assert!(FaultPlan::new(0).cut(0, 1, 1).validate(&g).is_ok());
    }

    #[test]
    fn crash_schedule_takes_earliest_round() {
        let g = gen::ring(8).unwrap();
        let plan = FaultPlan::new(0).crash(2, 50).crash(2, 10).crash(5, 7);
        let c = CompiledFaults::compile(&plan, &g).unwrap();
        assert!(!c.is_crashed(2, 9));
        assert!(c.is_crashed(2, 10));
        assert!(c.is_crashed(5, 7));
        assert!(!c.is_crashed(0, u64::MAX - 1));
        assert_eq!(c.scheduled_crashes, 2);
    }

    #[test]
    fn drop_decisions_are_deterministic_and_rate_shaped() {
        let g = gen::clique(32).unwrap();
        let c = CompiledFaults::compile(&FaultPlan::new(9).drop_rate(0.25), &g).unwrap();
        let c2 = CompiledFaults::compile(&FaultPlan::new(9).drop_rate(0.25), &g).unwrap();
        let mut hits = 0usize;
        let mut total = 0usize;
        for round in 0..40u64 {
            for dir in 0..g.directed_edge_count() {
                assert_eq!(
                    c.dropped_in_transit(round, dir),
                    c2.dropped_in_transit(round, dir)
                );
                hits += c.dropped_in_transit(round, dir) as usize;
                total += 1;
            }
        }
        let frac = hits as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.02, "drop frequency {frac}");
    }

    #[test]
    fn fractions_are_seed_stable_and_roughly_sized() {
        let g = gen::clique(64).unwrap();
        let plan = FaultPlan::new(5).crash_fraction(0.5, 3).cut_fraction(0.25, 4);
        let a = CompiledFaults::compile(&plan, &g).unwrap();
        let b = CompiledFaults::compile(&plan, &g).unwrap();
        let crashed: Vec<usize> = (0..g.n()).filter(|&v| a.is_crashed(v, 3)).collect();
        let crashed_b: Vec<usize> = (0..g.n()).filter(|&v| b.is_crashed(v, 3)).collect();
        assert_eq!(crashed, crashed_b, "selection must be seed-stable");
        assert!(crashed.len() > 16 && crashed.len() < 48, "{}", crashed.len());
        let cut = (0..g.m()).filter(|&e| a.edge_cut(e, 4)).count();
        assert!(cut > g.m() / 8 && cut < g.m() / 2, "{cut} of {}", g.m());
        // Nothing is crashed or cut before its round.
        assert!((0..g.n()).all(|v| !a.is_crashed(v, 2)));
        assert!((0..g.m()).all(|e| !a.edge_cut(e, 3)));
    }

    #[test]
    fn delays_combine_uniform_and_random_parts() {
        let g = gen::ring(16).unwrap();
        let c = CompiledFaults::compile(
            &FaultPlan::new(2).delay_all(3).random_delays(2),
            &g,
        )
        .unwrap();
        for e in 0..g.m() {
            let d = c.edge_delay(e);
            assert!((3..=5).contains(&d), "edge {e}: delay {d}");
        }
    }

    #[test]
    fn delayed_heap_orders_by_due_then_seq() {
        let mut fs: FaultState<u64> =
            FaultState::new(Arc::new(
                CompiledFaults::compile(&FaultPlan::new(0), &gen::ring(4).unwrap()).unwrap(),
            ));
        fs.park(9, 0, 900);
        fs.park(5, 1, 500);
        fs.park(5, 2, 501);
        fs.park(7, 3, 700);
        assert_eq!(fs.parked(), 4);
        assert!(fs.due_now(5));
        assert!(!fs.due_now(4));
        let mut order = Vec::new();
        while let Some(d) = fs.delayed.pop() {
            order.push(d.msg);
        }
        assert_eq!(order, vec![500, 501, 700, 900]);
    }
}
