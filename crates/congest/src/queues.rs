//! Per-directed-edge FIFO queues implementing the CONGEST discipline:
//! at most one message crosses each directed edge per round.

use std::collections::VecDeque;

use welle_graph::{Graph, NodeId, Port};

/// Message queues keyed by directed edge (`Graph::directed_index`).
#[derive(Debug)]
pub(crate) struct EdgeQueues<M> {
    queues: Vec<VecDeque<M>>,
    /// Directed edges with at least one queued message, as `(node, port)`.
    active: Vec<(u32, u32)>,
    in_active: Vec<bool>,
    total_queued: usize,
    max_backlog: usize,
}

impl<M> EdgeQueues<M> {
    pub(crate) fn new(directed_edges: usize) -> Self {
        EdgeQueues {
            queues: (0..directed_edges).map(|_| VecDeque::new()).collect(),
            active: Vec::new(),
            in_active: vec![false; directed_edges],
            total_queued: 0,
            max_backlog: 0,
        }
    }

    /// Queues a message for transmission from `u` through `port`.
    pub(crate) fn push(&mut self, g: &Graph, u: NodeId, port: Port, msg: M) {
        let dir = g.directed_index(u, port);
        self.queues[dir].push_back(msg);
        self.total_queued += 1;
        self.max_backlog = self.max_backlog.max(self.queues[dir].len());
        if !self.in_active[dir] {
            self.in_active[dir] = true;
            self.active.push((u.raw(), port.raw()));
        }
    }

    /// Number of messages currently queued across all edges.
    pub(crate) fn in_flight(&self) -> usize {
        self.total_queued
    }

    /// Longest per-edge backlog observed so far.
    pub(crate) fn max_backlog(&self) -> usize {
        self.max_backlog
    }

    /// Transmits one message per active directed edge, invoking
    /// `deliver(from, from_port, msg)` for each; maintains the active list.
    pub(crate) fn transmit(&mut self, g: &Graph, mut deliver: impl FnMut(NodeId, Port, M)) {
        let batch = std::mem::take(&mut self.active);
        for (u_raw, p_raw) in batch {
            let u = NodeId::from(u_raw);
            let p = Port::from(p_raw);
            let dir = g.directed_index(u, p);
            let msg = self.queues[dir]
                .pop_front()
                .expect("active directed edge has a queued message");
            self.total_queued -= 1;
            if self.queues[dir].is_empty() {
                self.in_active[dir] = false;
            } else {
                self.active.push((u_raw, p_raw));
            }
            deliver(u, p, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::gen;

    #[test]
    fn fifo_one_per_round() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let u = NodeId::new(0);
        let p = Port::new(0);
        q.push(&g, u, p, 1);
        q.push(&g, u, p, 2);
        q.push(&g, u, p, 3);
        assert_eq!(q.in_flight(), 3);
        assert_eq!(q.max_backlog(), 3);

        let mut seen = Vec::new();
        q.transmit(&g, |_, _, m| seen.push(m));
        assert_eq!(seen, vec![1]);
        q.transmit(&g, |_, _, m| seen.push(m));
        q.transmit(&g, |_, _, m| seen.push(m));
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(q.in_flight(), 0);

        // Idle transmit is a no-op.
        q.transmit(&g, |_, _, _| panic!("nothing queued"));
    }

    #[test]
    fn parallel_edges_transmit_in_the_same_round() {
        let g = gen::star(4).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let hub = NodeId::new(0);
        for port in 0..3 {
            q.push(&g, hub, Port::new(port), port as u64);
        }
        let mut seen = Vec::new();
        q.transmit(&g, |_, _, m| seen.push(m));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn directions_are_independent() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        q.push(&g, NodeId::new(0), Port::new(0), 10);
        q.push(&g, NodeId::new(1), Port::new(0), 20);
        let mut seen = Vec::new();
        q.transmit(&g, |from, _, m| seen.push((from.index(), m)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 10), (1, 20)]);
    }
}
