//! Per-directed-edge FIFO queues implementing the CONGEST discipline:
//! at most one message crosses each directed edge per round.
//!
//! The storage is a single flat arena shared by every directed edge
//! rather than one `VecDeque` per edge: each queue is an intrusive
//! linked list of pool slots (`head`/`tail` indexed by
//! [`welle_graph::Graph::directed_index`], `next` links inside the
//! pool, freed slots recycled through a free list). This keeps the
//! common case — a burst of `k ≤ 1` messages per edge per round —
//! allocation-free after warm-up and cache-friendly at `n ≥ 10⁵`,
//! where two million per-edge `VecDeque`s would each heap-allocate on
//! first use.

/// Sentinel for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// Message queues keyed by directed edge index (`Graph::directed_index`).
///
/// All operations are keyed by the directed index directly; callers
/// resolve `(node, port)` to an index once per send, and
/// [`EdgeQueues::transmit_into`] hands indices back so delivery never
/// recomputes them.
#[derive(Debug)]
pub(crate) struct EdgeQueues<M> {
    /// Head slot of each directed edge's queue (`NIL` when empty).
    head: Vec<u32>,
    /// Tail slot of each directed edge's queue (`NIL` when empty).
    tail: Vec<u32>,
    /// Arena of messages; `None` marks a free slot.
    pool: Vec<Option<M>>,
    /// `next[slot]` links queue slots; also threads the free list.
    next: Vec<u32>,
    /// Head of the free list inside `pool`.
    free: u32,
    /// Directed edges with at least one queued message, by index.
    active: Vec<u32>,
    total_queued: usize,
    backlog: Vec<u32>,
}

impl<M> EdgeQueues<M> {
    pub(crate) fn new(directed_edges: usize) -> Self {
        EdgeQueues {
            head: vec![NIL; directed_edges],
            tail: vec![NIL; directed_edges],
            pool: Vec::new(),
            next: Vec::new(),
            free: NIL,
            active: Vec::new(),
            total_queued: 0,
            backlog: vec![0; directed_edges],
        }
    }

    /// Queues a message on the directed edge with index `dir`, returning
    /// the edge's queue length after the push (for backlog metrics).
    pub(crate) fn push_dir(&mut self, dir: usize, msg: M) -> usize {
        let slot = if self.free != NIL {
            let s = self.free;
            self.free = self.next[s as usize];
            self.pool[s as usize] = Some(msg);
            s
        } else {
            let s = crate::idx32(self.pool.len());
            self.pool.push(Some(msg));
            self.next.push(NIL);
            s
        };
        self.next[slot as usize] = NIL;
        if self.tail[dir] == NIL {
            self.head[dir] = slot;
            self.active.push(crate::idx32(dir));
        } else {
            self.next[self.tail[dir] as usize] = slot;
        }
        self.tail[dir] = slot;
        self.total_queued += 1;
        self.backlog[dir] += 1;
        self.backlog[dir] as usize
    }

    /// Number of messages currently queued across all edges.
    pub(crate) fn in_flight(&self) -> usize {
        self.total_queued
    }

    /// Restores the empty state for a (possibly different) edge set while
    /// keeping the slot arena: every pool slot is cleared and rethreaded
    /// onto the free list, so a reset-and-reused queue set never
    /// re-allocates for traffic the previous run already paid for.
    pub(crate) fn reset(&mut self, directed_edges: usize) {
        self.head.clear();
        self.head.resize(directed_edges, NIL);
        self.tail.clear();
        self.tail.resize(directed_edges, NIL);
        self.free = NIL;
        for i in (0..self.pool.len()).rev() {
            self.pool[i] = None;
            self.next[i] = self.free;
            self.free = crate::idx32(i);
        }
        self.active.clear();
        self.total_queued = 0;
        self.backlog.clear();
        self.backlog.resize(directed_edges, 0);
    }

    /// Slots the message arena can hold without re-allocating
    /// (diagnostic: pooling tests assert a reset keeps this).
    pub(crate) fn arena_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Transmits one message per active directed edge, appending
    /// `(directed_index, msg)` pairs to `out` in active-list order;
    /// maintains the active list for the next round.
    ///
    /// Batching the deliveries into a caller-owned buffer (instead of a
    /// per-message callback) lets the engines run their delivery loop
    /// over plain data with no closure dispatch in between.
    pub(crate) fn transmit_into(&mut self, out: &mut Vec<(u32, M)>) {
        let mut kept = 0usize;
        for i in 0..self.active.len() {
            let dir = self.active[i];
            let d = dir as usize;
            let slot = self.head[d];
            debug_assert!(slot != NIL, "active directed edge has a queued message");
            let msg = self.pool[slot as usize]
                .take()
                // welle-lint: allow(no-lib-unwrap) — invariant: `active` only lists directed edges whose head slot is occupied (debug-asserted above)
                .expect("queue slot holds a message");
            self.head[d] = self.next[slot as usize];
            if self.head[d] == NIL {
                self.tail[d] = NIL;
            } else {
                // Still backed up: stays in the active list.
                self.active[kept] = dir;
                kept += 1;
            }
            self.next[slot as usize] = self.free;
            self.free = slot;
            self.total_queued -= 1;
            self.backlog[d] -= 1;
            out.push((dir, msg));
        }
        self.active.truncate(kept);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::{gen, NodeId, Port};

    #[test]
    fn fifo_one_per_round() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let dir = g.directed_index(NodeId::new(0), Port::new(0));
        assert_eq!(q.push_dir(dir, 1), 1);
        assert_eq!(q.push_dir(dir, 2), 2);
        assert_eq!(q.push_dir(dir, 3), 3);
        assert_eq!(q.in_flight(), 3);

        let mut seen = Vec::new();
        q.transmit_into(&mut seen);
        assert_eq!(seen, vec![(dir as u32, 1)]);
        q.transmit_into(&mut seen);
        q.transmit_into(&mut seen);
        let msgs: Vec<u64> = seen.iter().map(|&(_, m)| m).collect();
        assert_eq!(msgs, vec![1, 2, 3]);
        assert_eq!(q.in_flight(), 0);

        // Idle transmit is a no-op.
        seen.clear();
        q.transmit_into(&mut seen);
        assert!(seen.is_empty());
    }

    #[test]
    fn parallel_edges_transmit_in_the_same_round() {
        let g = gen::star(4).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let hub = NodeId::new(0);
        for port in 0..3 {
            q.push_dir(g.directed_index(hub, Port::new(port)), port as u64);
        }
        let mut seen = Vec::new();
        q.transmit_into(&mut seen);
        let mut msgs: Vec<u64> = seen.iter().map(|&(_, m)| m).collect();
        msgs.sort_unstable();
        assert_eq!(msgs, vec![0, 1, 2]);
    }

    #[test]
    fn directions_are_independent() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        q.push_dir(g.directed_index(NodeId::new(0), Port::new(0)), 10);
        q.push_dir(g.directed_index(NodeId::new(1), Port::new(0)), 20);
        let mut seen = Vec::new();
        q.transmit_into(&mut seen);
        let mut got: Vec<(usize, u64)> = seen
            .iter()
            .map(|&(dir, m)| (g.directed_source(dir as usize).0.index(), m))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 20)]);
    }

    #[test]
    fn arena_recycles_slots() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let dir = g.directed_index(NodeId::new(0), Port::new(0));
        let mut out = Vec::new();
        for round in 0..100u64 {
            q.push_dir(dir, round);
            q.transmit_into(&mut out);
        }
        assert_eq!(out.len(), 100);
        // Steady-state traffic of one in-flight message reuses one slot.
        assert_eq!(q.pool.len(), 1);
    }
}
