//! Per-directed-edge FIFO queues implementing the CONGEST discipline:
//! at most one message crosses each directed edge per round.
//!
//! The storage is a single flat arena shared by every directed edge
//! rather than one `VecDeque` per edge: each queue is an intrusive
//! linked list of pool slots (`head`/`tail` indexed by
//! [`welle_graph::Graph::directed_index`], `next` links inside the
//! pool, freed slots recycled through a free list). This keeps the
//! common case — a burst of `k ≤ 1` messages per edge per round —
//! allocation-free after warm-up and cache-friendly at `n ≥ 10⁵`,
//! where two million per-edge `VecDeque`s would each heap-allocate on
//! first use.
//!
//! Two layout decisions keep the arena at `n = 10⁶` scale:
//!
//! * **Struct-of-arrays pool.** Messages and their intrusive `next`
//!   links live in parallel `Vec<M>` / `Vec<u32>` arrays; a free slot
//!   holds `M::default()` instead of an `Option` discriminant, so a
//!   slot costs exactly `size_of::<M>() + 4` bytes and the transmit
//!   scan walks densely packed data. (This is why [`Payload`] requires
//!   `Default`.)
//! * **Bounded per-round batches.** [`EdgeQueues::transmit_chunk`]
//!   pops queue heads through a caller-owned [`DirBatch`] scratch of
//!   bounded size instead of materializing the whole round: a round
//!   with two million active edges flows through a few thousand
//!   recycled scratch slots, with pool slots freed as each chunk is
//!   handed out.
//!
//! [`Payload`]: crate::message::Payload

/// Sentinel for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// A struct-of-arrays batch of `(directed_index, message)` pairs: the
/// engines' transmission currency. Splitting the `u32` indices from the
/// messages avoids the padding of a `(u32, M)` tuple (8 bytes per entry
/// for a 32-byte message) and keeps the index scan dense.
#[derive(Debug, Default)]
pub(crate) struct DirBatch<M> {
    dirs: Vec<u32>,
    msgs: Vec<M>,
}

impl<M> DirBatch<M> {
    pub(crate) fn new() -> Self {
        DirBatch {
            dirs: Vec::new(),
            msgs: Vec::new(),
        }
    }

    /// Appends one `(directed_index, message)` entry.
    #[inline]
    pub(crate) fn push(&mut self, dir: u32, msg: M) {
        self.dirs.push(dir);
        self.msgs.push(msg);
    }

    pub(crate) fn len(&self) -> usize {
        debug_assert_eq!(self.dirs.len(), self.msgs.len());
        self.dirs.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// Entries the batch can hold without re-allocating (arena budget
    /// accounting; see [`crate::Engine::arena_capacity`]).
    pub(crate) fn capacity(&self) -> usize {
        self.dirs.capacity()
    }

    pub(crate) fn clear(&mut self) {
        self.dirs.clear();
        self.msgs.clear();
    }

    /// Drains the batch front to back, preserving push order.
    pub(crate) fn drain(&mut self) -> impl Iterator<Item = (u32, M)> + '_ {
        self.dirs.drain(..).zip(self.msgs.drain(..))
    }

    /// Drops the backing arrays entirely (see
    /// [`EdgeQueues::shrink_for`] for when oversized buffers are let
    /// go).
    pub(crate) fn release(&mut self) {
        self.dirs = Vec::new();
        self.msgs = Vec::new();
    }
}

/// Message queues keyed by directed edge index (`Graph::directed_index`).
///
/// All operations are keyed by the directed index directly; callers
/// resolve `(node, port)` to an index once per send, and
/// [`EdgeQueues::transmit_chunk`] hands indices back so delivery never
/// recomputes them.
#[derive(Debug)]
pub(crate) struct EdgeQueues<M> {
    /// Head slot of each directed edge's queue (`NIL` when empty).
    head: Vec<u32>,
    /// Tail slot of each directed edge's queue (`NIL` when empty).
    tail: Vec<u32>,
    /// Arena of messages (struct-of-arrays with `next`); free slots hold
    /// `M::default()` and are threaded through the free list.
    pool: Vec<M>,
    /// `next[slot]` links queue slots; also threads the free list.
    next: Vec<u32>,
    /// Head of the free list inside `pool`.
    free: u32,
    /// Directed edges with at least one queued message, by index.
    active: Vec<u32>,
    /// Scan cursor of an in-progress transmit pass over `active`
    /// (0 between rounds).
    scan: usize,
    /// Compaction cursor of an in-progress transmit pass (entries
    /// `active[..kept]` are still backed up after their head popped).
    kept: usize,
    total_queued: u64,
    backlog: Vec<u32>,
}

impl<M: Default> EdgeQueues<M> {
    pub(crate) fn new(directed_edges: usize) -> Self {
        EdgeQueues {
            head: vec![NIL; directed_edges],
            tail: vec![NIL; directed_edges],
            pool: Vec::new(),
            next: Vec::new(),
            free: NIL,
            active: Vec::new(),
            scan: 0,
            kept: 0,
            total_queued: 0,
            backlog: vec![0; directed_edges],
        }
    }

    /// Queues a message on the directed edge with index `dir`, returning
    /// the edge's queue length after the push (for backlog metrics).
    pub(crate) fn push_dir(&mut self, dir: usize, msg: M) -> u64 {
        debug_assert!(
            self.scan == 0 && self.kept == 0,
            "push during an in-progress transmit pass would corrupt the active list"
        );
        let slot = if self.free != NIL {
            let s = self.free;
            self.free = self.next[s as usize];
            self.pool[s as usize] = msg;
            s
        } else {
            let s = crate::idx32(self.pool.len());
            self.pool.push(msg);
            self.next.push(NIL);
            s
        };
        self.next[slot as usize] = NIL;
        if self.tail[dir] == NIL {
            self.head[dir] = slot;
            self.active.push(crate::idx32(dir));
        } else {
            self.next[self.tail[dir] as usize] = slot;
        }
        self.tail[dir] = slot;
        debug_assert!(
            self.total_queued < u64::MAX,
            "in-flight message counter at capacity"
        );
        self.total_queued += 1;
        debug_assert!(
            self.backlog[dir] < u32::MAX,
            "per-edge backlog counter at capacity"
        );
        self.backlog[dir] += 1;
        u64::from(self.backlog[dir])
    }

    /// Number of messages currently queued across all edges.
    pub(crate) fn in_flight(&self) -> u64 {
        self.total_queued
    }

    /// Restores the empty state for a (possibly different) edge set while
    /// keeping the slot arena: every pool slot is cleared and rethreaded
    /// onto the free list, so a reset-and-reused queue set never
    /// re-allocates for traffic the previous run already paid for.
    /// (Oversized arenas are released first — see
    /// [`EdgeQueues::shrink_for`].)
    pub(crate) fn reset(&mut self, directed_edges: usize) {
        self.shrink_for(directed_edges);
        self.head.clear();
        self.head.resize(directed_edges, NIL);
        self.tail.clear();
        self.tail.resize(directed_edges, NIL);
        self.free = NIL;
        for i in (0..self.pool.len()).rev() {
            self.pool[i] = M::default();
            self.next[i] = self.free;
            self.free = crate::idx32(i);
        }
        self.active.clear();
        self.scan = 0;
        self.kept = 0;
        self.total_queued = 0;
        self.backlog.clear();
        self.backlog.resize(directed_edges, 0);
    }

    /// Releases the slot arena when it is oversized for the target edge
    /// set: a pool grown by an `n = 10⁶` run would otherwise pin its
    /// memory for the lifetime of a pooled engine that has moved on to
    /// `n = 10³` scenarios. "Oversized" means past the high-water ratio
    /// [`SHRINK_RATIO`]`× directed_edges` (with the [`SHRINK_FLOOR`]
    /// keeping small-graph churn tests allocation-stable); anything
    /// under that is kept, so same-scale reuse stays warm.
    fn shrink_for(&mut self, directed_edges: usize) {
        let limit = SHRINK_RATIO
            .saturating_mul(directed_edges)
            .max(SHRINK_FLOOR);
        if self.pool.capacity() > limit {
            self.pool = Vec::new();
            self.next = Vec::new();
            self.active = Vec::new();
        }
    }

    /// Slots the message arena can hold without re-allocating
    /// (diagnostic: pooling tests assert a reset keeps this).
    pub(crate) fn arena_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// High-water mark of simultaneously queued messages: the arena only
    /// grows a slot when the free list is empty and never shrinks
    /// mid-run, so its length *is* the peak occupancy since the last
    /// reset.
    pub(crate) fn peak_slots(&self) -> usize {
        self.pool.len()
    }

    /// Transmits one message per active directed edge, appending
    /// `(directed_index, msg)` entries to `out` in active-list order —
    /// at most `limit` per call. Returns `true` while edges of this
    /// round's pass remain, `false` once the pass is complete (the
    /// active list is then compacted for the next round).
    ///
    /// The engines drain each chunk into inboxes before pulling the
    /// next, so a round's peak scratch is `min(limit, active edges)`
    /// slots instead of one slot per active edge, and popped pool slots
    /// recycle within the round. Between completed passes the cursor
    /// state is zero; interleaving [`EdgeQueues::push_dir`] with an
    /// unfinished pass is a bug (debug-asserted there), which the
    /// engines respect by fully draining the backlog before offering
    /// fresh sends.
    pub(crate) fn transmit_chunk(&mut self, out: &mut DirBatch<M>, limit: usize) -> bool {
        let end = self.active.len().min(self.scan.saturating_add(limit));
        while self.scan < end {
            let dir = self.active[self.scan];
            self.scan += 1;
            let d = dir as usize;
            let slot = self.head[d];
            debug_assert!(slot != NIL, "active directed edge has a queued message");
            let msg = std::mem::take(&mut self.pool[slot as usize]);
            self.head[d] = self.next[slot as usize];
            if self.head[d] == NIL {
                self.tail[d] = NIL;
            } else {
                // Still backed up: stays in the active list.
                self.active[self.kept] = dir;
                self.kept += 1;
            }
            self.next[slot as usize] = self.free;
            self.free = slot;
            self.total_queued -= 1;
            self.backlog[d] -= 1;
            out.push(dir, msg);
        }
        if self.scan < self.active.len() {
            return true;
        }
        self.active.truncate(self.kept);
        self.scan = 0;
        self.kept = 0;
        false
    }

    /// Completes a whole transmit pass into `out` in one call (tests and
    /// single-batch callers).
    #[cfg(test)]
    pub(crate) fn transmit_into(&mut self, out: &mut DirBatch<M>) {
        let more = self.transmit_chunk(out, usize::MAX);
        debug_assert!(!more, "an unlimited chunk completes the pass");
    }
}

/// Reset keeps an arena only while its capacity is at most this many
/// times the target graph's directed-edge count (see
/// [`EdgeQueues::shrink_for`]).
pub(crate) const SHRINK_RATIO: usize = 8;

/// Arenas below this slot count are never shrunk: releasing kilobytes
/// buys nothing and would defeat the warm-reuse guarantee on small
/// graphs.
pub(crate) const SHRINK_FLOOR: usize = 1 << 13;

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::{gen, NodeId, Port};

    fn drained(seen: &mut DirBatch<u64>) -> Vec<(u32, u64)> {
        seen.drain().collect()
    }

    #[test]
    fn fifo_one_per_round() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let dir = g.directed_index(NodeId::new(0), Port::new(0));
        assert_eq!(q.push_dir(dir, 1), 1);
        assert_eq!(q.push_dir(dir, 2), 2);
        assert_eq!(q.push_dir(dir, 3), 3);
        assert_eq!(q.in_flight(), 3);

        let mut seen = DirBatch::new();
        q.transmit_into(&mut seen);
        assert_eq!(drained(&mut seen), vec![(dir as u32, 1)]);
        q.transmit_into(&mut seen);
        q.transmit_into(&mut seen);
        let msgs: Vec<u64> = drained(&mut seen).iter().map(|&(_, m)| m).collect();
        assert_eq!(msgs, vec![2, 3]);
        assert_eq!(q.in_flight(), 0);

        // Idle transmit is a no-op.
        q.transmit_into(&mut seen);
        assert!(seen.is_empty());
    }

    #[test]
    fn parallel_edges_transmit_in_the_same_round() {
        let g = gen::star(4).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let hub = NodeId::new(0);
        for port in 0..3 {
            q.push_dir(g.directed_index(hub, Port::new(port)), port as u64);
        }
        let mut seen = DirBatch::new();
        q.transmit_into(&mut seen);
        let mut msgs: Vec<u64> = drained(&mut seen).iter().map(|&(_, m)| m).collect();
        msgs.sort_unstable();
        assert_eq!(msgs, vec![0, 1, 2]);
    }

    #[test]
    fn directions_are_independent() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        q.push_dir(g.directed_index(NodeId::new(0), Port::new(0)), 10);
        q.push_dir(g.directed_index(NodeId::new(1), Port::new(0)), 20);
        let mut seen = DirBatch::new();
        q.transmit_into(&mut seen);
        let mut got: Vec<(usize, u64)> = drained(&mut seen)
            .iter()
            .map(|&(dir, m)| (g.directed_source(dir as usize).0.index(), m))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 20)]);
    }

    #[test]
    fn arena_recycles_slots() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let dir = g.directed_index(NodeId::new(0), Port::new(0));
        let mut out = DirBatch::new();
        let mut total = 0usize;
        for round in 0..100u64 {
            q.push_dir(dir, round);
            q.transmit_into(&mut out);
            total += drained(&mut out).len();
        }
        assert_eq!(total, 100);
        // Steady-state traffic of one in-flight message reuses one slot.
        assert_eq!(q.pool.len(), 1);
    }

    #[test]
    fn chunked_pass_matches_unbounded_pass() {
        // The bounded-arena pump must hand out exactly the unbounded
        // pass's sequence, at every chunk size, and leave the same
        // queue state behind.
        let g = gen::clique(6).unwrap();
        let dirs: Vec<usize> = (0..g.directed_edge_count()).collect();
        let fill = |q: &mut EdgeQueues<u64>| {
            for (k, &dir) in dirs.iter().enumerate() {
                // Mixed depths: some edges idle, some backed up.
                for copy in 0..(k % 4) {
                    q.push_dir(dir, (k * 10 + copy) as u64);
                }
            }
        };
        let mut oracle: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        fill(&mut oracle);
        let mut want = Vec::new();
        loop {
            let mut out = DirBatch::new();
            oracle.transmit_into(&mut out);
            if out.is_empty() {
                break;
            }
            want.push(drained(&mut out));
        }
        for chunk in [1usize, 2, 3, 7, usize::MAX] {
            let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
            fill(&mut q);
            let mut got = Vec::new();
            loop {
                let mut round = Vec::new();
                let mut scratch = DirBatch::new();
                loop {
                    scratch.clear();
                    let more = q.transmit_chunk(&mut scratch, chunk);
                    assert!(scratch.len() <= chunk, "scratch bounded by the chunk");
                    round.extend(scratch.drain());
                    if !more {
                        break;
                    }
                }
                if round.is_empty() {
                    break;
                }
                got.push(round);
            }
            assert_eq!(got, want, "chunk = {chunk}");
            assert_eq!(q.in_flight(), 0);
        }
    }

    #[test]
    fn reset_shrinks_oversized_arenas_only() {
        let g = gen::path(2).unwrap();
        let mut q: EdgeQueues<u64> = EdgeQueues::new(g.directed_edge_count());
        let dir = g.directed_index(NodeId::new(0), Port::new(0));
        // Small growth stays under the floor: reset keeps the arena.
        for i in 0..64 {
            q.push_dir(dir, i);
        }
        let small = q.arena_capacity();
        q.reset(g.directed_edge_count());
        assert_eq!(q.arena_capacity(), small, "under the floor: kept");
        // Blow past the floor and the ratio for this tiny graph: the
        // arena is released on reset.
        for i in 0..(SHRINK_FLOOR as u64 + 1) {
            q.push_dir(dir, i);
        }
        assert!(q.arena_capacity() > SHRINK_FLOOR);
        q.reset(g.directed_edge_count());
        assert_eq!(q.arena_capacity(), 0, "oversized arena released");
        // And the queue still works after the release.
        q.push_dir(dir, 7);
        let mut out = DirBatch::new();
        q.transmit_into(&mut out);
        assert_eq!(drained(&mut out), vec![(dir as u32, 7)]);
    }
}
