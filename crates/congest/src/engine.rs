//! The event-driven synchronous engine (the default executor).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use welle_graph::{Graph, NodeId, Port};

use crate::message::Payload;
use crate::metrics::{Metrics, NoopObserver, TransmitEvent, TransmitObserver};
use crate::protocol::{Context, Protocol, Signal};
use crate::queues::EdgeQueues;

/// Engine-wide configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Master seed; each node's private RNG is derived from it and the
    /// node index, so a run is a pure function of `(graph, protocols,
    /// seed)`.
    pub seed: u64,
    /// Per-message size cap in bits (the CONGEST `O(log n)` budget).
    /// `None` disables the check (LOCAL model).
    pub bandwidth_bits: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x5EED_0001,
            bandwidth_bits: None,
        }
    }
}

/// Why a [`Engine::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every node reported [`Protocol::is_done`] and no message is in
    /// flight.
    Done {
        /// Round at which the run stopped.
        round: u64,
    },
    /// No messages in flight, no pending wake-ups, but not all nodes are
    /// done — the system can never make progress again.
    Quiescent {
        /// Round at which the run stopped.
        round: u64,
    },
    /// The round limit was reached first.
    RoundLimit {
        /// Round at which the run stopped.
        round: u64,
    },
    /// The caller-provided stop predicate fired.
    Stopped {
        /// Round at which the run stopped.
        round: u64,
    },
}

impl RunOutcome {
    /// Round at which the run ended, whatever the reason.
    pub fn round(&self) -> u64 {
        match *self {
            RunOutcome::Done { round }
            | RunOutcome::Quiescent { round }
            | RunOutcome::RoundLimit { round }
            | RunOutcome::Stopped { round } => round,
        }
    }

    /// Whether the run ended with every node done.
    pub fn is_done(&self) -> bool {
        matches!(self, RunOutcome::Done { .. })
    }
}

/// Deterministic, event-driven executor of the synchronous CONGEST model.
///
/// Nodes run in lock-step rounds; each directed edge carries at most one
/// message per round (queued excess is delivered in later rounds — this is
/// how congestion manifests as time). Idle stretches (all nodes waiting on
/// a scheduled wake-up) are skipped in `O(1)`, so the paper's generous
/// fixed-`T` schedules cost nothing to simulate.
///
/// ```
/// use std::sync::Arc;
/// use welle_congest::{Engine, EngineConfig, testing::FloodMax};
/// use welle_graph::gen;
///
/// let g = Arc::new(gen::ring(8).unwrap());
/// let nodes = (0..8).map(|i| FloodMax::new(i as u64)).collect();
/// let mut engine = Engine::new(g, nodes, EngineConfig::default());
/// let outcome = engine.run(1_000);
/// assert!(outcome.is_done());
/// // Everyone learned the maximum id.
/// assert!(engine.nodes().iter().all(|n| n.best() == 7));
/// ```
#[derive(Debug)]
pub struct Engine<P: Protocol> {
    graph: Arc<Graph>,
    cfg: EngineConfig,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    queues: EdgeQueues<P::Msg>,
    inboxes: Vec<Vec<(Port, P::Msg)>>,
    inbox_active: Vec<u32>,
    inbox_flag: Vec<bool>,
    wakeups: BinaryHeap<Reverse<(u64, u32)>>,
    round: u64,
    started: bool,
    done_flags: Vec<bool>,
    done_count: usize,
    metrics: Metrics,
    scratch_sends: Vec<(Port, P::Msg)>,
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine over `graph` with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.n()`.
    pub fn new(graph: Arc<Graph>, nodes: Vec<P>, cfg: EngineConfig) -> Self {
        assert_eq!(
            nodes.len(),
            graph.n(),
            "need exactly one protocol instance per node"
        );
        let n = graph.n();
        let rngs = (0..n).map(|i| node_rng(cfg.seed, i)).collect();
        Engine {
            queues: EdgeQueues::new(graph.directed_edge_count()),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            inbox_active: Vec::new(),
            inbox_flag: vec![false; n],
            wakeups: BinaryHeap::new(),
            round: 0,
            started: false,
            done_flags: vec![false; n],
            done_count: 0,
            metrics: Metrics::new(n),
            scratch_sends: Vec::new(),
            graph,
            cfg,
            nodes,
            rngs,
        }
    }

    /// Creates an engine with protocols built per node index.
    pub fn from_fn(
        graph: Arc<Graph>,
        cfg: EngineConfig,
        mut make: impl FnMut(usize) -> P,
    ) -> Self {
        let nodes = (0..graph.n()).map(&mut make).collect();
        Engine::new(graph, nodes, cfg)
    }

    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The simulated network.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Traffic metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Messages queued on edges, not yet transmitted.
    pub fn in_flight(&self) -> usize {
        self.queues.in_flight()
    }

    /// Immutable view of the protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The protocol instance at node `i`.
    pub fn node(&self, i: usize) -> &P {
        &self.nodes[i]
    }

    /// Consumes the engine, returning the protocol instances.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs until [`RunOutcome::Done`], [`RunOutcome::Quiescent`], or the
    /// round limit.
    pub fn run(&mut self, round_limit: u64) -> RunOutcome {
        self.run_observed(round_limit, &mut NoopObserver)
    }

    /// Like [`Engine::run`] but notifying `obs` of every transmission.
    pub fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        self.run_until_observed(round_limit, obs, |_| false)
    }

    /// Runs until done/quiescent/limit or until `stop` returns true
    /// (checked after every simulated round).
    pub fn run_until(
        &mut self,
        round_limit: u64,
        stop: impl FnMut(&Engine<P>) -> bool,
    ) -> RunOutcome {
        self.run_until_observed(round_limit, &mut NoopObserver, stop)
    }

    /// The most general run loop: observer plus stop predicate.
    pub fn run_until_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
        mut stop: impl FnMut(&Engine<P>) -> bool,
    ) -> RunOutcome {
        loop {
            if self.started {
                let idle = self.inbox_active.is_empty() && self.queues.in_flight() == 0;
                if idle {
                    if self.done_count == self.nodes.len() {
                        return RunOutcome::Done { round: self.round };
                    }
                    match self.wakeups.peek() {
                        None => return RunOutcome::Quiescent { round: self.round },
                        Some(&Reverse((r, _))) => {
                            if r > self.round {
                                // Skip the idle stretch in O(1).
                                self.round = r;
                            }
                        }
                    }
                }
            }
            if self.round >= round_limit {
                return RunOutcome::RoundLimit { round: self.round };
            }
            self.step_observed(obs);
            if stop(self) {
                return RunOutcome::Stopped { round: self.round };
            }
        }
    }

    /// Simulates exactly one round (start-up on the first call).
    pub fn step(&mut self) {
        self.step_observed(&mut NoopObserver);
    }

    /// One round with an observer.
    pub fn step_observed(&mut self, obs: &mut dyn TransmitObserver) {
        let mut any_activity = false;
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                let mut empty = Vec::new();
                self.run_callback(i, &mut empty, CallKind::Start);
            }
            any_activity = true;
        } else {
            let mut active: Vec<u32> = std::mem::take(&mut self.inbox_active);
            while let Some(&Reverse((r, node))) = self.wakeups.peek() {
                if r <= self.round {
                    self.wakeups.pop();
                    active.push(node);
                } else {
                    break;
                }
            }
            active.sort_unstable();
            active.dedup();
            for &node in &active {
                let i = node as usize;
                self.inbox_flag[i] = false;
                let mut inbox = std::mem::take(&mut self.inboxes[i]);
                self.run_callback(i, &mut inbox, CallKind::Round);
                inbox.clear();
                self.inboxes[i] = inbox; // recycle the allocation
                any_activity = true;
            }
        }

        // Transmission phase: one message per active directed edge.
        let graph = &self.graph;
        let round = self.round;
        let metrics = &mut self.metrics;
        let inboxes = &mut self.inboxes;
        let inbox_flag = &mut self.inbox_flag;
        let inbox_active = &mut self.inbox_active;
        let mut transmitted = false;
        self.queues.transmit(graph, |u, p, msg| {
            let v = graph.neighbor(u, p);
            let q = graph.reverse_port(u, p);
            let e = graph.edge_id(u, p);
            let bits = msg.bit_size();
            metrics.messages += 1;
            metrics.bits += bits as u64;
            obs.on_transmit(&TransmitEvent {
                round,
                from: u,
                from_port: p,
                to: v,
                to_port: q,
                edge: e,
                bits,
            });
            inboxes[v.index()].push((q, msg));
            if !inbox_flag[v.index()] {
                inbox_flag[v.index()] = true;
                inbox_active.push(v.raw());
            }
            transmitted = true;
        });
        metrics.max_edge_backlog = metrics.max_edge_backlog.max(self.queues.max_backlog());
        if any_activity || transmitted {
            metrics.active_rounds += 1;
        }
        self.round += 1;
    }

    /// Broadcasts a control signal to every node (see
    /// [`Protocol::on_signal`]); resulting sends are transmitted starting
    /// with the next round.
    pub fn signal(&mut self, signal: Signal) {
        for i in 0..self.nodes.len() {
            let mut empty = Vec::new();
            self.run_callback(i, &mut empty, CallKind::Signal(signal));
        }
    }

    fn run_callback(&mut self, i: usize, inbox: &mut Vec<(Port, P::Msg)>, kind: CallKind) {
        let degree = self.graph.degree(NodeId::new(i));
        let n = self.graph.n();
        let mut sends = std::mem::take(&mut self.scratch_sends);
        let mut wake = None;
        {
            let mut ctx = Context {
                round: self.round,
                n,
                degree,
                rng: &mut self.rngs[i],
                sends: &mut sends,
                wake: &mut wake,
            };
            match kind {
                CallKind::Start => self.nodes[i].on_start(&mut ctx),
                CallKind::Round => self.nodes[i].on_round(&mut ctx, inbox),
                CallKind::Signal(s) => self.nodes[i].on_signal(&mut ctx, s),
            }
        }
        let u = NodeId::new(i);
        for (port, msg) in sends.drain(..) {
            if let Some(budget) = self.cfg.bandwidth_bits {
                let sz = msg.bit_size();
                assert!(
                    sz <= budget,
                    "protocol bug: message of {sz} bits exceeds the {budget}-bit CONGEST budget"
                );
            }
            self.metrics.sent_by_node[i] += 1;
            self.queues.push(&self.graph, u, port, msg);
        }
        self.scratch_sends = sends;
        if let Some(r) = wake {
            self.wakeups.push(Reverse((r.max(self.round + 1), i as u32)));
        }
        let done_now = self.nodes[i].is_done();
        if done_now != self.done_flags[i] {
            self.done_flags[i] = done_now;
            if done_now {
                self.done_count += 1;
            } else {
                self.done_count -= 1;
            }
        }
    }
}

#[derive(Clone, Copy)]
enum CallKind {
    Start,
    Round,
    Signal(Signal),
}

/// Derives a node's private RNG from the master seed (SplitMix64-style
/// stream separation).
pub(crate) fn node_rng(seed: u64, index: usize) -> StdRng {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RecordingObserver;
    use crate::testing::{Echo, FloodMax};
    use welle_graph::gen;

    fn flood_engine(n: usize, seed: u64) -> Engine<FloodMax> {
        let g = Arc::new(gen::ring(n).unwrap());
        let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
        Engine::new(
            g,
            nodes,
            EngineConfig {
                seed,
                bandwidth_bits: None,
            },
        )
    }

    #[test]
    fn flood_max_converges_on_ring() {
        let mut e = flood_engine(10, 1);
        let out = e.run(10_000);
        assert!(out.is_done(), "outcome: {out:?}");
        for node in e.nodes() {
            assert_eq!(node.best(), 9);
        }
        // Round count ~ diameter: information travels one hop per round.
        assert!(out.round() >= 5, "needs at least eccentricity rounds");
        assert!(out.round() <= 20, "{} rounds is too slow", out.round());
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let mut a = flood_engine(16, 42);
        let mut b = flood_engine(16, 42);
        a.run(10_000);
        b.run(10_000);
        assert_eq!(a.metrics().messages, b.metrics().messages);
        assert_eq!(a.metrics().bits, b.metrics().bits);
        assert_eq!(a.round(), b.round());
    }

    #[test]
    fn observer_sees_every_message() {
        let mut e = flood_engine(8, 3);
        let mut rec = RecordingObserver::default();
        e.run_observed(10_000, &mut rec);
        assert_eq!(rec.events.len() as u64, e.metrics().messages);
        // Events are ordered by round.
        for w in rec.events.windows(2) {
            assert!(w[0].round <= w[1].round);
        }
    }

    #[test]
    fn one_message_per_edge_per_round() {
        // A node that sends k messages through one port in a single round
        // must have them delivered over k successive rounds.
        struct Burst {
            sent: bool,
        }
        impl Protocol for Burst {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                if ctx.degree() == 1 && !self.sent {
                    self.sent = true;
                    for k in 0..5 {
                        ctx.send(Port::new(0), k);
                    }
                }
            }
            fn on_round(&mut self, _ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
                inbox.clear();
            }
        }
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = Engine::new(
            g,
            vec![Burst { sent: false }, Burst { sent: false }],
            EngineConfig::default(),
        );
        let mut rec = RecordingObserver::default();
        e.run_observed(100, &mut rec);
        // Both endpoints burst 5 messages; each direction carries exactly
        // one message per round: rounds 0..=4 have 2 transmissions each.
        assert_eq!(rec.events.len(), 10);
        for r in 0..5u64 {
            assert_eq!(rec.events.iter().filter(|e| e.round == r).count(), 2);
        }
        assert_eq!(e.metrics().max_edge_backlog, 5);
    }

    #[test]
    fn bandwidth_cap_panics_on_oversized_message() {
        struct Big;
        impl Protocol for Big {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.send(Port::new(0), 1);
            }
            fn on_round(&mut self, _: &mut Context<'_, u64>, i: &mut Vec<(Port, u64)>) {
                i.clear();
            }
        }
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = Engine::new(
            g,
            vec![Big, Big],
            EngineConfig {
                seed: 0,
                bandwidth_bits: Some(32), // u64 payload claims 64 bits
            },
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.run(10);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn echo_round_trip_and_quiescence() {
        let g = Arc::new(gen::star(5).unwrap());
        let nodes = (0..5).map(|i| Echo::new(i == 1)).collect();
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        let out = e.run(100);
        // Echo never reports done; the run ends quiescent.
        assert!(matches!(out, RunOutcome::Quiescent { .. }));
        // The initiator (leaf 1) pinged the hub and got a reply.
        assert_eq!(e.node(1).replies_received(), 1);
        assert_eq!(e.metrics().messages, 2);
    }

    #[test]
    fn wakeups_skip_idle_rounds_cheaply() {
        struct Sleeper {
            fired: bool,
        }
        impl Protocol for Sleeper {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.wake_at(1_000_000);
            }
            fn on_round(&mut self, ctx: &mut Context<'_, ()>, inbox: &mut Vec<(Port, ())>) {
                inbox.clear();
                if ctx.round() >= 1_000_000 {
                    self.fired = true;
                }
            }
            fn is_done(&self) -> bool {
                self.fired
            }
        }
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = Engine::new(
            g,
            vec![Sleeper { fired: false }, Sleeper { fired: false }],
            EngineConfig::default(),
        );
        let out = e.run(2_000_000);
        assert!(out.is_done());
        assert_eq!(out.round(), 1_000_001);
        // Only 2 active rounds (start + wake), despite the huge clock.
        assert!(e.metrics().active_rounds <= 3);
    }

    #[test]
    fn round_limit_respected() {
        let mut e = flood_engine(64, 5);
        let out = e.run(2);
        assert!(matches!(out, RunOutcome::RoundLimit { .. }));
        assert_eq!(e.round(), 2);
    }

    #[test]
    fn stop_predicate_fires() {
        let mut e = flood_engine(32, 7);
        let out = e.run_until(10_000, |eng| eng.metrics().messages >= 10);
        assert!(matches!(out, RunOutcome::Stopped { .. }));
        assert!(e.metrics().messages >= 10);
    }

    #[test]
    fn signal_reaches_every_node() {
        struct SignalCounter {
            seen: u64,
        }
        impl Protocol for SignalCounter {
            type Msg = ();
            fn on_round(&mut self, _: &mut Context<'_, ()>, i: &mut Vec<(Port, ())>) {
                i.clear();
            }
            fn on_signal(&mut self, _: &mut Context<'_, ()>, s: Signal) {
                self.seen = s;
            }
        }
        let g = Arc::new(gen::ring(4).unwrap());
        let mut e = Engine::new(
            g,
            (0..4).map(|_| SignalCounter { seen: 0 }).collect(),
            EngineConfig::default(),
        );
        e.step();
        e.signal(99);
        assert!(e.nodes().iter().all(|n| n.seen == 99));
    }

    #[test]
    fn node_rng_streams_differ() {
        use rand::RngExt;
        let mut a = node_rng(1, 0);
        let mut b = node_rng(1, 1);
        let va: u64 = a.random();
        let vb: u64 = b.random();
        assert_ne!(va, vb);
    }
}
