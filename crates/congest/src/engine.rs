//! The event-driven synchronous engine (the default executor).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use welle_graph::{Graph, NodeId, Port};

use crate::faults::{CompiledFaultPlan, CompiledFaults, FaultError, FaultPlan, FaultState};
use crate::latency::{LatencyState, TICKS_PER_ROUND};
use crate::message::Payload;
use crate::metrics::{Metrics, NoopObserver, TransmitEvent, TransmitObserver};
use crate::protocol::{Context, Protocol, Signal};
use crate::queues::{DirBatch, EdgeQueues, SHRINK_FLOOR, SHRINK_RATIO};
use crate::telemetry::{RoundFlow, SpanStage, TelemetryConfig, TelemetryReport, TelemetryState};

/// Engine-wide configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Master seed; each node's private RNG is derived from it and the
    /// node index, so a run is a pure function of `(graph, protocols,
    /// seed)`.
    pub seed: u64,
    /// Per-message size cap in bits (the CONGEST `O(log n)` budget).
    /// `None` disables the check (LOCAL model).
    pub bandwidth_bits: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x5EED_0001,
            bandwidth_bits: None,
        }
    }
}

/// Why a [`Engine::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every node reported [`Protocol::is_done`] and no message is in
    /// flight.
    Done {
        /// Round at which the run stopped.
        round: u64,
    },
    /// No messages in flight, no pending wake-ups, but not all nodes are
    /// done — the system can never make progress again.
    Quiescent {
        /// Round at which the run stopped.
        round: u64,
    },
    /// The round limit was reached first.
    RoundLimit {
        /// Round at which the run stopped.
        round: u64,
    },
    /// The caller-provided stop predicate fired.
    Stopped {
        /// Round at which the run stopped.
        round: u64,
    },
}

impl RunOutcome {
    /// Round at which the run ended, whatever the reason.
    pub fn round(&self) -> u64 {
        match *self {
            RunOutcome::Done { round }
            | RunOutcome::Quiescent { round }
            | RunOutcome::RoundLimit { round }
            | RunOutcome::Stopped { round } => round,
        }
    }

    /// Whether the run ended with every node done.
    pub fn is_done(&self) -> bool {
        matches!(self, RunOutcome::Done { .. })
    }
}

/// Deterministic, event-driven executor of the synchronous CONGEST model.
///
/// Nodes run in lock-step rounds; each directed edge carries at most one
/// message per round (queued excess is delivered in later rounds — this is
/// how congestion manifests as time). Idle stretches (all nodes waiting on
/// a scheduled wake-up) are skipped in `O(1)`, so the paper's generous
/// fixed-`T` schedules cost nothing to simulate.
///
/// ```
/// use std::sync::Arc;
/// use welle_congest::{Engine, EngineConfig, testing::FloodMax};
/// use welle_graph::gen;
///
/// let g = Arc::new(gen::ring(8).unwrap());
/// let nodes = (0..8).map(|i| FloodMax::new(i as u64)).collect();
/// let mut engine = Engine::new(g, nodes, EngineConfig::default());
/// let outcome = engine.run(1_000);
/// assert!(outcome.is_done());
/// // Everyone learned the maximum id.
/// assert!(engine.nodes().iter().all(|n| n.best() == 7));
/// ```
#[derive(Debug)]
pub struct Engine<P: Protocol> {
    pub(crate) graph: Arc<Graph>,
    pub(crate) cfg: EngineConfig,
    pub(crate) nodes: Vec<P>,
    pub(crate) rngs: Vec<StdRng>,
    pub(crate) queues: EdgeQueues<P::Msg>,
    pub(crate) inboxes: Vec<Vec<(Port, P::Msg)>>,
    pub(crate) inbox_active: Vec<u32>,
    pub(crate) inbox_flag: Vec<bool>,
    pub(crate) wakeups: BinaryHeap<Reverse<(u64, u32)>>,
    pub(crate) round: u64,
    pub(crate) started: bool,
    pub(crate) done_flags: Vec<bool>,
    pub(crate) done_count: usize,
    pub(crate) metrics: Metrics,
    /// Reused transmission scratch: each round the edge backlog is
    /// pumped through this batch in chunks of at most `chunk_limit`
    /// entries (see [`Engine::set_transmit_chunk`]), so its size is
    /// bounded by the chunk, not by the number of active edges.
    pub(crate) deliveries: DirBatch<P::Msg>,
    /// Sends of the current round, in send order, awaiting transmission.
    /// Uncongested messages go straight from here to the target inbox;
    /// only backlogged edges touch the arena in `queues`.
    pub(crate) pending: DirBatch<P::Msg>,
    /// Bound on the per-chunk transmission scratch (slots).
    pub(crate) chunk_limit: usize,
    /// Round at which each directed edge last carried a message; the
    /// CONGEST one-per-round discipline without per-edge clearing.
    pub(crate) last_carried: Vec<u64>,
    /// Installed adversarial network conditions, if any. `None` keeps
    /// the delivery loop on the exact fault-free fast path (the branch
    /// is taken once per round, not per message).
    pub(crate) faults: Option<Box<FaultState<P::Msg>>>,
    /// Installed telemetry, if any — the same single-branch-per-round
    /// design as `faults`: `None` keeps the hot path untouched.
    pub(crate) telemetry: Option<Box<TelemetryState>>,
    /// Maximum phase tag published (via [`Protocol::phase_tag`]) by the
    /// callbacks of the round in progress; drained into the telemetry
    /// sample at round end.
    pub(crate) phase_seen: Option<u8>,
    /// Monotone count of protocol callbacks executed (crashed nodes
    /// excluded); per-round deltas give a sample's `active_nodes`.
    pub(crate) activations: u64,
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine over `graph` with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.n()`.
    pub fn new(graph: Arc<Graph>, nodes: Vec<P>, cfg: EngineConfig) -> Self {
        assert_eq!(
            nodes.len(),
            graph.n(),
            "need exactly one protocol instance per node"
        );
        let n = graph.n();
        let rngs = (0..n).map(|i| node_rng(cfg.seed, i)).collect();
        Engine {
            queues: EdgeQueues::new(graph.directed_edge_count()),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            inbox_active: Vec::new(),
            inbox_flag: vec![false; n],
            wakeups: BinaryHeap::new(),
            round: 0,
            started: false,
            done_flags: vec![false; n],
            done_count: 0,
            metrics: Metrics::new(n),
            deliveries: DirBatch::new(),
            pending: DirBatch::new(),
            chunk_limit: TRANSMIT_CHUNK,
            last_carried: vec![u64::MAX; graph.directed_edge_count()],
            faults: None,
            telemetry: None,
            phase_seen: None,
            activations: 0,
            graph,
            cfg,
            nodes,
            rngs,
        }
    }

    /// Installs adversarial network conditions (see [`FaultPlan`]): the
    /// plan is compiled against this engine's graph and applied to every
    /// round simulated from now on. Install before the first
    /// `run`/`step` call to cover the whole execution. Note that crash
    /// and cut schedules are *predicates on the round number* ("silent
    /// from round `r` on"): installing mid-run applies any schedule
    /// whose round has already passed from the current round forward,
    /// while drop and delay decisions only affect crossings after
    /// installation.
    ///
    /// # Errors
    ///
    /// A [`FaultError`] when the plan does not fit the graph (bad
    /// probabilities, crash targets out of range, cuts naming missing
    /// edges). The engine is unchanged on error.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        let compiled = plan.compile_for(&self.graph)?;
        self.set_compiled_faults(&compiled);
        Ok(())
    }

    /// Installs an already-compiled fault plan in `O(1)` (see
    /// [`FaultPlan::compile_for`]; same semantics as
    /// [`Engine::set_fault_plan`]). The handle must have been compiled
    /// for this engine's graph.
    ///
    /// Replacing a plan mid-run discards any messages the *previous*
    /// plan still held in its delay buffer; they are counted in
    /// [`Metrics::dropped_messages`] rather than silently vanishing.
    pub fn set_compiled_faults(&mut self, plan: &CompiledFaultPlan) {
        if let Some(old) = self.faults.take() {
            self.metrics.dropped_messages += old.parked() as u64;
        }
        self.metrics.crashed_nodes = plan.0.scheduled_crashes;
        self.faults = Some(Box::new(FaultState::new(Arc::clone(&plan.0))));
    }

    /// The compiled fault schedule, for executors that share it with
    /// worker threads.
    pub(crate) fn compiled_faults(&self) -> Option<Arc<CompiledFaults>> {
        self.faults.as_ref().map(|f| Arc::clone(&f.compiled))
    }

    /// Installs the telemetry layer (see [`crate::TelemetryConfig`]):
    /// every *active* round simulated from now on appends one
    /// [`crate::RoundSample`] and updates the per-phase aggregates.
    /// Replaces (and discards) any previously installed telemetry.
    /// Install before the first `run`/`step` call to cover the whole
    /// execution; without this call the engine pays a single null check
    /// per round and allocates nothing.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.phase_seen = None;
        self.telemetry = Some(Box::new(TelemetryState::new(cfg)));
    }

    /// Removes the telemetry layer and returns everything it recorded,
    /// or `None` when [`Engine::set_telemetry`] was never called (or the
    /// report was already taken).
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        self.telemetry.take().map(|t| t.into_report())
    }

    /// Creates an engine with protocols built per node index.
    pub fn from_fn(
        graph: Arc<Graph>,
        cfg: EngineConfig,
        mut make: impl FnMut(usize) -> P,
    ) -> Self {
        let nodes = (0..graph.n()).map(&mut make).collect();
        Engine::new(graph, nodes, cfg)
    }

    /// Resets this engine in place to exactly the state
    /// [`Engine::from_fn`]`(graph, cfg, make)` would construct, but
    /// reusing every arena the previous run grew — node and RNG vectors,
    /// per-node inboxes, the edge-queue slot pool, delivery and pending
    /// batches. The graph may differ from the previous run's (vectors
    /// resize as needed), which is what lets a batch scheduler keep one
    /// engine per worker across thousands of trials.
    ///
    /// Reuse also *shrinks*: a message arena whose capacity exceeds a
    /// high-water ratio of the target graph's directed-edge count
    /// (8× today, with an 8192-slot floor under which nothing is ever
    /// shed) is released rather than pinned for the pool's lifetime, so
    /// resetting from an `n = 10⁶` scenario to an `n = 10³` one returns
    /// the large buffers to the allocator while same-scale reuse stays
    /// allocation-free.
    ///
    /// A reset engine is bit-identical to a fresh one: the only
    /// difference is where its buffers' memory came from.
    pub fn reset_with(
        &mut self,
        graph: Arc<Graph>,
        cfg: EngineConfig,
        mut make: impl FnMut(usize) -> P,
    ) {
        let n = graph.n();
        let dcount = graph.directed_edge_count();
        self.nodes.clear();
        self.nodes.extend((0..n).map(&mut make));
        self.rngs.clear();
        self.rngs.extend((0..n).map(|i| node_rng(cfg.seed, i)));
        self.queues.reset(dcount);
        for inbox in self.inboxes.iter_mut() {
            inbox.clear(); // keep each node's inbox allocation
        }
        self.inboxes.resize_with(n, Vec::new);
        self.inbox_active.clear();
        self.inbox_flag.clear();
        self.inbox_flag.resize(n, false);
        self.wakeups.clear();
        self.round = 0;
        self.started = false;
        self.done_flags.clear();
        self.done_flags.resize(n, false);
        self.done_count = 0;
        self.metrics.reset(n);
        let limit = SHRINK_RATIO.saturating_mul(dcount).max(SHRINK_FLOOR);
        if self.deliveries.capacity() > limit {
            self.deliveries.release();
        } else {
            self.deliveries.clear();
        }
        if self.pending.capacity() > limit {
            self.pending.release();
        } else {
            self.pending.clear();
        }
        self.chunk_limit = TRANSMIT_CHUNK;
        self.last_carried.clear();
        self.last_carried.resize(dcount, u64::MAX);
        self.faults = None;
        self.telemetry = None;
        self.phase_seen = None;
        self.activations = 0;
        self.graph = graph;
        self.cfg = cfg;
    }

    /// Total slots the engine's reusable message buffers can hold
    /// without re-allocating: the edge-queue arena plus the delivery and
    /// pending batches. Diagnostic only — pooling tests assert that
    /// [`Engine::reset_with`] preserves it.
    pub fn arena_capacity(&self) -> usize {
        self.queues.arena_capacity() + self.deliveries.capacity() + self.pending.capacity()
    }

    /// High-water mark of simultaneously queued messages since the last
    /// reset: the edge-queue arena recycles vacated slots and only grows
    /// one when none is free, so its occupied length is the run's peak
    /// backlog population. The memory-budget fences in `tests/large_n.rs`
    /// assert big-`n` elections stay under a stated slot count.
    pub fn peak_arena_slots(&self) -> u64 {
        self.queues.peak_slots() as u64
    }

    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The simulated network.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Traffic metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Messages queued for transmission (current-round sends, edge
    /// backlog, and fault-delayed messages), not yet delivered. `u64`
    /// deliberately: at `n = 10⁶` the in-flight population exceeds what
    /// a 32-bit host's `usize` can count.
    pub fn in_flight(&self) -> u64 {
        (self.pending.len() as u64)
            .saturating_add(self.queues.in_flight())
            .saturating_add(self.faults.as_ref().map_or(0, |f| f.parked() as u64))
    }

    /// Caps the transmission scratch: each round's backlog is pumped
    /// through a recycled batch of at most `limit` slots (clamped to
    /// ≥ 1) instead of materializing one entry per active edge. Every
    /// setting yields bit-identical executions — the bounded-arena
    /// differential suite asserts as much — so this knob only trades
    /// peak scratch memory against per-chunk loop overhead. Default:
    /// 4096 slots.
    pub fn set_transmit_chunk(&mut self, limit: usize) {
        self.chunk_limit = limit.max(1);
    }

    /// Immutable view of the protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The protocol instance at node `i`.
    pub fn node(&self, i: usize) -> &P {
        &self.nodes[i]
    }

    /// Consumes the engine, returning the protocol instances.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs until [`RunOutcome::Done`], [`RunOutcome::Quiescent`], or the
    /// round limit.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use welle_congest::{Engine, EngineConfig, testing::FloodMax};
    /// use welle_graph::gen;
    ///
    /// // A minimal election: flood the maximum id on a small expander.
    /// let g = Arc::new(gen::hypercube(3).unwrap());
    /// let nodes = (0..g.n()).map(|i| FloodMax::new(i as u64)).collect();
    /// let mut engine = Engine::new(Arc::clone(&g), nodes, EngineConfig::default());
    /// let outcome = engine.run(1_000);
    /// assert!(outcome.is_done());
    /// // Exactly one node still believes its own id is the largest.
    /// assert_eq!(engine.nodes().iter().filter(|n| n.is_leader()).count(), 1);
    /// ```
    pub fn run(&mut self, round_limit: u64) -> RunOutcome {
        // Concrete `NoopObserver` so the per-message observer call (and
        // the `TransmitEvent` it would be fed) compiles away entirely.
        self.run_core(round_limit, &mut NoopObserver, |_| false)
    }

    /// Like [`Engine::run`] but notifying `obs` of every transmission.
    pub fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        self.run_core(round_limit, obs, |_| false)
    }

    /// Runs until done/quiescent/limit or until `stop` returns true
    /// (checked after every simulated round).
    pub fn run_until(
        &mut self,
        round_limit: u64,
        stop: impl FnMut(&Engine<P>) -> bool,
    ) -> RunOutcome {
        self.run_core(round_limit, &mut NoopObserver, stop)
    }

    /// The most general run loop: observer plus stop predicate.
    pub fn run_until_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
        stop: impl FnMut(&Engine<P>) -> bool,
    ) -> RunOutcome {
        self.run_core(round_limit, obs, stop)
    }

    /// Monomorphic run loop; `O = NoopObserver` specializes to zero
    /// observer overhead, `O = dyn TransmitObserver` serves the public
    /// observed entry points.
    pub(crate) fn run_core<O: TransmitObserver + ?Sized>(
        &mut self,
        round_limit: u64,
        obs: &mut O,
        mut stop: impl FnMut(&Engine<P>) -> bool,
    ) -> RunOutcome {
        loop {
            if self.started {
                let drained = self.inbox_active.is_empty()
                    && self.pending.is_empty()
                    && self.queues.in_flight() == 0;
                let parked = self.faults.as_ref().map_or(0, |f| f.parked());
                if drained && parked == 0 {
                    if self.done_count == self.nodes.len() {
                        return RunOutcome::Done { round: self.round };
                    }
                    match self.wakeups.peek() {
                        None => return RunOutcome::Quiescent { round: self.round },
                        Some(&Reverse((r, _))) => {
                            if r > self.round {
                                // Skip the idle stretch in O(1).
                                self.round = r;
                            }
                        }
                    }
                } else if drained {
                    // Only fault-parked messages remain in flight: the
                    // same O(1) skip, to the earlier of the next due
                    // release and the next wake-up.
                    let due = self
                        .faults
                        .as_ref()
                        .and_then(|f| f.next_due())
                        // welle-lint: allow(no-lib-unwrap) — invariant: the surrounding `!drained` branch established parked > 0, and every parked message carries a due round
                        .expect("parked > 0 implies a next due round");
                    let target = match self.wakeups.peek() {
                        Some(&Reverse((r, _))) => due.min(r),
                        None => due,
                    };
                    if target > self.round {
                        self.round = target;
                    }
                }
            }
            if self.round >= round_limit {
                return RunOutcome::RoundLimit { round: self.round };
            }
            self.step_core(obs);
            if stop(self) {
                return RunOutcome::Stopped { round: self.round };
            }
        }
    }

    /// Simulates exactly one round (start-up on the first call).
    pub fn step(&mut self) {
        self.step_core(&mut NoopObserver);
    }

    /// One round with an observer.
    pub fn step_observed(&mut self, obs: &mut dyn TransmitObserver) {
        self.step_core(obs);
    }

    /// Monomorphic single-round step (see [`Engine::run_core`] for why).
    fn step_core<O: TransmitObserver + ?Sized>(&mut self, obs: &mut O) {
        // Telemetry mirrors the fault layer: taken once per round, so a
        // run without it pays exactly one null check and nothing else.
        let mut tel = self.telemetry.take();
        let t_round = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::Round));

        let t_cb = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::Callbacks));
        let acts_before = self.activations;
        let any_activity = self.protocol_phase();
        let callbacks_run = self.activations - acts_before;
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Callbacks, t_cb, callbacks_run);
        }

        // Transmission phase: one message per active directed edge.
        // Backlogged edges deliver their queue head first (pumped in
        // bounded chunks through the recycled scratch); then the
        // round's fresh sends either deliver directly (edge idle this
        // round — the common, allocation-free case) or join the backlog.
        let mut scratch = std::mem::take(&mut self.deliveries);
        let mut pending = std::mem::take(&mut self.pending);
        let mut faults = self.faults.take();
        let chunk = self.chunk_limit;
        let transmitted = self.queues.in_flight() > 0
            || !pending.is_empty()
            || faults.as_ref().is_some_and(|f| f.due_now(self.round));
        let t_deliver = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::Deliver));
        let flow;
        {
            let mut tx = Transmitter::new(
                &self.graph,
                &mut self.queues,
                &mut self.last_carried,
                self.round,
            );
            let inboxes = &mut self.inboxes;
            let inbox_flag = &mut self.inbox_flag;
            let inbox_active = &mut self.inbox_active;
            let mut sink = |v: NodeId, q: Port, msg: P::Msg| {
                inboxes[v.index()].push((q, msg));
                if !inbox_flag[v.index()] {
                    inbox_flag[v.index()] = true;
                    inbox_active.push(v.raw());
                }
            };
            match faults.as_deref_mut() {
                // Fault-free fast path: decided once per round, so the
                // per-message loop stays exactly the unfaulted hot path.
                None => {
                    tx.pump_backlog(&mut scratch, chunk, obs, &mut sink);
                    for (dir, msg) in pending.drain() {
                        tx.offer(dir as usize, msg, obs, &mut sink);
                    }
                }
                Some(fs) => {
                    let t_ff = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::FaultFilter));
                    tx.release_due(fs, obs, &mut sink);
                    tx.pump_backlog_faulty(fs, &mut scratch, chunk, obs, &mut sink);
                    for (dir, msg) in pending.drain() {
                        tx.offer_faulty(fs, dir as usize, msg, obs, &mut sink);
                    }
                    if let Some(t) = tel.as_deref_mut() {
                        // Events: every crossing the filter inspected.
                        t.end(SpanStage::FaultFilter, t_ff, tx.delivered_msgs + tx.dropped_msgs);
                    }
                }
            }
            flow = tx.finish(&mut self.metrics);
        }
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Deliver, t_deliver, flow.messages);
        }
        self.faults = faults;
        self.deliveries = scratch;
        self.pending = pending;
        if any_activity || transmitted {
            self.metrics.active_rounds += 1;
            if let Some(t) = tel.as_deref_mut() {
                let parked = self.faults.as_ref().map_or(0, |f| f.parked()) as u64;
                let tick = self.round.saturating_add(1).saturating_mul(TICKS_PER_ROUND);
                t.end_round(
                    self.round,
                    self.phase_seen.take(),
                    callbacks_run,
                    &flow,
                    parked,
                    tick,
                );
            }
        }
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Round, t_round, callbacks_run + flow.messages);
        }
        self.telemetry = tel;
        self.round += 1;
    }

    /// The protocol half of a round — start-up on the first call, then
    /// inbox/wake-up callbacks in deterministic node order. Returns
    /// whether any callback ran. Shared verbatim with the async
    /// executor, which pairs it with its own transmission phase (this is
    /// what keeps the two engines event-for-event identical on
    /// zero-latency models).
    pub(crate) fn protocol_phase(&mut self) -> bool {
        let mut any_activity = false;
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                let mut empty = Vec::new();
                self.run_callback(i, &mut empty, CallKind::Start);
            }
            any_activity = true;
        } else {
            let mut active: Vec<u32> = std::mem::take(&mut self.inbox_active);
            // `inbox_flag` doubles as the membership set: delivery already
            // guards `inbox_active` with it, so guarding due wake-ups the
            // same way keeps `active` duplicate-free without a dedup pass.
            while let Some(&Reverse((r, node))) = self.wakeups.peek() {
                if r <= self.round {
                    self.wakeups.pop();
                    if !self.inbox_flag[node as usize] {
                        self.inbox_flag[node as usize] = true;
                        active.push(node);
                    }
                } else {
                    break;
                }
            }
            // Deterministic node order: a linear flag scan when dense
            // (cheaper and cache-friendly), a sort when sparse.
            if active.len() >= self.nodes.len() / 8 {
                active.clear();
                for (i, flag) in self.inbox_flag.iter().enumerate() {
                    if *flag {
                        active.push(crate::idx32(i));
                    }
                }
            } else {
                active.sort_unstable();
            }
            for &node in &active {
                let i = node as usize;
                self.inbox_flag[i] = false;
                let mut inbox = std::mem::take(&mut self.inboxes[i]);
                self.run_callback(i, &mut inbox, CallKind::Round);
                inbox.clear();
                self.inboxes[i] = inbox; // recycle the allocation
                any_activity = true;
            }
        }
        any_activity
    }

    /// Broadcasts a control signal to every node (see
    /// [`Protocol::on_signal`]); resulting sends are transmitted starting
    /// with the next round.
    pub fn signal(&mut self, signal: Signal) {
        for i in 0..self.nodes.len() {
            let mut empty = Vec::new();
            self.run_callback(i, &mut empty, CallKind::Signal(signal));
        }
    }

    fn run_callback(&mut self, i: usize, inbox: &mut Vec<(Port, P::Msg)>, kind: CallKind) {
        if let Some(f) = &self.faults {
            if f.compiled.is_crashed(i, self.round) {
                // Crash-stop: from its crash round on, the node executes
                // nothing — no callbacks, no sends, no wake-ups. Its
                // inbox (cleared by the caller) is lost with it.
                return;
            }
        }
        self.activations += 1;
        let u = NodeId::new(i);
        let degree = self.graph.degree(u);
        let n = self.graph.n();
        let mut wake = None;
        let sent;
        {
            // Sends go straight into `pending` as `(directed_index, msg)`
            // — `Context::send` resolves the index from `dir_base`, so no
            // per-message recomputation or intermediate buffer.
            let mut ctx = Context {
                round: self.round,
                n,
                degree,
                dir_base: crate::idx32(self.graph.directed_base(u)),
                budget: self.cfg.bandwidth_bits,
                sent: 0,
                rng: &mut self.rngs[i],
                sends: &mut self.pending,
                wake: &mut wake,
            };
            match kind {
                CallKind::Start => self.nodes[i].on_start(&mut ctx),
                CallKind::Round => self.nodes[i].on_round(&mut ctx, inbox),
                CallKind::Signal(s) => self.nodes[i].on_signal(&mut ctx, s),
            }
            sent = ctx.sent;
        }
        if sent > 0 {
            self.metrics.sent_by_node[i] += sent as u64;
        }
        if let Some(r) = wake {
            self.wakeups.push(Reverse((r.max(self.round + 1), crate::idx32(i))));
        }
        let done_now = self.nodes[i].is_done();
        if done_now != self.done_flags[i] {
            self.done_flags[i] = done_now;
            if done_now {
                self.done_count += 1;
            } else {
                self.done_count -= 1;
            }
        }
        // The phase-observer pull (see `Protocol::phase_tag`): merge by
        // maximum so the per-round reduction is order-free.
        if let Some(tag) = self.nodes[i].phase_tag() {
            self.phase_seen = Some(match self.phase_seen {
                Some(cur) => cur.max(tag),
                None => tag,
            });
        }
    }
}

#[derive(Clone, Copy)]
enum CallKind {
    Start,
    Round,
    Signal(Signal),
}

/// Default bound on the per-chunk transmission scratch, in slots (see
/// [`Engine::set_transmit_chunk`]): large enough that the chunk-loop
/// bookkeeping amortizes to nothing, small enough that a round with two
/// million active edges flows through kilobytes of scratch.
pub(crate) const TRANSMIT_CHUNK: usize = 4096;

/// The per-message transmission discipline shared by both executors:
/// the CONGEST one-message-per-directed-edge rule (`last_carried` round
/// stamps), the backlog arena, and per-message metrics/observer events.
/// Executor-specific delivery — which inbox structure receives the
/// message — is injected as the `sink` argument of each call, so the
/// engines cannot drift apart on the discipline itself (their
/// executions must stay bit-identical).
pub(crate) struct Transmitter<'a, M> {
    graph: &'a Graph,
    queues: &'a mut EdgeQueues<M>,
    last_carried: &'a mut [u64],
    round: u64,
    delivered_msgs: u64,
    delivered_bits: u64,
    dropped_msgs: u64,
    max_backlog_seen: u64,
}

impl<'a, M: Payload> Transmitter<'a, M> {
    pub(crate) fn new(
        graph: &'a Graph,
        queues: &'a mut EdgeQueues<M>,
        last_carried: &'a mut [u64],
        round: u64,
    ) -> Self {
        Transmitter {
            graph,
            queues,
            last_carried,
            round,
            delivered_msgs: 0,
            delivered_bits: 0,
            dropped_msgs: 0,
            max_backlog_seen: 0,
        }
    }

    /// Pumps this round's whole backlog — one head per active directed
    /// edge, in active-list order — through `scratch` in chunks of at
    /// most `limit` entries, delivering each chunk before popping the
    /// next. Pool slots recycle chunk by chunk, so the round's peak
    /// scratch is `min(limit, active edges)` regardless of congestion.
    pub(crate) fn pump_backlog<O: TransmitObserver + ?Sized>(
        &mut self,
        scratch: &mut DirBatch<M>,
        limit: usize,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        loop {
            scratch.clear();
            let more = self.queues.transmit_chunk(scratch, limit);
            for (dir, msg) in scratch.drain() {
                self.deliver_head(dir as usize, msg, obs, sink);
            }
            if !more {
                break;
            }
        }
    }

    /// [`Transmitter::pump_backlog`] with the fault layer applied at
    /// each crossing.
    pub(crate) fn pump_backlog_faulty<O: TransmitObserver + ?Sized>(
        &mut self,
        fs: &mut FaultState<M>,
        scratch: &mut DirBatch<M>,
        limit: usize,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        loop {
            scratch.clear();
            let more = self.queues.transmit_chunk(scratch, limit);
            for (dir, msg) in scratch.drain() {
                self.deliver_head_faulty(fs, dir as usize, msg, obs, sink);
            }
            if !more {
                break;
            }
        }
    }

    /// [`Transmitter::pump_backlog`] with the latency (and optional
    /// fault) layer applied at each crossing.
    pub(crate) fn pump_backlog_latent<O: TransmitObserver + ?Sized>(
        &mut self,
        lat: &mut LatencyState<M>,
        faults: Option<&CompiledFaults>,
        scratch: &mut DirBatch<M>,
        limit: usize,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        loop {
            scratch.clear();
            let more = self.queues.transmit_chunk(scratch, limit);
            for (dir, msg) in scratch.drain() {
                self.deliver_head_latent(lat, faults, dir as usize, msg, obs, sink);
            }
            if !more {
                break;
            }
        }
    }

    /// Delivers the head of a backlogged edge — it is entitled to this
    /// round by construction (one pop per active edge).
    #[inline]
    pub(crate) fn deliver_head<O: TransmitObserver + ?Sized>(
        &mut self,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        self.last_carried[dir] = self.round;
        self.deliver(dir, msg, obs, sink);
    }

    /// Offers a fresh send: delivers directly when the edge is idle
    /// this round, otherwise joins the backlog (FIFO).
    #[inline]
    pub(crate) fn offer<O: TransmitObserver + ?Sized>(
        &mut self,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        if self.last_carried[dir] == self.round {
            let len = self.queues.push_dir(dir, msg);
            // `+ 1` counts the message that already crossed this round.
            self.max_backlog_seen = self.max_backlog_seen.max(len + 1);
        } else {
            self.last_carried[dir] = self.round;
            self.deliver(dir, msg, obs, sink);
        }
    }

    /// Releases every fault-delayed message due this round, in
    /// `(due round, crossing order)` order — identical on both
    /// executors because the heap itself lives in the shared engine
    /// state. Arrivals at nodes that crashed in the meantime are
    /// discarded (the destination is gone).
    pub(crate) fn release_due<O: TransmitObserver + ?Sized>(
        &mut self,
        fs: &mut FaultState<M>,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        while fs.due_now(self.round) {
            // welle-lint: allow(no-lib-unwrap) — invariant: due_now() just peeked a head element at or before this round
            let d = fs.delayed.pop().expect("due_now implies nonempty");
            let dst = self.graph.directed_info(d.dir as usize).dst;
            if fs.compiled.is_crashed(dst.index(), self.round) {
                self.dropped_msgs += 1;
                continue;
            }
            self.deliver(d.dir as usize, d.msg, obs, sink);
        }
    }

    /// [`Transmitter::deliver_head`] with the fault layer applied at the
    /// crossing.
    #[inline]
    pub(crate) fn deliver_head_faulty<O: TransmitObserver + ?Sized>(
        &mut self,
        fs: &mut FaultState<M>,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        self.last_carried[dir] = self.round;
        self.transit(fs, dir, msg, obs, sink);
    }

    /// [`Transmitter::offer`] with the fault layer applied at the
    /// crossing. Joining the backlog defers the fault decision to the
    /// round the message actually crosses.
    #[inline]
    pub(crate) fn offer_faulty<O: TransmitObserver + ?Sized>(
        &mut self,
        fs: &mut FaultState<M>,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        if self.last_carried[dir] == self.round {
            let len = self.queues.push_dir(dir, msg);
            self.max_backlog_seen = self.max_backlog_seen.max(len + 1);
        } else {
            self.last_carried[dir] = self.round;
            self.transit(fs, dir, msg, obs, sink);
        }
    }

    /// One message crossing directed edge `dir` this round, under
    /// faults: suppressed if the edge is cut or either endpoint has
    /// crashed, dropped i.i.d. per the plan's rate, parked if the edge
    /// is slow, delivered otherwise. All decisions are pure functions of
    /// the compiled plan and `(round, dir)`, so executors agree.
    fn transit<O: TransmitObserver + ?Sized>(
        &mut self,
        fs: &mut FaultState<M>,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        let info = self.graph.directed_info(dir);
        let c = &fs.compiled;
        if c.edge_cut(info.edge.index(), self.round)
            || c.is_crashed(info.src.index(), self.round)
            || c.is_crashed(info.dst.index(), self.round)
            || c.dropped_in_transit(self.round, dir)
        {
            self.dropped_msgs += 1;
            return;
        }
        let delay = c.edge_delay(info.edge.index());
        if delay == 0 {
            self.deliver(dir, msg, obs, sink);
        } else {
            fs.park(self.round + delay as u64, crate::idx32(dir), msg);
        }
    }

    /// Releases every latency-parked message due by this round's
    /// boundary, in `(due tick, park order)` order. Arrivals at nodes
    /// that crashed in the meantime are discarded, exactly as in
    /// [`Transmitter::release_due`].
    pub(crate) fn release_latent<O: TransmitObserver + ?Sized>(
        &mut self,
        lat: &mut LatencyState<M>,
        faults: Option<&CompiledFaults>,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        let horizon = self
            .round
            .saturating_add(1)
            .saturating_mul(TICKS_PER_ROUND);
        while let Some(d) = lat.pop_due(horizon) {
            if let Some(c) = faults {
                let dst = self.graph.directed_info(d.dir as usize).dst;
                if c.is_crashed(dst.index(), self.round) {
                    self.dropped_msgs += 1;
                    continue;
                }
            }
            lat.note_delivered(d.due);
            self.deliver(d.dir as usize, d.msg, obs, sink);
        }
    }

    /// [`Transmitter::deliver_head`] with the latency (and optional
    /// fault) layer applied at the crossing.
    #[inline]
    pub(crate) fn deliver_head_latent<O: TransmitObserver + ?Sized>(
        &mut self,
        lat: &mut LatencyState<M>,
        faults: Option<&CompiledFaults>,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        self.last_carried[dir] = self.round;
        self.transit_latent(lat, faults, dir, msg, obs, sink);
    }

    /// [`Transmitter::offer`] with the latency (and optional fault)
    /// layer applied at the crossing. Joining the backlog defers both
    /// decisions to the round the message actually crosses.
    #[inline]
    pub(crate) fn offer_latent<O: TransmitObserver + ?Sized>(
        &mut self,
        lat: &mut LatencyState<M>,
        faults: Option<&CompiledFaults>,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        if self.last_carried[dir] == self.round {
            let len = self.queues.push_dir(dir, msg);
            self.max_backlog_seen = self.max_backlog_seen.max(len + 1);
        } else {
            self.last_carried[dir] = self.round;
            self.transit_latent(lat, faults, dir, msg, obs, sink);
        }
    }

    /// One message crossing directed edge `dir` this round, under a
    /// latency model and (optionally) faults. Fault decisions — cuts,
    /// crashes, i.i.d. drops — are exactly those of
    /// [`Transmitter::transit`]; the fault layer's per-edge delay folds
    /// into the due tick instead of using a second heap. A delivery due
    /// at or before the next round boundary happens now — with the zero
    /// model that is *every* unfaulted delivery, which keeps this path
    /// event-for-event identical to the round engine — and later ones
    /// park on the tick heap.
    fn transit_latent<O: TransmitObserver + ?Sized>(
        &mut self,
        lat: &mut LatencyState<M>,
        faults: Option<&CompiledFaults>,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        let mut fault_delay = 0u32;
        if let Some(c) = faults {
            let info = self.graph.directed_info(dir);
            if c.edge_cut(info.edge.index(), self.round)
                || c.is_crashed(info.src.index(), self.round)
                || c.is_crashed(info.dst.index(), self.round)
                || c.dropped_in_transit(self.round, dir)
            {
                self.dropped_msgs += 1;
                return;
            }
            fault_delay = c.edge_delay(info.edge.index());
        }
        let due = lat.crossing_due(self.round, crate::idx32(dir), fault_delay);
        let horizon = self
            .round
            .saturating_add(1)
            .saturating_mul(TICKS_PER_ROUND);
        if due <= horizon {
            lat.note_delivered(due);
            self.deliver(dir, msg, obs, sink);
        } else {
            lat.park(due, crate::idx32(dir), msg);
        }
    }

    #[inline]
    fn deliver<O: TransmitObserver + ?Sized>(
        &mut self,
        dir: usize,
        msg: M,
        obs: &mut O,
        sink: &mut impl FnMut(NodeId, Port, M),
    ) {
        let info = self.graph.directed_info(dir);
        let bits = msg.bit_size();
        self.delivered_msgs += 1;
        self.delivered_bits += bits as u64;
        obs.on_transmit(&TransmitEvent {
            round: self.round,
            from: info.src,
            from_port: info.src_port,
            to: info.dst,
            to_port: info.dst_port,
            edge: info.edge,
            bits,
        });
        sink(info.dst, info.dst_port, msg);
    }

    /// Messages delivered so far this round (for span event counts).
    pub(crate) fn delivered_so_far(&self) -> u64 {
        self.delivered_msgs
    }

    /// Folds the accumulated counters into `metrics` and returns them as
    /// this round's flow, for the telemetry layer (ignored when
    /// telemetry is off).
    pub(crate) fn finish(self, metrics: &mut Metrics) -> RoundFlow {
        metrics.messages += self.delivered_msgs;
        metrics.bits += self.delivered_bits;
        metrics.dropped_messages += self.dropped_msgs;
        metrics.max_edge_backlog = metrics.max_edge_backlog.max(self.max_backlog_seen);
        RoundFlow {
            messages: self.delivered_msgs,
            bits: self.delivered_bits,
            dropped: self.dropped_msgs,
            max_backlog: self.max_backlog_seen,
        }
    }
}

/// Derives a node's private RNG from the master seed (SplitMix64-style
/// stream separation).
pub(crate) fn node_rng(seed: u64, index: usize) -> StdRng {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RecordingObserver;
    use crate::testing::{Echo, FloodMax};
    use welle_graph::gen;

    fn flood_engine(n: usize, seed: u64) -> Engine<FloodMax> {
        let g = Arc::new(gen::ring(n).unwrap());
        let nodes = (0..n).map(|i| FloodMax::new(i as u64)).collect();
        Engine::new(
            g,
            nodes,
            EngineConfig {
                seed,
                bandwidth_bits: None,
            },
        )
    }

    #[test]
    fn flood_max_converges_on_ring() {
        let mut e = flood_engine(10, 1);
        let out = e.run(10_000);
        assert!(out.is_done(), "outcome: {out:?}");
        for node in e.nodes() {
            assert_eq!(node.best(), 9);
        }
        // Round count ~ diameter: information travels one hop per round.
        assert!(out.round() >= 5, "needs at least eccentricity rounds");
        assert!(out.round() <= 20, "{} rounds is too slow", out.round());
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let mut a = flood_engine(16, 42);
        let mut b = flood_engine(16, 42);
        a.run(10_000);
        b.run(10_000);
        assert_eq!(a.metrics().messages, b.metrics().messages);
        assert_eq!(a.metrics().bits, b.metrics().bits);
        assert_eq!(a.round(), b.round());
    }

    #[test]
    fn observer_sees_every_message() {
        let mut e = flood_engine(8, 3);
        let mut rec = RecordingObserver::default();
        e.run_observed(10_000, &mut rec);
        assert_eq!(rec.events.len() as u64, e.metrics().messages);
        // Events are ordered by round.
        for w in rec.events.windows(2) {
            assert!(w[0].round <= w[1].round);
        }
    }

    #[test]
    fn one_message_per_edge_per_round() {
        // A node that sends k messages through one port in a single round
        // must have them delivered over k successive rounds.
        struct Burst {
            sent: bool,
        }
        impl Protocol for Burst {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                if ctx.degree() == 1 && !self.sent {
                    self.sent = true;
                    for k in 0..5 {
                        ctx.send(Port::new(0), k);
                    }
                }
            }
            fn on_round(&mut self, _ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
                inbox.clear();
            }
        }
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = Engine::new(
            g,
            vec![Burst { sent: false }, Burst { sent: false }],
            EngineConfig::default(),
        );
        let mut rec = RecordingObserver::default();
        e.run_observed(100, &mut rec);
        // Both endpoints burst 5 messages; each direction carries exactly
        // one message per round: rounds 0..=4 have 2 transmissions each.
        assert_eq!(rec.events.len(), 10);
        for r in 0..5u64 {
            assert_eq!(rec.events.iter().filter(|e| e.round == r).count(), 2);
        }
        assert_eq!(e.metrics().max_edge_backlog, 5);
    }

    #[test]
    fn bandwidth_cap_panics_on_oversized_message() {
        struct Big;
        impl Protocol for Big {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.send(Port::new(0), 1);
            }
            fn on_round(&mut self, _: &mut Context<'_, u64>, i: &mut Vec<(Port, u64)>) {
                i.clear();
            }
        }
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = Engine::new(
            g,
            vec![Big, Big],
            EngineConfig {
                seed: 0,
                bandwidth_bits: Some(32), // u64 payload claims 64 bits
            },
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.run(10);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn echo_round_trip_and_quiescence() {
        let g = Arc::new(gen::star(5).unwrap());
        let nodes = (0..5).map(|i| Echo::new(i == 1)).collect();
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        let out = e.run(100);
        // Echo never reports done; the run ends quiescent.
        assert!(matches!(out, RunOutcome::Quiescent { .. }));
        // The initiator (leaf 1) pinged the hub and got a reply.
        assert_eq!(e.node(1).replies_received(), 1);
        assert_eq!(e.metrics().messages, 2);
    }

    #[test]
    fn wakeups_skip_idle_rounds_cheaply() {
        struct Sleeper {
            fired: bool,
        }
        impl Protocol for Sleeper {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.wake_at(1_000_000);
            }
            fn on_round(&mut self, ctx: &mut Context<'_, ()>, inbox: &mut Vec<(Port, ())>) {
                inbox.clear();
                if ctx.round() >= 1_000_000 {
                    self.fired = true;
                }
            }
            fn is_done(&self) -> bool {
                self.fired
            }
        }
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = Engine::new(
            g,
            vec![Sleeper { fired: false }, Sleeper { fired: false }],
            EngineConfig::default(),
        );
        let out = e.run(2_000_000);
        assert!(out.is_done());
        assert_eq!(out.round(), 1_000_001);
        // Only 2 active rounds (start + wake), despite the huge clock.
        assert!(e.metrics().active_rounds <= 3);
    }

    #[test]
    fn round_limit_respected() {
        let mut e = flood_engine(64, 5);
        let out = e.run(2);
        assert!(matches!(out, RunOutcome::RoundLimit { .. }));
        assert_eq!(e.round(), 2);
    }

    #[test]
    fn stop_predicate_fires() {
        let mut e = flood_engine(32, 7);
        let out = e.run_until(10_000, |eng| eng.metrics().messages >= 10);
        assert!(matches!(out, RunOutcome::Stopped { .. }));
        assert!(e.metrics().messages >= 10);
    }

    #[test]
    fn signal_reaches_every_node() {
        struct SignalCounter {
            seen: u64,
        }
        impl Protocol for SignalCounter {
            type Msg = ();
            fn on_round(&mut self, _: &mut Context<'_, ()>, i: &mut Vec<(Port, ())>) {
                i.clear();
            }
            fn on_signal(&mut self, _: &mut Context<'_, ()>, s: Signal) {
                self.seen = s;
            }
        }
        let g = Arc::new(gen::ring(4).unwrap());
        let mut e = Engine::new(
            g,
            (0..4).map(|_| SignalCounter { seen: 0 }).collect(),
            EngineConfig::default(),
        );
        e.step();
        e.signal(99);
        assert!(e.nodes().iter().all(|n| n.seen == 99));
    }

    #[test]
    fn vacuous_fault_plan_is_bit_identical() {
        use crate::faults::FaultPlan;
        let mut plain = flood_engine(24, 9);
        let mut rec_plain = RecordingObserver::default();
        let out_plain = plain.run_observed(10_000, &mut rec_plain);

        let mut faulty = flood_engine(24, 9);
        faulty.set_fault_plan(&FaultPlan::new(123)).unwrap();
        let mut rec_faulty = RecordingObserver::default();
        let out_faulty = faulty.run_observed(10_000, &mut rec_faulty);

        assert_eq!(out_plain, out_faulty);
        assert_eq!(plain.metrics().messages, faulty.metrics().messages);
        assert_eq!(plain.metrics().bits, faulty.metrics().bits);
        assert_eq!(faulty.metrics().dropped_messages, 0);
        assert_eq!(rec_plain.events, rec_faulty.events);
    }

    #[test]
    fn full_drop_rate_silences_the_network() {
        use crate::faults::FaultPlan;
        let n = 10;
        let mut e = flood_engine(n, 4);
        e.set_fault_plan(&FaultPlan::new(1).drop_rate(1.0)).unwrap();
        let out = e.run(1_000);
        // Every node flooded once at start (and is then done), but
        // nothing arrived: the initial 2n sends were all lost.
        assert!(out.is_done());
        assert_eq!(e.metrics().messages, 0);
        assert_eq!(e.metrics().dropped_messages, 2 * n as u64);
        // Nobody learned anything.
        for (i, node) in e.nodes().iter().enumerate() {
            assert_eq!(node.best(), i as u64);
        }
    }

    #[test]
    fn crashed_node_neither_sends_nor_receives() {
        use crate::faults::FaultPlan;
        use crate::testing::BfsWave;
        // Path 0 - 1 - 2 with the middle node crashed from the start:
        // the wave from 0 can never reach 2.
        let g = Arc::new(gen::path(3).unwrap());
        let nodes = (0..3).map(|i| BfsWave::new(i == 0)).collect();
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.set_fault_plan(&FaultPlan::new(0).crash(1, 0)).unwrap();
        let out = e.run(1_000);
        assert!(matches!(out, RunOutcome::Quiescent { .. }));
        assert_eq!(e.node(0).level(), Some(0));
        assert_eq!(e.node(1).level(), None, "crashed nodes execute nothing");
        assert_eq!(e.node(2).level(), None, "the wave cannot cross a crash");
        assert_eq!(e.metrics().crashed_nodes, 1);
        assert!(e.metrics().dropped_messages >= 1);
    }

    #[test]
    fn mid_run_crash_halts_a_node() {
        use crate::faults::FaultPlan;
        use crate::testing::BfsWave;
        // The wave reaches node 1 at round 1 and node 2 at round 2; a
        // crash of node 2 at round 2 arrives exactly with the wave, so
        // node 2 stays at level None while node 1 finished normally.
        let g = Arc::new(gen::path(3).unwrap());
        let nodes = (0..3).map(|i| BfsWave::new(i == 0)).collect();
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.set_fault_plan(&FaultPlan::new(0).crash(2, 2)).unwrap();
        e.run(1_000);
        assert_eq!(e.node(1).level(), Some(1));
        assert_eq!(e.node(2).level(), None);
    }

    #[test]
    fn delayed_edges_shift_arrival_rounds() {
        use crate::faults::FaultPlan;
        let g = Arc::new(gen::path(2).unwrap());
        let nodes = vec![Echo::new(true), Echo::new(false)];
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.set_fault_plan(&FaultPlan::new(0).delay_all(3)).unwrap();
        let mut rec = RecordingObserver::default();
        let out = e.run_observed(1_000, &mut rec);
        // Ping crosses at round 0 and is released at round 3; the pong
        // (sent on processing it at round 4) is released at round 7.
        // The delay buffer counts as in-flight, so the run cannot
        // quiesce while messages are parked.
        assert!(matches!(out, RunOutcome::Quiescent { .. }));
        assert_eq!(e.node(0).replies_received(), 1);
        let rounds: Vec<u64> = rec.events.iter().map(|ev| ev.round).collect();
        assert_eq!(rounds, vec![3, 7]);
        assert_eq!(e.metrics().messages, 2);
        assert_eq!(e.metrics().dropped_messages, 0);
    }

    #[test]
    fn long_delays_skip_idle_stretches_cheaply() {
        use crate::faults::FaultPlan;
        // A 1000-round link delay must not cost 1000 empty simulated
        // rounds: when only parked messages remain, the engine jumps to
        // the next release in O(1), exactly like the wake-up skip.
        let g = Arc::new(gen::path(2).unwrap());
        let nodes = vec![Echo::new(true), Echo::new(false)];
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.set_fault_plan(&FaultPlan::new(0).delay_all(1000)).unwrap();
        let out = e.run(100_000);
        assert!(matches!(out, RunOutcome::Quiescent { .. }));
        assert_eq!(e.node(0).replies_received(), 1);
        assert!(out.round() >= 2001, "two 1000-round hops: {}", out.round());
        assert!(
            e.metrics().active_rounds <= 5,
            "idle stretches must be skipped, got {} active rounds",
            e.metrics().active_rounds
        );
    }

    #[test]
    fn cut_edge_stops_all_later_traffic() {
        use crate::faults::FaultPlan;
        let g = Arc::new(gen::path(3).unwrap());
        let nodes = (0..3).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        e.set_fault_plan(&FaultPlan::new(0).cut(1, 2, 0)).unwrap();
        e.run(1_000);
        // 2 is the max id, but its edge to 1 is gone from round 0.
        assert_eq!(e.node(0).best(), 1);
        assert_eq!(e.node(1).best(), 1);
        assert_eq!(e.node(2).best(), 2);
        assert!(e.metrics().dropped_messages >= 1);
    }

    #[test]
    fn reset_engine_is_bit_identical_to_fresh() {
        // Run once (dirtying every piece of state, including fault
        // structures and edge backlog), reset, run again: the second run
        // must match a never-used engine exactly.
        use crate::faults::FaultPlan;
        let g = Arc::new(gen::ring(16).unwrap());
        let cfg = EngineConfig {
            seed: 21,
            bandwidth_bits: None,
        };
        let mk = |i: usize| FloodMax::new(i as u64);
        let mut pooled = Engine::from_fn(Arc::clone(&g), cfg, mk);
        pooled.set_fault_plan(&FaultPlan::new(7).drop_rate(0.3)).unwrap();
        pooled.run(10_000);

        // Reset onto a *different* graph and seed.
        let g2 = Arc::new(gen::star(9).unwrap());
        let cfg2 = EngineConfig {
            seed: 4,
            bandwidth_bits: None,
        };
        pooled.reset_with(Arc::clone(&g2), cfg2, mk);
        let mut rec_pooled = RecordingObserver::default();
        let out_pooled = pooled.run_observed(10_000, &mut rec_pooled);

        let mut fresh = Engine::from_fn(g2, cfg2, mk);
        let mut rec_fresh = RecordingObserver::default();
        let out_fresh = fresh.run_observed(10_000, &mut rec_fresh);

        assert_eq!(out_pooled, out_fresh);
        assert_eq!(pooled.metrics().messages, fresh.metrics().messages);
        assert_eq!(pooled.metrics().bits, fresh.metrics().bits);
        assert_eq!(pooled.metrics().dropped_messages, 0);
        assert_eq!(rec_pooled.events, rec_fresh.events);
        for (a, b) in pooled.nodes().iter().zip(fresh.nodes()) {
            assert_eq!(a.best(), b.best());
        }
    }

    #[test]
    fn reset_keeps_the_arenas() {
        // A bursty protocol forces the edge-queue arena to grow; a reset
        // must keep that capacity instead of re-allocating per trial.
        struct Burst;
        impl Protocol for Burst {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                for k in 0..8 {
                    ctx.send(Port::new(0), k);
                }
            }
            fn on_round(&mut self, _: &mut Context<'_, u64>, i: &mut Vec<(Port, u64)>) {
                i.clear();
            }
        }
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = Engine::from_fn(Arc::clone(&g), EngineConfig::default(), |_| Burst);
        e.run(100);
        let grown = e.arena_capacity();
        assert!(grown > 0, "the burst must have grown the arena");
        e.reset_with(g, EngineConfig::default(), |_| Burst);
        assert_eq!(e.arena_capacity(), grown, "reset must not shed capacity");
        e.run(100);
        assert_eq!(e.arena_capacity(), grown, "warm rerun must not re-allocate");
    }

    #[test]
    fn node_rng_streams_differ() {
        use rand::RngExt;
        let mut a = node_rng(1, 0);
        let mut b = node_rng(1, 1);
        let va: u64 = a.random();
        let vb: u64 = b.random();
        assert_ne!(va, vb);
    }
}
