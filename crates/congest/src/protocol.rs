//! The node-side protocol interface and its execution context.

use rand::rngs::StdRng;
use welle_graph::Port;

use crate::message::Payload;
use crate::queues::DirBatch;

/// Out-of-band control value delivered by [`crate::Engine::signal`].
///
/// Signals are a *simulation* convenience (they model the globally known
/// round schedule of the paper without burning simulated rounds in
/// `Schedule::Adaptive` mode); they carry no protocol information beyond
/// the value itself.
pub type Signal = u64;

/// A synchronous message-passing protocol running on one anonymous node.
///
/// The engine drives all nodes in lock-step rounds:
///
/// 1. At round 0, [`Protocol::on_start`] runs once on every node.
/// 2. In each later round, [`Protocol::on_round`] runs on every node that
///    has incoming messages or a due wake-up (see [`Context::wake_at`]).
/// 3. Messages sent in round `r` arrive in round `r + 1` or later (later
///    when the per-edge queue is backed up: only one message crosses each
///    directed edge per round).
///
/// # Contract
///
/// `on_round` **must** be a no-op — in particular it must not draw from
/// [`Context::rng`] — when the inbox is empty and the node has no due
/// wake-up. Engines are allowed to skip such calls (the event-driven
/// [`crate::Engine`] does; the dense [`crate::ThreadedEngine`] does not),
/// and the two must produce identical executions.
///
/// Nodes are anonymous: the context deliberately exposes no node index.
/// Identity must come from randomness (e.g. the paper's ids in `[1, n⁴]`),
/// drawn from the seeded per-node [`Context::rng`].
pub trait Protocol: Send {
    /// Message type exchanged by this protocol.
    type Msg: Payload;

    /// Called once on every node at round 0, before any delivery.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called whenever this node has incoming messages or a due wake-up.
    ///
    /// `inbox` contains `(arrival_port, message)` pairs delivered this
    /// round; the implementation may drain it freely.
    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &mut Vec<(Port, Self::Msg)>);

    /// Called when the driver broadcasts a control signal
    /// (see [`crate::Engine::signal`]). Default: ignored.
    fn on_signal(&mut self, ctx: &mut Context<'_, Self::Msg>, signal: Signal) {
        let _ = (ctx, signal);
    }

    /// Whether this node has terminated (it promises to send no further
    /// messages spontaneously; it may still be used as a relay by the
    /// engine delivering messages to it). Default: `false`.
    fn is_done(&self) -> bool {
        false
    }

    /// The phase-observer hook: the protocol's current phase, as a small
    /// ordered tag, for telemetry attribution. After every callback the
    /// engine pulls this value and merges the tags seen in the round by
    /// **maximum** — an order-free reduction, so all executors agree —
    /// and the merged tag labels the round's
    /// [`RoundSample`](crate::RoundSample) and phase aggregates.
    ///
    /// # Contract
    ///
    /// The tag must be a pure function of the node's protocol state
    /// (never of wall-clock or ambient randomness), and should be
    /// monotone within the window being attributed: nodes of a
    /// phase-structured protocol are expected to agree on the tag up to
    /// the one-round skew of a transition. Default: `None` (the
    /// protocol is phase-less; rounds fall into the unattributed
    /// bucket).
    fn phase_tag(&self) -> Option<u8> {
        None
    }
}

/// Per-invocation execution context handed to protocol callbacks.
///
/// Provides the model-visible environment: the global round clock, the
/// network size `n` (the paper assumes nodes know `n`), the node's degree
/// (its port count), a private source of randomness, and the send/wake-up
/// effects.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) round: u64,
    pub(crate) n: usize,
    pub(crate) degree: usize,
    /// Directed index of this node's port 0; `send(p, ..)` resolves to
    /// directed index `dir_base + p` without touching the graph.
    pub(crate) dir_base: u32,
    /// Per-message bit budget ([`crate::EngineConfig::bandwidth_bits`]).
    pub(crate) budget: Option<usize>,
    /// Messages sent through this context (read back by the engine for
    /// per-node accounting).
    pub(crate) sent: u32,
    pub(crate) rng: &'a mut StdRng,
    /// The engine's transmission buffer (struct-of-arrays
    /// `(directed_index, message)` entries).
    pub(crate) sends: &'a mut DirBatch<M>,
    pub(crate) wake: &'a mut Option<u64>,
}

impl<M> Context<'_, M> {
    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Network size `n` (known to all nodes in the paper's model).
    pub fn n(&self) -> usize {
        self.n
    }

    /// This node's degree, i.e. its number of ports `0..degree`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The node's private random generator (deterministically seeded by
    /// the engine from the run seed and the node index).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Requests a wake-up call no later than round `round` (the earliest
    /// requested wake-up wins). Used by clock-driven protocols to observe
    /// schedule boundaries without busy-waiting.
    pub fn wake_at(&mut self, round: u64) {
        *self.wake = Some(match *self.wake {
            Some(cur) => cur.min(round),
            None => round,
        });
    }
}

impl<M: Payload> Context<'_, M> {
    /// Queues `msg` for transmission through `port`.
    ///
    /// Transmission respects the CONGEST discipline: one message per
    /// directed edge per round, so bursts sent in the same round are
    /// serialized over subsequent rounds (congestion).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree` — sending through a non-existent port
    /// is a protocol bug — or if the message exceeds the engine's
    /// [`crate::EngineConfig::bandwidth_bits`] budget.
    pub fn send(&mut self, port: Port, msg: M) {
        assert!(
            port.index() < self.degree,
            "send through port {port} but node has degree {}",
            self.degree
        );
        if let Some(budget) = self.budget {
            let sz = msg.bit_size();
            assert!(
                sz <= budget,
                "protocol bug: message of {sz} bits exceeds the {budget}-bit CONGEST budget"
            );
        }
        self.sent += 1;
        self.sends.push(self.dir_base + port.raw(), msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn test_ctx<'a>(
        degree: usize,
        budget: Option<usize>,
        rng: &'a mut StdRng,
        sends: &'a mut DirBatch<u64>,
        wake: &'a mut Option<u64>,
    ) -> Context<'a, u64> {
        Context {
            round: 3,
            n: 10,
            degree,
            dir_base: 100,
            budget,
            sent: 0,
            rng,
            sends,
            wake,
        }
    }

    #[test]
    fn context_accessors_and_effects() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sends: DirBatch<u64> = DirBatch::new();
        let mut wake = None;
        let mut ctx = test_ctx(2, None, &mut rng, &mut sends, &mut wake);
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.n(), 10);
        assert_eq!(ctx.degree(), 2);
        ctx.send(Port::new(1), 99);
        assert_eq!(ctx.sent, 1);
        ctx.wake_at(10);
        ctx.wake_at(7);
        ctx.wake_at(12);
        assert_eq!(sends.drain().collect::<Vec<_>>(), vec![(101, 99)]);
        assert_eq!(wake, Some(7));
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn sending_on_bad_port_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sends: DirBatch<u64> = DirBatch::new();
        let mut wake = None;
        let mut ctx = test_ctx(1, None, &mut rng, &mut sends, &mut wake);
        ctx.send(Port::new(1), 5);
    }

    #[test]
    #[should_panic(expected = "CONGEST budget")]
    fn sending_over_budget_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sends: DirBatch<u64> = DirBatch::new();
        let mut wake = None;
        let mut ctx = test_ctx(1, Some(32), &mut rng, &mut sends, &mut wake);
        ctx.send(Port::new(0), 5); // u64 payload claims 64 bits
    }
}
