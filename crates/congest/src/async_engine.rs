//! The event-driven asynchronous executor.
//!
//! [`AsyncEngine`] drives the same protocol instances as the round
//! engines, but message arrival times come from a seeded
//! [`LatencyModel`] instead of the constant one-round hop: each crossing
//! schedules a delivery event on a due-tick `BinaryHeap` (deterministic
//! `(due, seq)` tie-breaking), nodes advance on local virtual time, and
//! per-edge service rates below 1 make hub congestion queue. Runs remain
//! pure functions of `(graph, protocols, seed, model, fault plan)`.
//!
//! **Equivalence contract:** under [`LatencyModel::zero`] every delivery
//! lands exactly on the next round boundary, so the engine executes the
//! round engine's schedule event for event — same protocol callbacks in
//! the same order, same RNG draws, same metrics, same observer stream.
//! The differential test suites pin this down, which is what lets the
//! round engine serve as the bit-exact oracle for the async one.
//!
//! The fault layer composes at the delivery site: drop/cut/crash
//! decisions are made at the crossing round exactly as in the round
//! engine, and per-edge fault delays fold into the due tick (one heap,
//! not two).

use std::cmp::Reverse;
use std::sync::Arc;

use welle_graph::{Graph, NodeId, Port};

use crate::engine::{Engine, EngineConfig, RunOutcome, Transmitter};
use crate::exec::Executor;
use crate::faults::{CompiledFaultPlan, FaultError, FaultPlan};
use crate::latency::{LatencyModel, LatencyState, TICKS_PER_ROUND};
use crate::metrics::{Metrics, NoopObserver, TransmitObserver};
use crate::protocol::{Protocol, Signal};
use crate::telemetry::{SpanStage, TelemetryConfig, TelemetryReport};

/// Deterministic event-driven executor of the *asynchronous* CONGEST
/// model, parameterized by a [`LatencyModel`].
///
/// ```
/// use std::sync::Arc;
/// use welle_congest::{AsyncEngine, EngineConfig, LatencyModel, testing::FloodMax};
/// use welle_graph::gen;
///
/// let g = Arc::new(gen::hypercube(3).unwrap());
/// let nodes = (0..g.n()).map(|i| FloodMax::new(i as u64)).collect();
/// let model = LatencyModel::log_normal(0.0, 0.5).seed(7);
/// let mut engine = AsyncEngine::new(Arc::clone(&g), nodes, EngineConfig::default(), model);
/// let outcome = engine.run(1_000);
/// assert!(outcome.is_done());
/// // Virtual time spans past the crossing count once latency is real.
/// assert!(engine.virtual_time() > 0.0);
/// ```
#[derive(Debug)]
pub struct AsyncEngine<P: Protocol> {
    /// The full round-engine state — graph, protocol instances, RNGs,
    /// inboxes, edge queues, wake-ups, fault schedule. Reusing it
    /// verbatim (protocol phase and transmission discipline included) is
    /// what makes the zero-latency equivalence structural rather than
    /// merely tested.
    core: Engine<P>,
    /// The latency layer: due-tick heap, per-edge busy horizons, and the
    /// virtual-time span.
    lat: LatencyState<P::Msg>,
}

impl<P: Protocol> AsyncEngine<P> {
    /// Creates an async engine over `graph` with one protocol instance
    /// per node, delivering under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.n()` or if `model` fails
    /// [`LatencyModel::validate`] (fallible callers validate first).
    pub fn new(
        graph: Arc<Graph>,
        nodes: Vec<P>,
        cfg: EngineConfig,
        model: LatencyModel,
    ) -> Self {
        if let Err(e) = model.validate() {
            panic!("invalid latency model: {e}");
        }
        let dirs = graph.directed_edge_count();
        AsyncEngine {
            core: Engine::new(graph, nodes, cfg),
            lat: LatencyState::new(model, dirs),
        }
    }

    /// Creates an async engine with protocols built per node index.
    pub fn from_fn(
        graph: Arc<Graph>,
        cfg: EngineConfig,
        model: LatencyModel,
        mut make: impl FnMut(usize) -> P,
    ) -> Self {
        let nodes = (0..graph.n()).map(&mut make).collect();
        AsyncEngine::new(graph, nodes, cfg, model)
    }

    /// Installs adversarial network conditions (see
    /// [`Engine::set_fault_plan`] for scheduling semantics). Fault
    /// delays compose with latency: a delayed edge adds whole rounds on
    /// top of the sampled latency at each crossing.
    ///
    /// # Errors
    ///
    /// A [`FaultError`] when the plan does not fit the graph.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        self.core.set_fault_plan(plan)
    }

    /// Installs an already-compiled fault plan in `O(1)` (see
    /// [`Engine::set_compiled_faults`]).
    pub fn set_compiled_faults(&mut self, plan: &CompiledFaultPlan) {
        self.core.set_compiled_faults(plan)
    }

    /// Installs the telemetry layer; see [`Engine::set_telemetry`].
    /// Under [`LatencyModel::zero`] the recorded sample stream is
    /// bit-identical to the round engines' (parked-heap depth and
    /// virtual-tick included) — part of the equivalence contract.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.core.set_telemetry(cfg)
    }

    /// Removes the telemetry layer and returns everything it recorded;
    /// see [`Engine::take_telemetry`].
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        self.core.take_telemetry()
    }

    /// The simulated network.
    pub fn graph(&self) -> &Arc<Graph> {
        self.core.graph()
    }

    /// Current round (the floor of local virtual time — event horizons
    /// are still quantized on round boundaries for the protocol phase).
    pub fn round(&self) -> u64 {
        self.core.round()
    }

    /// Traffic metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        self.core.metrics()
    }

    /// Immutable view of the protocol instances.
    pub fn nodes(&self) -> &[P] {
        self.core.nodes()
    }

    /// The protocol instance at node `i`.
    pub fn node(&self, i: usize) -> &P {
        self.core.node(i)
    }

    /// Messages queued for transmission or parked on the event heap, not
    /// yet delivered. Termination detection waits for this to hit zero —
    /// a parked high-latency message keeps the run alive.
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight().saturating_add(self.lat.parked() as u64)
    }

    /// Caps the transmission scratch; see [`Engine::set_transmit_chunk`].
    pub fn set_transmit_chunk(&mut self, limit: usize) {
        self.core.set_transmit_chunk(limit);
    }

    /// Peak queued-message population of the underlying edge queues
    /// (parked heap messages excluded); see [`Engine::peak_arena_slots`].
    pub fn peak_arena_slots(&self) -> u64 {
        self.core.peak_arena_slots()
    }

    /// Virtual time elapsed, in rounds: the later of the round clock and
    /// the latest delivery completion. Under the zero model this equals
    /// [`AsyncEngine::round`] exactly; heavy-tailed models stretch it
    /// past the crossing count.
    pub fn virtual_time(&self) -> f64 {
        let round_ticks = self.core.round().saturating_mul(TICKS_PER_ROUND);
        round_ticks.max(self.lat.last_tick()) as f64 / TICKS_PER_ROUND as f64
    }

    /// Runs until [`RunOutcome::Done`], [`RunOutcome::Quiescent`], or
    /// the round limit (a bound on *virtual* rounds).
    pub fn run(&mut self, round_limit: u64) -> RunOutcome {
        self.run_core(round_limit, &mut NoopObserver)
    }

    /// Like [`AsyncEngine::run`] but notifying `obs` of every
    /// transmission.
    pub fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        self.run_core(round_limit, obs)
    }

    /// Broadcasts a control signal to every node (see
    /// [`crate::Protocol::on_signal`]).
    pub fn signal(&mut self, signal: Signal) {
        self.core.signal(signal)
    }

    /// The run loop: the round engine's drain/idle-skip logic with the
    /// latency heap standing in for the fault delay heap.
    fn run_core<O: TransmitObserver + ?Sized>(
        &mut self,
        round_limit: u64,
        obs: &mut O,
    ) -> RunOutcome {
        loop {
            let core = &mut self.core;
            if core.started {
                let drained = core.inbox_active.is_empty()
                    && core.pending.is_empty()
                    && core.queues.in_flight() == 0;
                let parked = self.lat.parked();
                if drained && parked == 0 {
                    if core.done_count == core.nodes.len() {
                        return RunOutcome::Done { round: core.round };
                    }
                    match core.wakeups.peek() {
                        None => return RunOutcome::Quiescent { round: core.round },
                        Some(&Reverse((r, _))) => {
                            if r > core.round {
                                // Skip the idle stretch in O(1).
                                core.round = r;
                            }
                        }
                    }
                } else if drained {
                    // Only parked events remain in flight: jump to the
                    // earlier of the next release and the next wake-up.
                    let due = self
                        .lat
                        .next_release_round()
                        // welle-lint: allow(no-lib-unwrap) — invariant: this branch is only reached when parked > 0, and every parked event has a release tick
                        .expect("parked > 0 implies a next release round");
                    let target = match core.wakeups.peek() {
                        Some(&Reverse((r, _))) => due.min(r),
                        None => due,
                    };
                    if target > core.round {
                        core.round = target;
                    }
                }
            }
            if core.round >= round_limit {
                return RunOutcome::RoundLimit { round: core.round };
            }
            self.step_core(obs);
        }
    }

    /// One event-loop iteration: the shared protocol phase, then the
    /// latency-aware transmission phase (release due events, cross this
    /// round's messages through the latency model).
    fn step_core<O: TransmitObserver + ?Sized>(&mut self, obs: &mut O) {
        let core = &mut self.core;
        let lat = &mut self.lat;
        // Telemetry mirrors the round engine exactly (see
        // `Engine::step_core`): one take, one restore, per round.
        let mut tel = core.telemetry.take();
        let t_round = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::Round));

        let t_cb = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::Callbacks));
        let acts_before = core.activations;
        let any_activity = core.protocol_phase();
        let callbacks_run = core.activations - acts_before;
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Callbacks, t_cb, callbacks_run);
        }

        let mut scratch = std::mem::take(&mut core.deliveries);
        let mut pending = std::mem::take(&mut core.pending);
        // The compiled fault schedule rides the core's fault state, but
        // its delay heap stays empty: latency and fault delays share the
        // tick heap in `lat`.
        let faults = core.faults.take();
        let compiled = faults.as_deref().map(|f| &*f.compiled);
        let chunk = core.chunk_limit;
        let horizon = core
            .round
            .saturating_add(1)
            .saturating_mul(TICKS_PER_ROUND);
        let transmitted =
            core.queues.in_flight() > 0 || !pending.is_empty() || lat.due_now(horizon);
        let t_deliver = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::Deliver));
        let flow;
        {
            let mut tx = Transmitter::new(
                &core.graph,
                &mut core.queues,
                &mut core.last_carried,
                core.round,
            );
            let inboxes = &mut core.inboxes;
            let inbox_flag = &mut core.inbox_flag;
            let inbox_active = &mut core.inbox_active;
            let mut sink = |v: NodeId, q: Port, msg: P::Msg| {
                inboxes[v.index()].push((q, msg));
                if !inbox_flag[v.index()] {
                    inbox_flag[v.index()] = true;
                    inbox_active.push(v.raw());
                }
            };
            let t_lh = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::LatencyHeap));
            tx.release_latent(lat, compiled, obs, &mut sink);
            if let Some(t) = tel.as_deref_mut() {
                // Events: heap releases delivered before this round's
                // own crossings.
                t.end(SpanStage::LatencyHeap, t_lh, tx.delivered_so_far());
            }
            tx.pump_backlog_latent(lat, compiled, &mut scratch, chunk, obs, &mut sink);
            for (dir, msg) in pending.drain() {
                tx.offer_latent(lat, compiled, dir as usize, msg, obs, &mut sink);
            }
            flow = tx.finish(&mut core.metrics);
        }
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Deliver, t_deliver, flow.messages);
        }
        core.faults = faults;
        core.deliveries = scratch;
        core.pending = pending;
        if any_activity || transmitted {
            core.metrics.active_rounds += 1;
            if let Some(t) = tel.as_deref_mut() {
                // The parked-heap depth: under the zero model the
                // latency heap holds exactly the messages the round
                // engine's fault-delay heap would (same park and release
                // rounds), so the streams agree byte for byte.
                let parked = lat.parked() as u64;
                t.end_round(
                    core.round,
                    core.phase_seen.take(),
                    callbacks_run,
                    &flow,
                    parked,
                    horizon,
                );
            }
        }
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Round, t_round, callbacks_run + flow.messages);
        }
        core.telemetry = tel;
        core.round += 1;
    }
}

impl<P: Protocol> Executor<P> for AsyncEngine<P> {
    fn graph(&self) -> &Arc<Graph> {
        AsyncEngine::graph(self)
    }

    fn round(&self) -> u64 {
        AsyncEngine::round(self)
    }

    fn metrics(&self) -> &Metrics {
        AsyncEngine::metrics(self)
    }

    fn nodes(&self) -> &[P] {
        AsyncEngine::nodes(self)
    }

    fn in_flight(&self) -> u64 {
        AsyncEngine::in_flight(self)
    }

    fn peak_arena_slots(&self) -> u64 {
        AsyncEngine::peak_arena_slots(self)
    }

    fn virtual_time(&self) -> f64 {
        AsyncEngine::virtual_time(self)
    }

    fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        AsyncEngine::run_observed(self, round_limit, obs)
    }

    fn signal(&mut self, signal: Signal) {
        AsyncEngine::signal(self, signal)
    }

    fn run(&mut self, round_limit: u64) -> RunOutcome {
        AsyncEngine::run(self, round_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RecordingObserver;
    use crate::testing::{Echo, FloodMax};
    use welle_graph::gen;

    fn flood_async(n: usize, seed: u64, model: LatencyModel) -> AsyncEngine<FloodMax> {
        let g = Arc::new(gen::ring(n).unwrap());
        AsyncEngine::from_fn(
            g,
            EngineConfig {
                seed,
                bandwidth_bits: None,
            },
            model,
            |i| FloodMax::new(i as u64),
        )
    }

    #[test]
    fn zero_latency_event_stream_matches_the_round_engine() {
        let g = Arc::new(gen::torus2d(4, 5).unwrap());
        let mk = |i: usize| FloodMax::new((i as u64 * 7919) % 101);
        let cfg = EngineConfig::default();
        let mut sync = Engine::from_fn(Arc::clone(&g), cfg, mk);
        let mut async_ = AsyncEngine::from_fn(Arc::clone(&g), cfg, LatencyModel::zero(), mk);
        let mut obs_a = RecordingObserver::default();
        let mut obs_b = RecordingObserver::default();
        let out_a = sync.run_observed(10_000, &mut obs_a);
        let out_b = async_.run_observed(10_000, &mut obs_b);
        assert_eq!(out_a, out_b);
        assert_eq!(obs_a.events, obs_b.events, "event-for-event equivalence");
        assert_eq!(sync.metrics(), async_.metrics());
        assert_eq!(async_.virtual_time(), async_.round() as f64);
    }

    #[test]
    fn fixed_latency_shifts_arrival_rounds() {
        // One ping down a path edge under 3 extra rounds of latency:
        // the crossing at round 0 lands at round 3 (observer view), the
        // pong's crossing at round 4 lands at round 7 — the same
        // timeline the fault layer's delay-3 plan produces.
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = AsyncEngine::from_fn(
            Arc::clone(&g),
            EngineConfig::default(),
            LatencyModel::fixed(3.0),
            |i| Echo::new(i == 0),
        );
        let mut obs = RecordingObserver::default();
        let out = e.run_observed(1_000, &mut obs);
        let rounds: Vec<u64> = obs.events.iter().map(|ev| ev.round).collect();
        assert_eq!(rounds, vec![3, 7], "outcome: {out:?}");
        assert_eq!(e.node(0).replies_received(), 1);
        // The pong completed service at round 8 and was processed in
        // round 8's protocol phase; the clock then reads 9.
        assert!(e.virtual_time() >= 8.0);
        assert_eq!(e.virtual_time(), e.round() as f64);
    }

    #[test]
    fn termination_never_outruns_a_parked_event() {
        // A single ping with 50 rounds of latency: the run must stay
        // alive (in-flight > 0) until the event lands, then finish —
        // without stepping the idle stretch round by round.
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = AsyncEngine::from_fn(
            Arc::clone(&g),
            EngineConfig::default(),
            LatencyModel::fixed(50.0),
            |i| Echo::new(i == 0),
        );
        let out = e.run(10_000);
        // Echo nodes never report done; the run ends quiescent only
        // after both the ping (released round 50) and the pong
        // (released round 101) have landed — never before.
        assert!(matches!(out, RunOutcome::Quiescent { .. }), "{out:?}");
        assert!(out.round() >= 101, "round {}", out.round());
        assert_eq!(e.in_flight(), 0);
        assert_eq!(e.node(0).replies_received(), 1);
        assert!(
            e.metrics().active_rounds <= 6,
            "idle stretches must be skipped, not stepped: {}",
            e.metrics().active_rounds
        );
    }

    #[test]
    fn simultaneous_events_release_in_crossing_order() {
        // All first-round floods share one due tick under a fixed
        // model; release must preserve the crossing (seq) order, which
        // is the round engine's delivery order for the same round.
        let model = LatencyModel::fixed(2.0);
        let mut a = flood_async(12, 3, model);
        let mut b = flood_async(12, 3, model);
        let mut obs_a = RecordingObserver::default();
        let mut obs_b = RecordingObserver::default();
        a.run_observed(10_000, &mut obs_a);
        b.run_observed(10_000, &mut obs_b);
        assert_eq!(obs_a.events, obs_b.events, "deterministic release order");
        // Same-round releases arrive in ascending crossing order: the
        // observer stream is sorted by round, and within a round matches
        // the zero-latency crossing order of that round's batch.
        let mut prev_round = 0;
        for ev in &obs_a.events {
            assert!(ev.round >= prev_round, "releases sorted by round");
            prev_round = ev.round;
        }
    }

    #[test]
    fn per_edge_fifo_is_preserved_under_equal_latencies() {
        // FloodMax on a ring improves repeatedly: the same directed
        // edge carries several messages over the run. Under a uniform
        // positive latency all its crossings get distinct due ticks in
        // crossing order (ticks grow with the round), so arrivals on
        // one edge must be in crossing order — FIFO per edge.
        let mut e = flood_async(16, 9, LatencyModel::fixed(1.25));
        let mut obs = RecordingObserver::default();
        let out = e.run_observed(10_000, &mut obs);
        assert!(out.is_done(), "{out:?}");
        use std::collections::HashMap;
        // Each later crossing of a directed edge gets a strictly larger
        // due tick, so its arrival round must never precede an earlier
        // crossing's — FIFO per edge.
        let mut last_round: HashMap<(u32, u32), u64> = HashMap::new();
        for ev in &obs.events {
            let key = (ev.from.raw(), ev.to.raw());
            if let Some(&prev) = last_round.get(&key) {
                assert!(prev <= ev.round, "edge {key:?} reordered");
            }
            last_round.insert(key, ev.round);
        }
        // Everyone converged despite the latency.
        assert!(e.nodes().iter().all(|n| n.best() == 15));
    }

    #[test]
    fn nonzero_latency_is_deterministic_across_repeats() {
        for model in [
            LatencyModel::uniform(0.0, 2.0).seed(11),
            LatencyModel::log_normal(0.0, 0.75).seed(12),
            LatencyModel::fixed(0.5).service_rate(0.25),
        ] {
            let mut a = flood_async(20, 5, model);
            let mut b = flood_async(20, 5, model);
            let mut obs_a = RecordingObserver::default();
            let mut obs_b = RecordingObserver::default();
            let out_a = a.run_observed(100_000, &mut obs_a);
            let out_b = b.run_observed(100_000, &mut obs_b);
            assert_eq!(out_a, out_b);
            assert_eq!(obs_a.events, obs_b.events);
            assert_eq!(a.metrics(), b.metrics());
            assert_eq!(a.virtual_time(), b.virtual_time());
        }
    }

    #[test]
    fn service_rate_congestion_stretches_virtual_time() {
        // Rate 0.25: every crossing occupies its edge for 4 rounds.
        // FloodMax floods every edge at start-up, so the run's virtual
        // span must stretch well past the zero-model run's.
        let mut fast = flood_async(16, 2, LatencyModel::zero());
        let mut slow = flood_async(16, 2, LatencyModel::zero().service_rate(0.25));
        fast.run(100_000);
        slow.run(100_000);
        assert!(
            slow.virtual_time() >= fast.virtual_time() * 2.0,
            "slow {} vs fast {}",
            slow.virtual_time(),
            fast.virtual_time()
        );
        // Congestion reorders nothing fatal: everyone still converges.
        assert!(slow.nodes().iter().all(|n| n.best() == 15));
    }

    #[test]
    fn faults_compose_with_latency_at_the_crossing() {
        // Cut the only edge at round 0: nothing is ever delivered, and
        // the drop is counted — same as the round engine.
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = AsyncEngine::from_fn(
            Arc::clone(&g),
            EngineConfig::default(),
            LatencyModel::fixed(2.0),
            |i| Echo::new(i == 0),
        );
        e.set_fault_plan(&FaultPlan::new(0).cut(0, 1, 0)).unwrap();
        let out = e.run(1_000);
        assert!(matches!(out, RunOutcome::Quiescent { .. }), "{out:?}");
        assert_eq!(e.metrics().messages, 0);
        assert_eq!(e.metrics().dropped_messages, 1);
        assert_eq!(e.node(0).replies_received(), 0);
    }

    #[test]
    fn fault_delay_folds_into_the_tick_heap() {
        // delay_all(3) under the zero model reproduces the round
        // engine's delayed-echo timeline: arrivals at rounds 3 and 7.
        let g = Arc::new(gen::path(2).unwrap());
        let mut e = AsyncEngine::from_fn(
            Arc::clone(&g),
            EngineConfig::default(),
            LatencyModel::zero(),
            |i| Echo::new(i == 0),
        );
        e.set_fault_plan(&FaultPlan::new(0).delay_all(3)).unwrap();
        let mut obs = RecordingObserver::default();
        e.run_observed(1_000, &mut obs);
        let rounds: Vec<u64> = obs.events.iter().map(|ev| ev.round).collect();
        assert_eq!(rounds, vec![3, 7]);
        assert_eq!(e.node(0).replies_received(), 1);
    }
}
