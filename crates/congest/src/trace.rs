//! Bounded execution traces for debugging protocols: a ring buffer of
//! transmission events with query helpers and a JSONL export. Attachable
//! anywhere a [`TransmitObserver`] is accepted — it doubles as the
//! bounded-retention backend of the event exporter (the telemetry
//! layer's [`RoundSample`](crate::RoundSample) stream covers rounds;
//! this covers individual transmissions).

use std::collections::VecDeque;
use std::io::{self, Write};

use welle_graph::{EdgeId, NodeId};

use crate::metrics::{TransmitEvent, TransmitObserver};

/// A bounded-capacity trace of the most recent transmissions.
///
/// ```
/// use welle_congest::{Trace, TransmitObserver};
/// let mut trace = Trace::with_capacity(128);
/// // ... engine.run_observed(limit, &mut trace) ...
/// assert!(trace.events().count() <= 128);
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    capacity: usize,
    events: VecDeque<TransmitEvent>,
    total_seen: u64,
}

impl Trace {
    /// Creates a trace keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            capacity,
            events: VecDeque::with_capacity(capacity),
            total_seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TransmitEvent> {
        self.events.iter()
    }

    /// Total events observed (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Retained events that touched node `v` (as sender or receiver).
    pub fn involving(&self, v: NodeId) -> Vec<&TransmitEvent> {
        self.events
            .iter()
            .filter(|e| e.from == v || e.to == v)
            .collect()
    }

    /// Retained events that crossed edge `e`.
    pub fn on_edge(&self, e: EdgeId) -> Vec<&TransmitEvent> {
        self.events.iter().filter(|ev| ev.edge == e).collect()
    }

    /// Retained events in the round range `[from, to)`.
    pub fn in_rounds(&self, from: u64, to: u64) -> Vec<&TransmitEvent> {
        self.events
            .iter()
            .filter(|e| e.round >= from && e.round < to)
            .collect()
    }

    /// Writes every retained event as one JSON object per line (JSONL),
    /// oldest first. All fields are deterministic, so two equivalent
    /// runs export byte-identical streams.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] of the underlying writer.
    pub fn to_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        self.to_jsonl_rounds(w, 0, u64::MAX)
    }

    /// [`Trace::to_jsonl`] restricted to events of the round range
    /// `[from, to)`.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] of the underlying writer.
    pub fn to_jsonl_rounds(&self, w: &mut impl Write, from: u64, to: u64) -> io::Result<()> {
        for e in self.events.iter().filter(|e| e.round >= from && e.round < to) {
            writeln!(
                w,
                concat!(
                    "{{\"round\":{},\"from\":{},\"from_port\":{},",
                    "\"to\":{},\"to_port\":{},\"edge\":{},\"bits\":{}}}"
                ),
                e.round,
                e.from.raw(),
                e.from_port.raw(),
                e.to.raw(),
                e.to_port.raw(),
                e.edge.raw(),
                e.bits,
            )?;
        }
        Ok(())
    }

    /// Renders the retained tail as one line per event (debugging aid).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "r{:>6} {} --{}--> {} ({} bits)\n",
                e.round, e.from, e.edge, e.to, e.bits
            ));
        }
        out
    }
}

impl TransmitObserver for Trace {
    fn on_transmit(&mut self, event: &TransmitEvent) {
        self.total_seen += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::Port;

    fn ev(round: u64, from: usize, to: usize, edge: usize) -> TransmitEvent {
        TransmitEvent {
            round,
            from: NodeId::new(from),
            from_port: Port::new(0),
            to: NodeId::new(to),
            to_port: Port::new(0),
            edge: EdgeId::new(edge),
            bits: 8,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for r in 0..5 {
            t.on_transmit(&ev(r, 0, 1, 0));
        }
        assert_eq!(t.total_seen(), 5);
        let rounds: Vec<u64> = t.events().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn query_helpers_filter() {
        let mut t = Trace::with_capacity(10);
        t.on_transmit(&ev(0, 0, 1, 0));
        t.on_transmit(&ev(1, 1, 2, 1));
        t.on_transmit(&ev(2, 2, 0, 2));
        assert_eq!(t.involving(NodeId::new(0)).len(), 2);
        assert_eq!(t.on_edge(EdgeId::new(1)).len(), 1);
        assert_eq!(t.in_rounds(1, 3).len(), 2);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn jsonl_export_is_deterministic_and_filterable() {
        let mut t = Trace::with_capacity(10);
        t.on_transmit(&ev(0, 0, 1, 0));
        t.on_transmit(&ev(1, 1, 2, 1));
        t.on_transmit(&ev(2, 2, 0, 2));
        let mut all = Vec::new();
        t.to_jsonl(&mut all).unwrap();
        let text = String::from_utf8(all).unwrap();
        assert_eq!(text.lines().count(), 3);
        let first = text.lines().next().unwrap();
        assert_eq!(
            first,
            "{\"round\":0,\"from\":0,\"from_port\":0,\"to\":1,\"to_port\":0,\"edge\":0,\"bits\":8}"
        );
        let mut mid = Vec::new();
        t.to_jsonl_rounds(&mut mid, 1, 2).unwrap();
        let mid = String::from_utf8(mid).unwrap();
        assert_eq!(mid.lines().count(), 1);
        assert!(mid.contains("\"round\":1"));
    }

    #[test]
    fn works_as_engine_observer() {
        use crate::testing::FloodMax;
        use crate::{Engine, EngineConfig};
        use std::sync::Arc;
        let g = Arc::new(welle_graph::gen::ring(6).unwrap());
        let nodes = (0..6).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = Engine::new(g, nodes, EngineConfig::default());
        let mut trace = Trace::with_capacity(16);
        e.run_observed(1_000, &mut trace);
        assert_eq!(trace.total_seen(), e.metrics().messages);
        assert!(trace.events().count() <= 16);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Trace::with_capacity(0);
    }
}
