//! Phase-aware, per-round telemetry: a deterministic time series over
//! simulated rounds, per-phase aggregation, and a span profiler over
//! the engine's internal stages.
//!
//! Telemetry follows the fault layer's design exactly: the engine holds
//! an `Option<Box<TelemetryState>>` and branches on it **once per
//! round**, so a run without telemetry pays a single null check and
//! allocates nothing — the hot path is untouched. With telemetry
//! installed ([`Engine::set_telemetry`](crate::Engine::set_telemetry)),
//! every *active* round (exactly the rounds counted in
//! [`Metrics::active_rounds`](crate::Metrics::active_rounds); idle
//! stretches are skipped, never sampled) appends one [`RoundSample`]
//! built purely from simulation state. Because every field is a pure
//! function of `(graph, protocols, seed, plan, model)`, the sample
//! stream is **byte-identical across executors** — serial, sharded at
//! any thread count, and async under the zero model — which the
//! differential suites fence.
//!
//! Two kinds of numbers live here and are kept strictly apart:
//!
//! * **deterministic counters** — rounds, messages, bits, active nodes,
//!   backlog, parked-heap depth, virtual-time ticks. These are part of
//!   the replayable record and safe to assert on.
//! * **wall-clock nanoseconds** — collected only by the opt-in span
//!   profiler ([`TelemetryConfig::profile`]), never fed back into
//!   simulation state, and reported in a separate field
//!   ([`SpanStats::wall_ns`]) so no downstream consumer can mistake
//!   them for replayable data. The profiler's *counts* (entries,
//!   events) are deterministic; only its nanoseconds vary run to run.
//!
//! Phase attribution: protocols may report a small integer phase tag
//! through [`Protocol::phase_tag`](crate::Protocol::phase_tag) (the
//! phase-observer hook). After each node callback the engine pulls the
//! hook and merges tags seen this round by maximum — an order-free
//! reduction, so executors cannot disagree — and the merged tag becomes
//! the round's phase, persisting until some later round publishes a new
//! one. Rounds before the first publish carry `phase: None`.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// How many samples the telemetry layer retains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Retention {
    /// Keep every sample (memory grows with active rounds).
    Full,
    /// Keep only the most recent `k` samples, evicting the oldest.
    /// `Ring(0)` retains nothing — per-phase totals still accumulate,
    /// which is the cheapest way to get a phase table without a log.
    Ring(usize),
}

/// Configuration for the telemetry layer (see
/// [`Engine::set_telemetry`](crate::Engine::set_telemetry)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sample retention policy.
    pub retention: Retention,
    /// Whether to run the span profiler (adds wall-clock reads; the
    /// deterministic stream is unaffected).
    pub profile: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            retention: Retention::Full,
            profile: false,
        }
    }
}

impl TelemetryConfig {
    /// Full retention, no profiler.
    pub fn full() -> Self {
        TelemetryConfig::default()
    }

    /// Ring retention of the last `k` samples, no profiler.
    pub fn ring(k: usize) -> Self {
        TelemetryConfig {
            retention: Retention::Ring(k),
            ..TelemetryConfig::default()
        }
    }

    /// Enables the span profiler.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }
}

/// One active round of the simulation, as observed by the telemetry
/// layer. Every field is deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundSample {
    /// The simulated round this sample describes.
    pub round: u64,
    /// Phase tag in effect this round (see
    /// [`Protocol::phase_tag`](crate::Protocol::phase_tag)); `None`
    /// before the first publish.
    pub phase: Option<u8>,
    /// Messages delivered this round.
    pub messages: u64,
    /// Payload bits delivered this round.
    pub bits: u64,
    /// Nodes whose protocol callbacks ran this round.
    pub active_nodes: u64,
    /// Deepest edge backlog observed this round (0 when no edge queued).
    pub max_backlog: u64,
    /// Messages dropped by the fault layer this round.
    pub dropped: u64,
    /// Messages parked (fault-delay or latency heap) at round end.
    pub parked: u64,
    /// Virtual-time tick at the round's end boundary.
    pub tick: u64,
}

/// Per-phase aggregate totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Active rounds attributed to the phase.
    pub rounds: u64,
    /// Messages delivered during the phase.
    pub messages: u64,
    /// Payload bits delivered during the phase.
    pub bits: u64,
}

/// The engine stages the span profiler covers. `Round` is the root
/// span; the others nest under it ([`SpanStage::parent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanStage {
    /// One whole simulated round.
    Round,
    /// Protocol callbacks (start-up, inbox, wake-up, signal handlers).
    Callbacks,
    /// The transmission phase: queue pops, fresh sends, inbox pushes.
    Deliver,
    /// The fault filter inside delivery (cuts, crashes, drops, delays).
    FaultFilter,
    /// The latency heap inside delivery (async executor only).
    LatencyHeap,
}

/// All stages, in reporting order (parents before children).
pub const SPAN_STAGES: [SpanStage; 5] = [
    SpanStage::Round,
    SpanStage::Callbacks,
    SpanStage::Deliver,
    SpanStage::FaultFilter,
    SpanStage::LatencyHeap,
];

impl SpanStage {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Round => "round",
            SpanStage::Callbacks => "callbacks",
            SpanStage::Deliver => "deliver",
            SpanStage::FaultFilter => "fault_filter",
            SpanStage::LatencyHeap => "latency_heap",
        }
    }

    /// The enclosing stage, if any (spans form a fixed hierarchy).
    pub fn parent(self) -> Option<SpanStage> {
        match self {
            SpanStage::Round => None,
            SpanStage::Callbacks | SpanStage::Deliver => Some(SpanStage::Round),
            SpanStage::FaultFilter | SpanStage::LatencyHeap => Some(SpanStage::Deliver),
        }
    }

    fn index(self) -> usize {
        match self {
            SpanStage::Round => 0,
            SpanStage::Callbacks => 1,
            SpanStage::Deliver => 2,
            SpanStage::FaultFilter => 3,
            SpanStage::LatencyHeap => 4,
        }
    }
}

/// Aggregated statistics of one profiler span. `entries` and `events`
/// are deterministic; `wall_ns` is wall-clock and excluded from every
/// determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStats {
    /// Which stage.
    pub stage: SpanStage,
    /// Times the stage ran (deterministic).
    pub entries: u64,
    /// Work items the stage processed — callbacks run, messages
    /// delivered, messages filtered/released (deterministic).
    pub events: u64,
    /// Total wall-clock nanoseconds spent in the stage. **Not**
    /// deterministic; never compared or fed back into the simulation.
    pub wall_ns: u64,
}

/// Everything a telemetry-enabled run recorded, extracted with
/// [`Engine::take_telemetry`](crate::Engine::take_telemetry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Retained samples, oldest first.
    pub samples: Vec<RoundSample>,
    /// Samples recorded over the whole run, including any evicted by
    /// ring retention.
    pub total_samples: u64,
    /// Per-phase totals, ordered `None` first then by ascending tag.
    pub phases: Vec<(Option<u8>, PhaseTotals)>,
    /// Span profiler output, present iff [`TelemetryConfig::profile`].
    pub profile: Option<Vec<SpanStats>>,
}

impl TelemetryReport {
    /// Totals for phase `tag`, zero if the phase never ran.
    pub fn phase(&self, tag: Option<u8>) -> PhaseTotals {
        self.phases
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .unwrap_or_default()
    }
}

/// Per-round flow counters handed from the transmitter to the
/// telemetry layer (the same quantities it folds into `Metrics`, but
/// scoped to one round).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RoundFlow {
    pub(crate) messages: u64,
    pub(crate) bits: u64,
    pub(crate) dropped: u64,
    pub(crate) max_backlog: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct SpanAcc {
    entries: u64,
    events: u64,
    wall_ns: u64,
}

#[derive(Debug, Default)]
struct SpanProfiler {
    accs: [SpanAcc; SPAN_STAGES.len()],
}

/// Runtime telemetry state, boxed behind the engine's single
/// `Option` branch (mirroring `FaultState`).
#[derive(Debug)]
pub(crate) struct TelemetryState {
    cfg: TelemetryConfig,
    samples: VecDeque<RoundSample>,
    total: u64,
    cur_phase: Option<u8>,
    phases: BTreeMap<Option<u8>, PhaseTotals>,
    profiler: Option<SpanProfiler>,
}

impl TelemetryState {
    pub(crate) fn new(cfg: TelemetryConfig) -> Self {
        TelemetryState {
            cfg,
            samples: VecDeque::new(),
            total: 0,
            cur_phase: None,
            phases: BTreeMap::new(),
            profiler: cfg.profile.then(SpanProfiler::default),
        }
    }

    /// Starts timing a stage. Returns `None` (and reads no clock) when
    /// the profiler is off — wall time never leaks into unprofiled runs.
    #[inline]
    pub(crate) fn begin(&mut self, _stage: SpanStage) -> Option<Instant> {
        // welle-lint: allow(no-ambient-entropy) — profiler wall-clock: read only when profiling is on, stored only in SpanStats::wall_ns, never fed back into simulation state
        self.profiler.as_ref().map(|_| Instant::now())
    }

    /// Ends a stage started by [`TelemetryState::begin`], crediting
    /// `events` deterministic work items to it.
    #[inline]
    pub(crate) fn end(&mut self, stage: SpanStage, started: Option<Instant>, events: u64) {
        if let (Some(p), Some(t0)) = (self.profiler.as_mut(), started) {
            let acc = &mut p.accs[stage.index()];
            acc.entries += 1;
            acc.events += events;
            let ns = t0.elapsed().as_nanos();
            acc.wall_ns = acc.wall_ns.saturating_add(u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }

    /// Records one active round: applies the round's published phase
    /// tag (if any), appends the sample per the retention policy, and
    /// folds the flow into the per-phase totals.
    pub(crate) fn end_round(
        &mut self,
        round: u64,
        published: Option<u8>,
        active_nodes: u64,
        flow: &RoundFlow,
        parked: u64,
        tick: u64,
    ) {
        if published.is_some() {
            self.cur_phase = published;
        }
        let totals = self.phases.entry(self.cur_phase).or_default();
        totals.rounds += 1;
        totals.messages += flow.messages;
        totals.bits += flow.bits;
        let sample = RoundSample {
            round,
            phase: self.cur_phase,
            messages: flow.messages,
            bits: flow.bits,
            active_nodes,
            max_backlog: flow.max_backlog,
            dropped: flow.dropped,
            parked,
            tick,
        };
        self.total += 1;
        match self.cfg.retention {
            Retention::Full => self.samples.push_back(sample),
            Retention::Ring(0) => {}
            Retention::Ring(k) => {
                if self.samples.len() == k {
                    self.samples.pop_front();
                }
                self.samples.push_back(sample);
            }
        }
    }

    /// Drains the state into its report.
    pub(crate) fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            samples: self.samples.into(),
            total_samples: self.total,
            phases: self.phases.into_iter().collect(),
            profile: self.profiler.map(|p| {
                SPAN_STAGES
                    .iter()
                    .map(|&stage| {
                        let acc = p.accs[stage.index()];
                        SpanStats {
                            stage,
                            entries: acc.entries,
                            events: acc.events,
                            wall_ns: acc.wall_ns,
                        }
                    })
                    .collect()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(messages: u64, bits: u64) -> RoundFlow {
        RoundFlow {
            messages,
            bits,
            dropped: 0,
            max_backlog: 0,
        }
    }

    #[test]
    fn ring_retention_evicts_oldest_but_totals_survive() {
        let mut t = TelemetryState::new(TelemetryConfig::ring(2));
        for r in 0..5 {
            t.end_round(r, None, 1, &flow(1, 8), 0, 0);
        }
        let rep = t.into_report();
        assert_eq!(rep.total_samples, 5);
        let rounds: Vec<u64> = rep.samples.iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![3, 4]);
        assert_eq!(rep.phase(None).rounds, 5);
        assert_eq!(rep.phase(None).messages, 5);
    }

    #[test]
    fn ring_zero_keeps_totals_only() {
        let mut t = TelemetryState::new(TelemetryConfig::ring(0));
        t.end_round(0, Some(1), 1, &flow(3, 24), 0, 0);
        let rep = t.into_report();
        assert!(rep.samples.is_empty());
        assert_eq!(rep.total_samples, 1);
        assert_eq!(rep.phase(Some(1)).messages, 3);
    }

    #[test]
    fn phase_persists_until_republished() {
        let mut t = TelemetryState::new(TelemetryConfig::full());
        t.end_round(0, None, 1, &flow(1, 1), 0, 0); // pre-phase
        t.end_round(1, Some(0), 1, &flow(1, 1), 0, 0); // Walk
        t.end_round(2, None, 1, &flow(1, 1), 0, 0); // still Walk
        t.end_round(3, Some(2), 1, &flow(1, 1), 0, 0); // R2
        let rep = t.into_report();
        let phases: Vec<Option<u8>> = rep.samples.iter().map(|s| s.phase).collect();
        assert_eq!(phases, vec![None, Some(0), Some(0), Some(2)]);
        assert_eq!(rep.phase(Some(0)).rounds, 2);
        assert_eq!(rep.phase(Some(2)).rounds, 1);
        assert_eq!(rep.phase(None).rounds, 1);
        // Report order: None first, then ascending tags.
        let order: Vec<Option<u8>> = rep.phases.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec![None, Some(0), Some(2)]);
    }

    #[test]
    fn profiler_counts_are_deterministic_and_separate_from_wall_ns() {
        let mut t = TelemetryState::new(TelemetryConfig::full().with_profile());
        let s = t.begin(SpanStage::Round);
        assert!(s.is_some(), "profiling on: a start instant is taken");
        t.end(SpanStage::Round, s, 7);
        let rep = t.into_report();
        let spans = rep.profile.expect("profile was enabled");
        assert_eq!(spans.len(), SPAN_STAGES.len());
        let round = &spans[SpanStage::Round.index()];
        assert_eq!((round.entries, round.events), (1, 7));
        // Unentered stages report zero.
        let cb = &spans[SpanStage::Callbacks.index()];
        assert_eq!((cb.entries, cb.events, cb.wall_ns), (0, 0, 0));
    }

    #[test]
    fn profiler_off_reads_no_clock() {
        let mut t = TelemetryState::new(TelemetryConfig::full());
        assert!(t.begin(SpanStage::Deliver).is_none());
        t.end(SpanStage::Deliver, None, 5); // no-op
        assert!(t.into_report().profile.is_none());
    }

    #[test]
    fn stage_hierarchy_is_fixed() {
        assert_eq!(SpanStage::Round.parent(), None);
        assert_eq!(SpanStage::Callbacks.parent(), Some(SpanStage::Round));
        assert_eq!(SpanStage::Deliver.parent(), Some(SpanStage::Round));
        assert_eq!(SpanStage::FaultFilter.parent(), Some(SpanStage::Deliver));
        assert_eq!(SpanStage::LatencyHeap.parent(), Some(SpanStage::Deliver));
    }
}
