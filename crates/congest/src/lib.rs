//! Synchronous CONGEST-model network simulator.
//!
//! Implements exactly the computing model of §1 of *Leader Election in
//! Well-Connected Graphs* (Gilbert, Robinson, Sourav; PODC 2018):
//!
//! * synchronous rounds with simultaneous wake-up,
//! * anonymous nodes addressing neighbours only through **ports**
//!   (asymmetric port numbering, KT0),
//! * a bandwidth budget per edge per round (`O(log n)` bits in CONGEST
//!   mode, unlimited for LOCAL-model experiments),
//! * **congestion**: one message per directed edge per round; excess
//!   messages queue and arrive later,
//! * per-node seeded randomness, so any run is a pure function of
//!   `(graph, protocols, seed)`.
//!
//! The model is reliable by default; an opt-in [`FaultPlan`] layers
//! deterministic adversarial conditions on top — i.i.d. message drops,
//! crash-stop node schedules, per-edge delivery delay, and edge
//! cuts/partitions — without giving up replayability (see [`faults`
//! module docs](FaultPlan)).
//!
//! Three executors share these semantics behind the [`Executor`] trait:
//! the event-driven [`Engine`] (skips idle rounds in `O(1)` — essential
//! for the paper's fixed-`T` schedules), the sharded multi-threaded
//! [`ThreadedEngine`], and the asynchronous [`AsyncEngine`], which
//! replaces the constant one-round hop with a seeded [`LatencyModel`]
//! (fixed, uniform, or log-normal per-crossing latency plus per-edge
//! service-rate queueing). Synchronous executions are bit-identical
//! across engines and thread counts for protocols honouring the
//! [`Protocol`] no-op contract, and the async engine rejoins them bit
//! for bit under [`LatencyModel::zero`] — so drivers choose executors
//! on performance, and latency models on what they want to study.
//!
//! # Example: flooding the maximum id
//!
//! ```
//! use std::sync::Arc;
//! use welle_congest::{testing::FloodMax, Engine, EngineConfig};
//! use welle_graph::gen;
//!
//! let g = Arc::new(gen::hypercube(4).unwrap());
//! let nodes = (0..g.n()).map(|i| FloodMax::new(i as u64)).collect();
//! let mut engine = Engine::new(g, nodes, EngineConfig::default());
//! let outcome = engine.run(10_000);
//! assert!(outcome.is_done());
//! assert_eq!(engine.nodes().iter().filter(|n| n.is_leader()).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod async_engine;
mod engine;
mod exec;
mod faults;
mod latency;
mod message;
mod metrics;
mod protocol;
mod queues;
mod telemetry;
mod threaded;
mod trace;

pub mod testing;

pub use async_engine::AsyncEngine;

/// Narrows a node/edge/slot index to the engine's `u32` arena
/// representation: the single sanctioned narrowing point in the hot
/// path. Every index space here is bounded by `2m` (directed edges) or
/// `n` (nodes), which the graph layer already caps at `u32` range via
/// `NodeId`/`EdgeId` construction; the debug assert keeps that bound
/// honest while release builds keep the cast free.
#[inline(always)]
pub(crate) fn idx32(i: usize) -> u32 {
    debug_assert!(
        u32::try_from(i).is_ok(),
        "index {i} exceeds the u32 arena range"
    );
    // welle-lint: allow(no-narrowing-cast) — sole checked narrowing point; bound debug-asserted above, enforced at graph construction
    i as u32
}
pub use engine::{Engine, EngineConfig, RunOutcome};
pub use exec::{Exec, Executor};
pub use faults::{CompiledFaultPlan, FaultError, FaultPlan};
pub use latency::{LatencyDist, LatencyError, LatencyModel};
pub use message::{bits_for, id_bits, Payload};
pub use metrics::{Metrics, NoopObserver, RecordingObserver, TransmitEvent, TransmitObserver};
pub use protocol::{Context, Protocol, Signal};
pub use telemetry::{
    PhaseTotals, Retention, RoundSample, SpanStage, SpanStats, TelemetryConfig, TelemetryReport,
    SPAN_STAGES,
};
pub use threaded::ThreadedEngine;
pub use trace::Trace;
