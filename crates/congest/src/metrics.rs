//! Traffic metrics and transmission observers.

use welle_graph::{EdgeId, NodeId, Port};

/// Aggregate traffic statistics collected by an engine.
///
/// "Messages" counts individual CONGEST transmissions (the paper's message
/// complexity measure); "bits" weights them by [`crate::Payload::bit_size`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total messages transmitted over edges.
    pub messages: u64,
    /// Total bits transmitted.
    pub bits: u64,
    /// Messages sent per node (indexed by simulator node index).
    pub sent_by_node: Vec<u64>,
    /// Number of rounds in which at least one protocol callback ran or a
    /// message was transmitted.
    pub active_rounds: u64,
    /// Largest backlog any single directed edge reached (≥ 1 message means
    /// congestion delayed delivery). `u64` so big-`n` runs and 32-bit
    /// hosts can't silently wrap the counter.
    pub max_edge_backlog: u64,
    /// Messages removed by an installed [`crate::FaultPlan`] — dropped in
    /// transit, suppressed by a crashed endpoint, or sent into a cut
    /// edge. Always zero without a plan.
    pub dropped_messages: u64,
    /// Nodes with a crash scheduled by the installed [`crate::FaultPlan`]
    /// (zero without a plan); failure reporting, not a traffic counter.
    pub crashed_nodes: u64,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Self {
        Metrics {
            sent_by_node: vec![0; n],
            ..Metrics::default()
        }
    }

    /// Zeroes every counter for a network of `n` nodes, reusing the
    /// `sent_by_node` allocation (the pooled-engine reset path).
    pub(crate) fn reset(&mut self, n: usize) {
        self.messages = 0;
        self.bits = 0;
        self.sent_by_node.clear();
        self.sent_by_node.resize(n, 0);
        self.active_rounds = 0;
        self.max_edge_backlog = 0;
        self.dropped_messages = 0;
        self.crashed_nodes = 0;
    }
}

/// One message crossing one directed edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransmitEvent {
    /// Round in which the transmission happened.
    pub round: u64,
    /// Sending node.
    pub from: NodeId,
    /// Port on the sender's side.
    pub from_port: Port,
    /// Receiving node.
    pub to: NodeId,
    /// Port on the receiver's side.
    pub to_port: Port,
    /// Undirected edge id (lets observers classify intra/inter-clique
    /// edges and bridges in the lower-bound experiments).
    pub edge: EdgeId,
    /// Payload size in bits.
    pub bits: usize,
}

/// Observer notified of every transmission; drives the §4/§5 experiments
/// (clique communication graphs, bridge crossing) without touching the
/// protocols themselves.
pub trait TransmitObserver {
    /// Called once per message, in transmission order.
    fn on_transmit(&mut self, event: &TransmitEvent);
}

/// Observer that does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl TransmitObserver for NoopObserver {
    fn on_transmit(&mut self, _event: &TransmitEvent) {}
}

/// Observer recording every event (tests / small traces only).
#[derive(Clone, Debug, Default)]
pub struct RecordingObserver {
    /// The recorded transmissions, in order.
    pub events: Vec<TransmitEvent>,
}

impl TransmitObserver for RecordingObserver {
    fn on_transmit(&mut self, event: &TransmitEvent) {
        self.events.push(*event);
    }
}

impl<F: FnMut(&TransmitEvent)> TransmitObserver for F {
    fn on_transmit(&mut self, event: &TransmitEvent) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_start_zeroed() {
        let m = Metrics::new(3);
        assert_eq!(m.messages, 0);
        assert_eq!(m.bits, 0);
        assert_eq!(m.sent_by_node, vec![0, 0, 0]);
    }

    #[test]
    fn closure_is_an_observer() {
        let mut count = 0usize;
        {
            let mut obs = |_e: &TransmitEvent| count += 1;
            let ev = TransmitEvent {
                round: 0,
                from: NodeId::new(0),
                from_port: Port::new(0),
                to: NodeId::new(1),
                to_port: Port::new(0),
                edge: EdgeId::new(0),
                bits: 8,
            };
            obs.on_transmit(&ev);
            obs.on_transmit(&ev);
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn recording_observer_keeps_order() {
        let mut rec = RecordingObserver::default();
        for r in 0..3 {
            rec.on_transmit(&TransmitEvent {
                round: r,
                from: NodeId::new(0),
                from_port: Port::new(0),
                to: NodeId::new(1),
                to_port: Port::new(0),
                edge: EdgeId::new(0),
                bits: 1,
            });
        }
        let rounds: Vec<u64> = rec.events.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![0, 1, 2]);
    }
}
