//! A single driving API over both executors.
//!
//! High-level drivers (election runners, experiment harnesses) are
//! written once against [`Executor`] and run unchanged on the
//! event-driven [`crate::Engine`] or the dense sharded
//! [`crate::ThreadedEngine`] — the two produce identical executions for
//! protocols honouring the [`crate::Protocol`] no-op contract, so the
//! choice is purely a performance trade-off (idle-round skipping versus
//! parallel protocol phases).

use std::sync::Arc;

use welle_graph::Graph;

use crate::engine::{Engine, RunOutcome};
use crate::latency::LatencyModel;
use crate::metrics::{Metrics, NoopObserver, TransmitObserver};
use crate::protocol::{Protocol, Signal};
use crate::threaded::ThreadedEngine;

/// Which CONGEST executor drives a run.
///
/// The synchronous executors (`Serial`, `Threaded`, and whatever `Auto`
/// resolves to) are bit-identical on the same `(graph, config, seed)` —
/// the choice is purely a wall-clock trade-off, with the measured
/// crossover recorded in `BENCH_NOTES.md`. `Async` changes the *model*:
/// message latency comes from its [`LatencyModel`] instead of the
/// constant one-round hop. Under [`LatencyModel::zero`] it rejoins the
/// synchronous executors bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Exec {
    /// Pick for me: the serial event-driven engine, unless the network
    /// is large (`n ≥ 10⁴`) *and* dense enough to keep every shard busy
    /// (average degree ≥ 3) *and* the host actually has spare cores —
    /// then the sharded engine with one worker per core (capped at 8).
    #[default]
    Auto,
    /// The serial event-driven [`Engine`]: skips idle nodes, best for
    /// small or sparse networks (and single-core hosts).
    Serial,
    /// The sharded [`ThreadedEngine`] with this many worker threads
    /// (must be ≥ 1; a 1-worker `ThreadedEngine` runs its rounds inline
    /// on its inner serial engine).
    Threaded(usize),
    /// The event-driven [`AsyncEngine`](crate::AsyncEngine), delivering
    /// messages under this latency model.
    Async(LatencyModel),
}

impl Exec {
    /// Resolves `Auto` against a concrete graph and host, yielding a
    /// concrete executor choice (never `Auto`).
    pub fn resolve(self, graph: &Graph) -> Exec {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        self.resolve_with(graph, cores)
    }

    /// [`Exec::resolve`] with an explicit spare-core budget instead of
    /// the host's count. A batch scheduler whose trial workers already
    /// own the cores passes a budget of 1 here, so `Auto` resolves to
    /// `Serial` and threaded engines are never nested inside trial
    /// workers. Explicit choices are honored as given.
    pub fn resolve_with(self, graph: &Graph, cores: usize) -> Exec {
        match self {
            Exec::Auto => {
                let n = graph.n();
                let avg_deg = if n == 0 {
                    0.0
                } else {
                    2.0 * graph.m() as f64 / n as f64
                };
                if cores >= 2 && n >= 10_000 && avg_deg >= 3.0 {
                    Exec::Threaded(cores.min(8))
                } else {
                    Exec::Serial
                }
            }
            fixed => fixed,
        }
    }
}

/// Common interface of the CONGEST executors.
///
/// Everything a driver needs: run rounds (optionally observed),
/// broadcast signals between runs, and inspect the outcome.
pub trait Executor<P: Protocol> {
    /// The simulated network.
    fn graph(&self) -> &Arc<Graph>;

    /// Current round.
    fn round(&self) -> u64;

    /// Traffic metrics accumulated so far.
    fn metrics(&self) -> &Metrics;

    /// Immutable view of the protocol instances.
    fn nodes(&self) -> &[P];

    /// Messages queued for transmission (current-round sends plus edge
    /// backlog), not yet delivered. `u64`: at `n = 10⁶` the in-flight
    /// population can exceed a 32-bit host's `usize`.
    fn in_flight(&self) -> u64;

    /// High-water mark of simultaneously queued messages since the last
    /// reset (the engine's message-arena footprint); see
    /// [`Engine::peak_arena_slots`].
    fn peak_arena_slots(&self) -> u64;

    /// Virtual time elapsed, in rounds. For the synchronous executors
    /// this *is* the round count; the async executor stretches it past
    /// the round clock when deliveries complete late.
    fn virtual_time(&self) -> f64 {
        self.round() as f64
    }

    /// Runs until done/quiescent/limit, notifying `obs` of every
    /// transmission; see [`Engine::run`] for the semantics.
    fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome;

    /// Broadcasts a control signal to every node (see
    /// [`crate::Protocol::on_signal`]).
    fn signal(&mut self, signal: Signal);

    /// Runs until done/quiescent/limit with no observer.
    fn run(&mut self, round_limit: u64) -> RunOutcome {
        self.run_observed(round_limit, &mut NoopObserver)
    }
}

impl<P: Protocol> Executor<P> for Engine<P> {
    fn graph(&self) -> &Arc<Graph> {
        Engine::graph(self)
    }

    fn round(&self) -> u64 {
        Engine::round(self)
    }

    fn metrics(&self) -> &Metrics {
        Engine::metrics(self)
    }

    fn nodes(&self) -> &[P] {
        Engine::nodes(self)
    }

    fn in_flight(&self) -> u64 {
        Engine::in_flight(self)
    }

    fn peak_arena_slots(&self) -> u64 {
        Engine::peak_arena_slots(self)
    }

    fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        Engine::run_observed(self, round_limit, obs)
    }

    fn signal(&mut self, signal: Signal) {
        Engine::signal(self, signal)
    }

    fn run(&mut self, round_limit: u64) -> RunOutcome {
        Engine::run(self, round_limit)
    }
}

impl<P: Protocol> Executor<P> for ThreadedEngine<P> {
    fn graph(&self) -> &Arc<Graph> {
        ThreadedEngine::graph(self)
    }

    fn round(&self) -> u64 {
        ThreadedEngine::round(self)
    }

    fn metrics(&self) -> &Metrics {
        ThreadedEngine::metrics(self)
    }

    fn nodes(&self) -> &[P] {
        ThreadedEngine::nodes(self)
    }

    fn in_flight(&self) -> u64 {
        ThreadedEngine::in_flight(self)
    }

    fn peak_arena_slots(&self) -> u64 {
        ThreadedEngine::peak_arena_slots(self)
    }

    fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        ThreadedEngine::run_observed(self, round_limit, obs)
    }

    fn signal(&mut self, signal: Signal) {
        ThreadedEngine::signal(self, signal)
    }

    fn run(&mut self, round_limit: u64) -> RunOutcome {
        ThreadedEngine::run(self, round_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::testing::FloodMax;
    use welle_graph::gen;

    /// A driver written once against the trait.
    fn drive<E: Executor<FloodMax>>(e: &mut E) -> (u64, u64) {
        let out = e.run(10_000);
        assert!(out.is_done());
        (e.metrics().messages, e.round())
    }

    #[test]
    fn both_executors_serve_the_same_driver() {
        let g = Arc::new(gen::hypercube(5).unwrap());
        let mk = || (0..g.n()).map(|i| FloodMax::new(i as u64)).collect::<Vec<_>>();
        let mut serial = Engine::new(Arc::clone(&g), mk(), EngineConfig::default());
        let mut threaded =
            ThreadedEngine::new(Arc::clone(&g), mk(), EngineConfig::default(), 3);
        assert_eq!(drive(&mut serial), drive(&mut threaded));
        assert_eq!(Executor::graph(&serial).n(), 32);
        assert_eq!(Executor::in_flight(&serial), 0);
    }
}
