//! A single driving API over both executors.
//!
//! High-level drivers (election runners, experiment harnesses) are
//! written once against [`Executor`] and run unchanged on the
//! event-driven [`crate::Engine`] or the dense sharded
//! [`crate::ThreadedEngine`] — the two produce identical executions for
//! protocols honouring the [`crate::Protocol`] no-op contract, so the
//! choice is purely a performance trade-off (idle-round skipping versus
//! parallel protocol phases).

use std::sync::Arc;

use welle_graph::Graph;

use crate::engine::{Engine, RunOutcome};
use crate::metrics::{Metrics, NoopObserver, TransmitObserver};
use crate::protocol::{Protocol, Signal};
use crate::threaded::ThreadedEngine;

/// Common interface of the CONGEST executors.
///
/// Everything a driver needs: run rounds (optionally observed),
/// broadcast signals between runs, and inspect the outcome.
pub trait Executor<P: Protocol> {
    /// The simulated network.
    fn graph(&self) -> &Arc<Graph>;

    /// Current round.
    fn round(&self) -> u64;

    /// Traffic metrics accumulated so far.
    fn metrics(&self) -> &Metrics;

    /// Immutable view of the protocol instances.
    fn nodes(&self) -> &[P];

    /// Messages queued for transmission (current-round sends plus edge
    /// backlog), not yet delivered.
    fn in_flight(&self) -> usize;

    /// Runs until done/quiescent/limit, notifying `obs` of every
    /// transmission; see [`Engine::run`] for the semantics.
    fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome;

    /// Broadcasts a control signal to every node (see
    /// [`crate::Protocol::on_signal`]).
    fn signal(&mut self, signal: Signal);

    /// Runs until done/quiescent/limit with no observer.
    fn run(&mut self, round_limit: u64) -> RunOutcome {
        self.run_observed(round_limit, &mut NoopObserver)
    }
}

impl<P: Protocol> Executor<P> for Engine<P> {
    fn graph(&self) -> &Arc<Graph> {
        Engine::graph(self)
    }

    fn round(&self) -> u64 {
        Engine::round(self)
    }

    fn metrics(&self) -> &Metrics {
        Engine::metrics(self)
    }

    fn nodes(&self) -> &[P] {
        Engine::nodes(self)
    }

    fn in_flight(&self) -> usize {
        Engine::in_flight(self)
    }

    fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        Engine::run_observed(self, round_limit, obs)
    }

    fn signal(&mut self, signal: Signal) {
        Engine::signal(self, signal)
    }

    fn run(&mut self, round_limit: u64) -> RunOutcome {
        Engine::run(self, round_limit)
    }
}

impl<P: Protocol> Executor<P> for ThreadedEngine<P> {
    fn graph(&self) -> &Arc<Graph> {
        ThreadedEngine::graph(self)
    }

    fn round(&self) -> u64 {
        ThreadedEngine::round(self)
    }

    fn metrics(&self) -> &Metrics {
        ThreadedEngine::metrics(self)
    }

    fn nodes(&self) -> &[P] {
        ThreadedEngine::nodes(self)
    }

    fn in_flight(&self) -> usize {
        ThreadedEngine::in_flight(self)
    }

    fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        ThreadedEngine::run_observed(self, round_limit, obs)
    }

    fn signal(&mut self, signal: Signal) {
        ThreadedEngine::signal(self, signal)
    }

    fn run(&mut self, round_limit: u64) -> RunOutcome {
        ThreadedEngine::run(self, round_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::testing::FloodMax;
    use welle_graph::gen;

    /// A driver written once against the trait.
    fn drive<E: Executor<FloodMax>>(e: &mut E) -> (u64, u64) {
        let out = e.run(10_000);
        assert!(out.is_done());
        (e.metrics().messages, e.round())
    }

    #[test]
    fn both_executors_serve_the_same_driver() {
        let g = Arc::new(gen::hypercube(5).unwrap());
        let mk = || (0..g.n()).map(|i| FloodMax::new(i as u64)).collect::<Vec<_>>();
        let mut serial = Engine::new(Arc::clone(&g), mk(), EngineConfig::default());
        let mut threaded =
            ThreadedEngine::new(Arc::clone(&g), mk(), EngineConfig::default(), 3);
        assert_eq!(drive(&mut serial), drive(&mut threaded));
        assert_eq!(Executor::graph(&serial).n(), 32);
        assert_eq!(Executor::in_flight(&serial), 0);
    }
}
