//! Sharded, multi-threaded executor with identical semantics to
//! [`crate::Engine`].
//!
//! [`ThreadedEngine`] wraps an inner [`Engine`] and adds a parallel
//! execution layer: the network is split into contiguous node shards,
//! one per worker thread, and workers are spawned **once per run** and
//! parked on a shared round barrier. Each parallel round costs two
//! barrier crossings — a protocol phase over the shards, then a serial
//! merge + transmit phase on the driving thread — instead of the
//! thread-spawn-per-round of the previous implementation.
//!
//! Rounds whose protocol phase is too sparse to amortize a barrier
//! crossing run inline on the driving thread (see
//! [`ThreadedEngine::set_inline_cutoff`]); on single-core hosts, where
//! the barrier can never pay off, the engine delegates whole runs to
//! the inner serial engine. All paths execute the same algorithm in
//! the same order: leader identities, message counts, and metrics are
//! bit-identical across thread counts and to the serial engine, for
//! protocols that honour the [`crate::Protocol`] no-op contract.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::DerefMut;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use rand::rngs::StdRng;
use welle_graph::{Graph, NodeId, Port};

use crate::engine::{Engine, EngineConfig, RunOutcome, Transmitter};
use crate::faults::{CompiledFaultPlan, CompiledFaults, FaultError, FaultPlan};
use crate::metrics::{Metrics, NoopObserver, TransmitObserver};
use crate::protocol::{Context, Protocol, Signal};
use crate::queues::DirBatch;
use crate::telemetry::{SpanStage, TelemetryConfig, TelemetryReport};

/// Worker command: simulate one round (`on_round` phase).
const CMD_ROUND: u8 = 0;
/// Worker command: run the start-up round (`on_start` phase).
const CMD_START: u8 = 1;
/// Worker command: leave the worker loop (end of the run call).
const CMD_EXIT: u8 = 2;

/// Default per-shard callback-count cutoff below which a round's
/// protocol phase runs inline on the driving thread: two barrier
/// crossings cost more than a few dozen cheap callbacks, so sparse
/// rounds (drain tails, wake-up ticks) skip the hand-off and the
/// workers stay parked.
const INLINE_WORK_PER_SHARD: usize = 64;

/// Round-invariant environment of a protocol phase, shared by every
/// callback: the network, its size, the CONGEST budget, and the
/// compiled fault schedule (if any).
struct PhaseEnv<'a> {
    graph: &'a Graph,
    n_total: usize,
    budget: Option<usize>,
    faults: Option<&'a CompiledFaults>,
}

/// One worker's contiguous slice of the network:
/// nodes `base..base + nodes.len()`.
struct Shard<P: Protocol> {
    base: usize,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    inboxes: Vec<Vec<(Port, P::Msg)>>,
    /// Pending wake-ups as `(round, local index)`; exact multiset
    /// semantics, matching the serial engine's heap.
    wakeups: BinaryHeap<Reverse<(u64, u32)>>,
    done_flags: Vec<bool>,
    done_count: usize,
    /// Local indices with a nonempty inbox, filled by the merge phase.
    active: Vec<u32>,
    /// Membership flags for `active`/`todo` (the serial engine's
    /// `inbox_flag`): keeps them duplicate-free without a dedup pass.
    flags: Vec<bool>,
    /// Sends of the last protocol phase: `(directed_index, msg)`, in
    /// node (= send) order (struct-of-arrays, like the engine buffers).
    outbox: DirBatch<P::Msg>,
    /// Per-node send counts of the last phase, `(local index, count)`.
    sent_log: Vec<(u32, u32)>,
    /// Earliest pending wake after the last protocol phase.
    next_wake: Option<u64>,
    /// Whether any protocol callback ran in the last phase.
    ran: bool,
    todo: Vec<u32>,
    /// Callbacks run since the counter was last drained (crashed nodes
    /// excluded) — the shard's share of a telemetry sample's
    /// `active_nodes`. Drained by the merge phase when telemetry is on.
    calls: u64,
    /// Maximum phase tag pulled (via [`Protocol::phase_tag`]) since the
    /// last drain; merged across shards by the merge phase.
    phase_seen: Option<u8>,
}

impl<P: Protocol> Shard<P> {
    /// Runs the protocol phase of one round on this shard's nodes.
    fn run_phase(&mut self, env: &PhaseEnv<'_>, starting: bool, round: u64) {
        debug_assert!(self.outbox.is_empty());
        if starting {
            self.ran = !self.nodes.is_empty();
            for local in 0..self.nodes.len() {
                self.call(env, round, local, true);
            }
        } else {
            let mut todo = std::mem::take(&mut self.todo);
            todo.clear();
            todo.append(&mut self.active);
            while let Some(&Reverse((r, local))) = self.wakeups.peek() {
                if r <= round {
                    self.wakeups.pop();
                    if !self.flags[local as usize] {
                        self.flags[local as usize] = true;
                        todo.push(local);
                    }
                } else {
                    break;
                }
            }
            // Deterministic local order: linear flag scan when dense,
            // sort when sparse (mirrors the serial engine).
            if todo.len() >= self.nodes.len() / 8 {
                todo.clear();
                for (local, flag) in self.flags.iter().enumerate() {
                    if *flag {
                        todo.push(crate::idx32(local));
                    }
                }
            } else {
                todo.sort_unstable();
            }
            self.ran = !todo.is_empty();
            for &local in &todo {
                self.flags[local as usize] = false;
                self.call(env, round, local as usize, false);
            }
            self.todo = todo;
        }
        self.next_wake = self.wakeups.peek().map(|&Reverse((r, _))| r);
    }

    fn call(&mut self, env: &PhaseEnv<'_>, round: u64, local: usize, starting: bool) {
        if let Some(c) = env.faults {
            if c.is_crashed(self.base + local, round) {
                // Crash-stop, mirroring the serial engine exactly: no
                // callback, no sends, and the pending inbox is lost.
                self.inboxes[local].clear();
                return;
            }
        }
        self.calls += 1;
        let u = NodeId::new(self.base + local);
        let mut wake = None;
        let sent;
        {
            let mut ctx = Context {
                round,
                n: env.n_total,
                degree: env.graph.degree(u),
                dir_base: crate::idx32(env.graph.directed_base(u)),
                budget: env.budget,
                sent: 0,
                rng: &mut self.rngs[local],
                sends: &mut self.outbox,
                wake: &mut wake,
            };
            if starting {
                self.nodes[local].on_start(&mut ctx);
            } else {
                let mut inbox = std::mem::take(&mut self.inboxes[local]);
                self.nodes[local].on_round(&mut ctx, &mut inbox);
                inbox.clear();
                self.inboxes[local] = inbox; // recycle the allocation
            }
            sent = ctx.sent;
        }
        if sent > 0 {
            self.sent_log.push((crate::idx32(local), sent));
        }
        if let Some(r) = wake {
            self.wakeups
                .push(Reverse((r.max(round + 1), crate::idx32(local))));
        }
        let done_now = self.nodes[local].is_done();
        if done_now != self.done_flags[local] {
            self.done_flags[local] = done_now;
            if done_now {
                self.done_count += 1;
            } else {
                self.done_count -= 1;
            }
        }
        // The phase-observer pull, mirroring the serial engine's
        // `run_callback` (max-merge: order-free across shards too).
        if let Some(tag) = self.nodes[local].phase_tag() {
            self.phase_seen = Some(match self.phase_seen {
                Some(cur) => cur.max(tag),
                None => tag,
            });
        }
    }
}

/// Aggregates the driving thread reads back after each merge phase.
struct RoundAgg {
    inbox_total: usize,
    done_total: usize,
    min_wake: Option<u64>,
    /// Total pending wake-up entries across shards (due or not).
    wake_entries: usize,
}

/// The executor-specific delivery sink for [`Transmitter`]: routes a
/// delivered message to the owning shard's inbox and maintains the
/// shard's active list (and the driver's nonempty-inbox count).
fn shard_sink<'v, 's, P: Protocol>(
    views: &'v mut [&'s mut Shard<P>],
    shard_len: usize,
    inbox_total: &'v mut usize,
) -> impl FnMut(NodeId, Port, P::Msg) + use<'v, 's, P> {
    move |v, q, msg| {
        let shard = &mut *views[v.index() / shard_len];
        let local = v.index() - shard.base;
        shard.inboxes[local].push((q, msg));
        if !shard.flags[local] {
            shard.flags[local] = true;
            shard.active.push(crate::idx32(local));
            *inbox_total += 1;
        }
    }
}

/// Releases barrier-parked workers if the driving thread unwinds
/// mid-run (e.g. an observer panic in the merge phase): every worker
/// is parked on the round barrier between rounds, so one `EXIT` + wait
/// lets them all leave before `thread::scope` joins.
struct ExitGuard<'a> {
    cmd: &'a AtomicU8,
    barrier: &'a Barrier,
}

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        self.cmd.store(CMD_EXIT, Ordering::SeqCst);
        self.barrier.wait();
    }
}

/// Sharded multi-threaded executor. See the module docs for the
/// trade-offs versus [`crate::Engine`].
#[derive(Debug)]
pub struct ThreadedEngine<P: Protocol> {
    inner: Engine<P>,
    threads: usize,
    /// See [`ThreadedEngine::set_inline_cutoff`].
    inline_cutoff: usize,
}

impl<P: Protocol> ThreadedEngine<P> {
    /// Creates a threaded engine with `threads` worker threads
    /// (`threads = 1` delegates runs to the serial engine inline).
    ///
    /// Node RNGs are derived once here — not per round — so repeated
    /// `run` calls continue the same random streams.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.n()` or `threads == 0`.
    pub fn new(graph: Arc<Graph>, nodes: Vec<P>, cfg: EngineConfig, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        ThreadedEngine {
            inner: Engine::new(graph, nodes, cfg),
            threads,
            // A machine with a single hardware thread gains nothing from
            // handing work to workers — run everything inline there.
            inline_cutoff: match std::thread::available_parallelism() {
                Ok(p) if p.get() > 1 => INLINE_WORK_PER_SHARD,
                _ => usize::MAX,
            },
        }
    }

    /// Creates a threaded engine with protocols built per node index.
    pub fn from_fn(
        graph: Arc<Graph>,
        cfg: EngineConfig,
        threads: usize,
        mut make: impl FnMut(usize) -> P,
    ) -> Self {
        let nodes = (0..graph.n()).map(&mut make).collect();
        ThreadedEngine::new(graph, nodes, cfg, threads)
    }

    /// Installs adversarial network conditions; see
    /// [`Engine::set_fault_plan`]. The schedule is shared with the
    /// worker threads, and execution stays bit-identical to the serial
    /// engine under the same plan.
    ///
    /// # Errors
    ///
    /// A [`FaultError`] when the plan does not fit the graph.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        self.inner.set_fault_plan(plan)
    }

    /// Installs an already-compiled fault plan in `O(1)`; see
    /// [`Engine::set_compiled_faults`].
    pub fn set_compiled_faults(&mut self, plan: &CompiledFaultPlan) {
        self.inner.set_compiled_faults(plan)
    }

    /// Installs the telemetry layer; see [`Engine::set_telemetry`]. The
    /// recorded sample stream is bit-identical to the serial engine's
    /// for any thread count or inline cutoff.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.inner.set_telemetry(cfg)
    }

    /// Removes the telemetry layer and returns everything it recorded;
    /// see [`Engine::take_telemetry`].
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        self.inner.take_telemetry()
    }

    /// Overrides the per-shard callback-count cutoff below which a
    /// round's protocol phase runs inline on the driving thread instead
    /// of crossing the round barrier. `0` forces every round through the
    /// workers; `usize::MAX` keeps whole runs inline. The default is
    /// tuned automatically (and is `usize::MAX` on single-core hosts,
    /// where the barrier can never pay off). Execution results are
    /// identical either way — this is purely a scheduling knob.
    pub fn set_inline_cutoff(&mut self, per_shard: usize) {
        self.inline_cutoff = per_shard;
    }

    /// Current round.
    pub fn round(&self) -> u64 {
        self.inner.round()
    }

    /// The simulated network.
    pub fn graph(&self) -> &Arc<Graph> {
        self.inner.graph()
    }

    /// Traffic metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        self.inner.metrics()
    }

    /// Messages queued for transmission, not yet delivered.
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight()
    }

    /// Peak queued-message population; see [`Engine::peak_arena_slots`].
    pub fn peak_arena_slots(&self) -> u64 {
        self.inner.peak_arena_slots()
    }

    /// Caps the transmission scratch of the serial merge phase; see
    /// [`Engine::set_transmit_chunk`].
    pub fn set_transmit_chunk(&mut self, limit: usize) {
        self.inner.set_transmit_chunk(limit);
    }

    /// Immutable view of the protocol instances.
    pub fn nodes(&self) -> &[P] {
        self.inner.nodes()
    }

    /// The protocol instance at node `i`.
    pub fn node(&self, i: usize) -> &P {
        self.inner.node(i)
    }

    /// Consumes the engine, returning the protocol instances.
    pub fn into_nodes(self) -> Vec<P> {
        self.inner.into_nodes()
    }

    /// Broadcasts a control signal to every node (see
    /// [`crate::Protocol::on_signal`]); resulting sends are transmitted
    /// starting with the next round. Runs inline — callers signal
    /// between `run` calls, never during one.
    pub fn signal(&mut self, signal: Signal) {
        self.inner.signal(signal);
    }

    /// Runs until done/quiescent or the round limit; see
    /// [`crate::Engine::run`] for the semantics.
    pub fn run(&mut self, round_limit: u64) -> RunOutcome {
        self.run_core(round_limit, &mut NoopObserver)
    }

    /// Like [`ThreadedEngine::run`] with a transmission observer.
    pub fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        self.run_core(round_limit, obs)
    }

    /// The run loop. Whole-run-inline mode delegates to the serial
    /// engine (same state, same algorithm); otherwise per-node state is
    /// split into shards, workers are spawned once, and rounds are
    /// driven over the barrier until the run ends and state is
    /// reassembled.
    fn run_core<O: TransmitObserver + ?Sized>(
        &mut self,
        round_limit: u64,
        obs: &mut O,
    ) -> RunOutcome {
        if self.threads == 1 || self.inline_cutoff == usize::MAX {
            return self.inner.run_core(round_limit, obs, |_| false);
        }
        let n = self.inner.graph.n();
        let shard_len = n.div_ceil(self.threads).max(1);
        let shards = self.take_shards(shard_len);
        let agg = RoundAgg {
            inbox_total: shards.iter().map(|s| s.active.len()).sum(),
            done_total: shards.iter().map(|s| s.done_count).sum(),
            min_wake: shards.iter().filter_map(|s| s.next_wake).min(),
            wake_entries: shards.iter().map(|s| s.wakeups.len()).sum(),
        };
        let cells: Vec<Mutex<Shard<P>>> = shards.into_iter().map(Mutex::new).collect();
        let outcome = self.run_sharded(&cells, round_limit, obs, agg);
        self.restore_shards(
            cells
                .into_iter()
                .map(|c| match c.into_inner() {
                    Ok(s) => s,
                    Err(poisoned) => poisoned.into_inner(),
                })
                .collect(),
        );
        outcome
    }

    /// Barrier-driven run loop over the shards.
    fn run_sharded<O: TransmitObserver + ?Sized>(
        &mut self,
        cells: &[Mutex<Shard<P>>],
        round_limit: u64,
        obs: &mut O,
        mut agg: RoundAgg,
    ) -> RunOutcome {
        let n = self.inner.graph.n();
        let budget = self.inner.cfg.bandwidth_bits;
        let barrier = Barrier::new(cells.len() + 1);
        let cmd = AtomicU8::new(CMD_ROUND);
        let round_now = AtomicU64::new(self.inner.round);
        // A worker panic is caught so the barrier protocol stays intact,
        // its payload parked here, and re-raised on the driving thread —
        // the original message (e.g. a CONGEST-budget assert from
        // `Context::send`) must not be lost.
        let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let graph = Arc::clone(&self.inner.graph);
        let compiled = self.inner.compiled_faults();

        std::thread::scope(|scope| {
            for cell in cells {
                let barrier = &barrier;
                let cmd = &cmd;
                let round_now = &round_now;
                let panicked = &panicked;
                let graph = &graph;
                let compiled = &compiled;
                scope.spawn(move || loop {
                    barrier.wait();
                    let c = cmd.load(Ordering::SeqCst);
                    if c == CMD_EXIT {
                        break;
                    }
                    let r = round_now.load(Ordering::SeqCst);
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let env = PhaseEnv {
                            graph,
                            n_total: n,
                            budget,
                            faults: compiled.as_deref(),
                        };
                        // Poison recovery: a prior panic is already
                        // captured in `panicked` and re-raised by the
                        // coordinator, so the flag adds nothing here.
                        let mut shard = cell
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        shard.run_phase(&env, c == CMD_START, r);
                    }));
                    if let Err(payload) = result {
                        *panicked
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(payload);
                    }
                    barrier.wait();
                });
            }

            // Sends EXIT + one barrier crossing when the loop below ends
            // — normally or by unwinding — so workers always get
            // released before `thread::scope` joins them.
            let _exit = ExitGuard {
                cmd: &cmd,
                barrier: &barrier,
            };
            loop {
                if let Some(out) = self.check_stopped(&agg, round_limit) {
                    break out;
                }
                let starting = !self.inner.started;
                self.inner.started = true;
                let t_round = self
                    .inner
                    .telemetry
                    .as_deref_mut()
                    .and_then(|t| t.begin(SpanStage::Round));
                // From the coordinator's view the callback span covers
                // the whole protocol phase — barrier crossings included.
                let t_cb = self
                    .inner
                    .telemetry
                    .as_deref_mut()
                    .and_then(|t| t.begin(SpanStage::Callbacks));
                // Upper bound on the callbacks this round will run.
                let work = if starting {
                    n
                } else {
                    agg.inbox_total
                        + if agg.min_wake.is_some_and(|r| r <= self.inner.round) {
                            agg.wake_entries
                        } else {
                            0
                        }
                };
                let inline = work <= self.inline_cutoff.saturating_mul(cells.len());
                if !inline {
                    cmd.store(if starting { CMD_START } else { CMD_ROUND }, Ordering::SeqCst);
                    round_now.store(self.inner.round, Ordering::SeqCst);
                    barrier.wait(); // workers run the protocol phase
                    barrier.wait(); // workers finished
                    let payload = panicked
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take();
                    if let Some(payload) = payload {
                        resume_unwind(payload);
                    }
                }
                let mut guards: Vec<_> = cells
                    .iter()
                    .map(|c| c.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
                    .collect();
                if inline {
                    // Sparse round: run the phase inline, workers stay
                    // parked on the barrier. Same code path, same order.
                    let env = PhaseEnv {
                        graph: &graph,
                        n_total: n,
                        budget,
                        faults: compiled.as_deref(),
                    };
                    for guard in guards.iter_mut() {
                        guard.run_phase(&env, starting, self.inner.round);
                    }
                }
                let mut callbacks_run = 0u64;
                if self.inner.telemetry.is_some() {
                    for guard in guards.iter_mut() {
                        callbacks_run += guard.calls;
                        guard.calls = 0;
                    }
                    if let Some(t) = self.inner.telemetry.as_deref_mut() {
                        t.end(SpanStage::Callbacks, t_cb, callbacks_run);
                    }
                }
                agg = self.merge_and_transmit(&mut guards, starting, obs, callbacks_run, t_round);
                drop(guards);
                self.inner.round += 1;
            }
        })
    }

    /// Pre-round bookkeeping shared with the serial engine: idle
    /// detection (skipping ahead to the next wake in `O(1)`),
    /// termination, and the round limit. Returns `Some` when the run is
    /// over.
    fn check_stopped(&mut self, agg: &RoundAgg, round_limit: u64) -> Option<RunOutcome> {
        if self.inner.started {
            let round = self.inner.round;
            let drained = agg.inbox_total == 0
                && self.inner.pending.is_empty()
                && self.inner.queues.in_flight() == 0;
            let parked = self.inner.faults.as_ref().map_or(0, |f| f.parked());
            if drained && parked == 0 {
                if agg.done_total == self.inner.graph.n() {
                    return Some(RunOutcome::Done { round });
                }
                match agg.min_wake {
                    None => return Some(RunOutcome::Quiescent { round }),
                    Some(r) => {
                        if r > round {
                            self.inner.round = r;
                        }
                    }
                }
            } else if drained {
                // Only fault-parked messages remain: the serial engine's
                // O(1) skip to the earlier of next release and next wake.
                let due = self
                    .inner
                    .faults
                    .as_ref()
                    .and_then(|f| f.next_due())
                    // welle-lint: allow(no-lib-unwrap) — invariant: the `!drained` branch above established parked > 0, and every parked message carries a due round
                    .expect("parked > 0 implies a next due round");
                let target = match agg.min_wake {
                    Some(r) => due.min(r),
                    None => due,
                };
                if target > round {
                    self.inner.round = target;
                }
            }
        }
        // Re-read the round: an idle skip above may have moved it past
        // the limit, and the serial engine stops in that case too.
        if self.inner.round >= round_limit {
            return Some(RunOutcome::RoundLimit {
                round: self.inner.round,
            });
        }
        None
    }

    /// The serial half of a round: transmit the backlog, drain any
    /// signal sends, then every shard's fresh sends in node order
    /// (determinism); deliver into shard inboxes and collect the
    /// aggregates.
    fn merge_and_transmit<O: TransmitObserver + ?Sized>(
        &mut self,
        shards: &mut [impl DerefMut<Target = Shard<P>>],
        starting: bool,
        obs: &mut O,
        callbacks_run: u64,
        t_round: Option<std::time::Instant>,
    ) -> RoundAgg {
        let shard_len = shards[0].nodes.len().max(1);
        let mut any_activity = starting;
        let mut transmitted = false;

        // Backlogged edges deliver their queue head first (pumped in
        // bounded chunks) — exactly the serial engine's order; the
        // discipline itself is the shared [`Transmitter`], only the
        // shard-routed inbox sink is ours.
        let mut scratch = std::mem::take(&mut self.inner.deliveries);
        let mut pending = std::mem::take(&mut self.inner.pending);
        let mut faults = self.inner.faults.take();
        let chunk = self.inner.chunk_limit;
        transmitted |= self.inner.queues.in_flight() > 0
            || !pending.is_empty()
            || faults.as_ref().is_some_and(|f| f.due_now(self.inner.round));
        let mut inbox_total = 0usize;
        let mut tel = self.inner.telemetry.take();
        let t_deliver = tel.as_deref_mut().and_then(|t| t.begin(SpanStage::Deliver));
        let flow;
        {
            let mut tx = Transmitter::new(
                &self.inner.graph,
                &mut self.inner.queues,
                &mut self.inner.last_carried,
                self.inner.round,
            );
            let mut views: Vec<&mut Shard<P>> =
                shards.iter_mut().map(|s| s.deref_mut()).collect();
            {
                let mut sink = shard_sink(&mut views, shard_len, &mut inbox_total);
                match faults.as_deref_mut() {
                    None => {
                        tx.pump_backlog(&mut scratch, chunk, obs, &mut sink);
                        // Signal sends queued between runs (see
                        // `Engine::signal`).
                        for (dir, msg) in pending.drain() {
                            tx.offer(dir as usize, msg, obs, &mut sink);
                        }
                    }
                    Some(fs) => {
                        tx.release_due(fs, obs, &mut sink);
                        tx.pump_backlog_faulty(fs, &mut scratch, chunk, obs, &mut sink);
                        for (dir, msg) in pending.drain() {
                            tx.offer_faulty(fs, dir as usize, msg, obs, &mut sink);
                        }
                    }
                }
            }

            // Then the round's fresh sends, in shard (= node) order:
            // deliver directly when the edge is idle this round, join
            // the backlog otherwise.
            for s in 0..views.len() {
                any_activity |= views[s].ran;
                if let Some(tag) = views[s].phase_seen.take() {
                    self.inner.phase_seen = Some(match self.inner.phase_seen {
                        Some(cur) => cur.max(tag),
                        None => tag,
                    });
                }
                let base = views[s].base;
                while let Some((local, cnt)) = views[s].sent_log.pop() {
                    self.inner.metrics.sent_by_node[base + local as usize] += cnt as u64;
                }
                let mut outbox = std::mem::take(&mut views[s].outbox);
                transmitted |= !outbox.is_empty();
                {
                    let mut sink = shard_sink(&mut views, shard_len, &mut inbox_total);
                    match faults.as_deref_mut() {
                        None => {
                            for (dir, msg) in outbox.drain() {
                                tx.offer(dir as usize, msg, obs, &mut sink);
                            }
                        }
                        Some(fs) => {
                            for (dir, msg) in outbox.drain() {
                                tx.offer_faulty(fs, dir as usize, msg, obs, &mut sink);
                            }
                        }
                    }
                }
                views[s].outbox = outbox; // recycle the allocation
            }
            flow = tx.finish(&mut self.inner.metrics);
        }
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Deliver, t_deliver, flow.messages);
        }
        self.inner.faults = faults;
        self.inner.deliveries = scratch;
        self.inner.pending = pending;

        if any_activity || transmitted {
            self.inner.metrics.active_rounds += 1;
            if let Some(t) = tel.as_deref_mut() {
                let parked = self.inner.faults.as_ref().map_or(0, |f| f.parked()) as u64;
                let tick = self
                    .inner
                    .round
                    .saturating_add(1)
                    .saturating_mul(crate::latency::TICKS_PER_ROUND);
                t.end_round(
                    self.inner.round,
                    self.inner.phase_seen.take(),
                    callbacks_run,
                    &flow,
                    parked,
                    tick,
                );
            }
        }
        if let Some(t) = tel.as_deref_mut() {
            t.end(SpanStage::Round, t_round, callbacks_run + flow.messages);
        }
        self.inner.telemetry = tel;

        RoundAgg {
            inbox_total,
            done_total: shards.iter().map(|s| s.done_count).sum(),
            min_wake: shards.iter().filter_map(|s| s.next_wake).min(),
            wake_entries: shards.iter().map(|s| s.wakeups.len()).sum(),
        }
    }

    /// Moves the inner engine's per-node state into contiguous shards of
    /// `shard_len` nodes each.
    fn take_shards(&mut self, shard_len: usize) -> Vec<Shard<P>> {
        let inner = &mut self.inner;
        let n = inner.graph.n();
        let num_shards = n.div_ceil(shard_len).max(1);
        let mut nodes = std::mem::take(&mut inner.nodes);
        let mut rngs = std::mem::take(&mut inner.rngs);
        let mut inboxes = std::mem::take(&mut inner.inboxes);
        let mut done_flags = std::mem::take(&mut inner.done_flags);
        let mut flags = std::mem::take(&mut inner.inbox_flag);
        let mut shards: Vec<Shard<P>> = Vec::with_capacity(num_shards);
        // Split from the back so each split_off is O(shard size).
        for s in (0..num_shards).rev() {
            let base = s * shard_len;
            let shard_done = done_flags.split_off(base);
            let done_count = shard_done.iter().filter(|&&d| d).count();
            shards.push(Shard {
                base,
                nodes: nodes.split_off(base),
                rngs: rngs.split_off(base),
                inboxes: inboxes.split_off(base),
                wakeups: BinaryHeap::new(),
                done_flags: shard_done,
                done_count,
                active: Vec::new(),
                flags: flags.split_off(base),
                outbox: DirBatch::new(),
                sent_log: Vec::new(),
                next_wake: None,
                ran: false,
                todo: Vec::new(),
                calls: 0,
                phase_seen: None,
            });
        }
        shards.reverse();
        for i in std::mem::take(&mut inner.inbox_active) {
            let s = i as usize / shard_len;
            let base = crate::idx32(shards[s].base);
            shards[s].active.push(i - base);
        }
        for Reverse((r, i)) in std::mem::take(&mut inner.wakeups) {
            let s = i as usize / shard_len;
            let base = crate::idx32(shards[s].base);
            shards[s].wakeups.push(Reverse((r, i - base)));
        }
        for shard in &mut shards {
            shard.next_wake = shard.wakeups.peek().map(|&Reverse((r, _))| r);
        }
        shards
    }

    /// Moves shard state back into the inner engine after a run.
    fn restore_shards(&mut self, shards: Vec<Shard<P>>) {
        let inner = &mut self.inner;
        inner.done_count = 0;
        for shard in shards {
            let base = crate::idx32(shard.base);
            inner.nodes.extend(shard.nodes);
            inner.rngs.extend(shard.rngs);
            inner.inboxes.extend(shard.inboxes);
            inner.done_flags.extend(shard.done_flags);
            inner.inbox_flag.extend(shard.flags);
            inner.done_count += shard.done_count;
            for &local in &shard.active {
                inner.inbox_active.push(base + local);
            }
            for Reverse((r, local)) in shard.wakeups {
                inner.wakeups.push(Reverse((r, base + local)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::FloodMax;
    use welle_graph::gen;

    fn graph() -> Arc<Graph> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        Arc::new(gen::random_regular(48, 4, &mut rng).unwrap())
    }
    use rand::SeedableRng;

    #[test]
    fn matches_serial_engine_exactly() {
        let g = graph();
        let cfg = EngineConfig {
            seed: 99,
            bandwidth_bits: None,
        };
        let mk = |_: usize| -> Vec<FloodMax> {
            (0..g.n()).map(|i| FloodMax::new((i * 7 % 48) as u64)).collect()
        };
        let mut serial = Engine::new(Arc::clone(&g), mk(0), cfg);
        let serial_out = serial.run(100_000);

        for threads in [1usize, 3, 8] {
            let mut par = ThreadedEngine::new(Arc::clone(&g), mk(0), cfg, threads);
            let par_out = par.run(100_000);
            assert_eq!(serial_out.is_done(), par_out.is_done());
            assert_eq!(serial.metrics().messages, par.metrics().messages);
            assert_eq!(serial.metrics().bits, par.metrics().bits);
            for (a, b) in serial.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.best(), b.best());
            }
        }
    }

    #[test]
    fn flood_converges_with_threads() {
        let g = graph();
        let nodes = (0..g.n()).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = ThreadedEngine::new(g, nodes, EngineConfig::default(), 4);
        let out = e.run(10_000);
        assert!(out.is_done());
        assert!(e.nodes().iter().all(|n| n.best() == 47));
    }

    #[test]
    fn single_thread_equals_multi() {
        let g = graph();
        let cfg = EngineConfig::default();
        let mut one = ThreadedEngine::new(
            Arc::clone(&g),
            (0..g.n()).map(|i| FloodMax::new(i as u64)).collect(),
            cfg,
            1,
        );
        let mut many = ThreadedEngine::new(
            Arc::clone(&g),
            (0..g.n()).map(|i| FloodMax::new(i as u64)).collect(),
            cfg,
            6,
        );
        one.run(10_000);
        many.run(10_000);
        assert_eq!(one.metrics().messages, many.metrics().messages);
        assert_eq!(one.round(), many.round());
    }

    #[test]
    fn barrier_path_matches_serial_engine() {
        // Force every round through the workers (cutoff 0), whatever the
        // host's core count, so the barrier path is always exercised.
        let g = graph();
        let cfg = EngineConfig {
            seed: 7,
            bandwidth_bits: None,
        };
        let mk = || (0..g.n()).map(|i| FloodMax::new(i as u64)).collect::<Vec<_>>();
        let mut serial = Engine::new(Arc::clone(&g), mk(), cfg);
        serial.run(100_000);
        for threads in [2usize, 5] {
            let mut par = ThreadedEngine::new(Arc::clone(&g), mk(), cfg, threads);
            par.set_inline_cutoff(0);
            let out = par.run(100_000);
            assert!(out.is_done());
            assert_eq!(serial.metrics().messages, par.metrics().messages);
            assert_eq!(serial.round(), par.round());
            for (a, b) in serial.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.best(), b.best());
            }
        }
    }

    #[test]
    fn worker_panic_payload_reaches_the_driver() {
        use crate::protocol::Context;
        use welle_graph::Port;

        struct Oversized;
        impl Protocol for Oversized {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.send(Port::new(0), 1); // u64 claims 64 bits
            }
            fn on_round(&mut self, _: &mut Context<'_, u64>, i: &mut Vec<(Port, u64)>) {
                i.clear();
            }
        }
        let g = graph();
        let mut e = ThreadedEngine::new(
            Arc::clone(&g),
            (0..g.n()).map(|_| Oversized).collect(),
            EngineConfig {
                seed: 0,
                bandwidth_bits: Some(32),
            },
            2,
        );
        e.set_inline_cutoff(0); // force the barrier path
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            e.run(10);
        }));
        let payload = result.expect_err("oversized message must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("CONGEST budget"),
            "original panic message must survive the worker hand-off, got: {msg:?}"
        );
    }

    #[test]
    fn faulty_runs_are_bit_identical_across_executors() {
        // Drops, crashes, delays, and cuts all live in shared engine
        // state or stateless hashes, so a faulted execution must agree
        // across executors and thread counts exactly like a clean one —
        // including down the forced barrier path.
        let g = graph();
        let cfg = EngineConfig {
            seed: 4,
            bandwidth_bits: None,
        };
        let plan = FaultPlan::new(77)
            .drop_rate(0.3)
            .crash(5, 4)
            .crash_fraction(0.1, 9)
            .delay_all(1)
            .random_delays(2)
            .cut_fraction(0.05, 6);
        let mk = || (0..g.n()).map(|i| FloodMax::new(i as u64)).collect::<Vec<_>>();
        let mut serial = Engine::new(Arc::clone(&g), mk(), cfg);
        serial.set_fault_plan(&plan).unwrap();
        let serial_out = serial.run(100_000);
        for threads in [1usize, 3, 8] {
            let mut par = ThreadedEngine::new(Arc::clone(&g), mk(), cfg, threads);
            par.set_fault_plan(&plan).unwrap();
            par.set_inline_cutoff(0); // force the barrier path
            let par_out = par.run(100_000);
            assert_eq!(serial_out, par_out, "threads = {threads}");
            assert_eq!(serial.metrics().messages, par.metrics().messages);
            assert_eq!(serial.metrics().bits, par.metrics().bits);
            assert_eq!(
                serial.metrics().dropped_messages,
                par.metrics().dropped_messages
            );
            assert_eq!(serial.metrics().crashed_nodes, par.metrics().crashed_nodes);
            for (a, b) in serial.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.best(), b.best());
            }
        }
        assert!(
            serial.metrics().dropped_messages > 0,
            "the plan must actually have bitten for this test to mean anything"
        );
    }

    #[test]
    fn delay_skip_matches_serial_engine() {
        use crate::testing::Echo;
        // The only-parked-messages idle skip must agree across
        // executors: same final round, same active-round count.
        let g = Arc::new(gen::path(2).unwrap());
        let cfg = EngineConfig::default();
        let plan = FaultPlan::new(0).delay_all(700);
        let mk = || vec![Echo::new(true), Echo::new(false)];
        let mut serial = Engine::new(Arc::clone(&g), mk(), cfg);
        serial.set_fault_plan(&plan).unwrap();
        let serial_out = serial.run(100_000);
        let mut par = ThreadedEngine::new(Arc::clone(&g), mk(), cfg, 2);
        par.set_fault_plan(&plan).unwrap();
        par.set_inline_cutoff(0); // force the barrier path
        let par_out = par.run(100_000);
        assert_eq!(serial_out, par_out);
        assert_eq!(serial.metrics().active_rounds, par.metrics().active_rounds);
        assert_eq!(par.node(0).replies_received(), 1);
        assert!(serial.metrics().active_rounds <= 5);
    }

    #[test]
    fn resumed_runs_continue_identically() {
        // Interrupting a run at a round limit and resuming must land in
        // the same final state as one uninterrupted run — including when
        // the resumed run crosses the sharded path.
        let g = graph();
        let cfg = EngineConfig::default();
        let mk = || (0..g.n()).map(|i| FloodMax::new(i as u64)).collect::<Vec<_>>();
        let mut whole = ThreadedEngine::new(Arc::clone(&g), mk(), cfg, 3);
        whole.set_inline_cutoff(0);
        let out_whole = whole.run(10_000);
        let mut pieces = ThreadedEngine::new(Arc::clone(&g), mk(), cfg, 3);
        pieces.set_inline_cutoff(0);
        let mut out = pieces.run(2);
        assert!(matches!(out, RunOutcome::RoundLimit { .. }));
        out = pieces.run(10_000);
        assert_eq!(out_whole.is_done(), out.is_done());
        assert_eq!(whole.metrics().messages, pieces.metrics().messages);
        assert_eq!(whole.round(), pieces.round());
        for (a, b) in whole.nodes().iter().zip(pieces.nodes()) {
            assert_eq!(a.best(), b.best());
        }
    }
}
