//! Dense, multi-threaded executor with identical semantics to
//! [`crate::Engine`].
//!
//! Each round, *all* nodes are scanned (no event-driven skipping); the
//! protocol phase is parallelized over contiguous node chunks with scoped
//! threads. Per-node RNGs make the execution bit-identical to the serial
//! engine for protocols that honour the [`crate::Protocol`] no-op contract.
//! Use this engine when most nodes are active every round (dense floods);
//! use [`crate::Engine`] for schedule-driven protocols with idle stretches.

use std::sync::Arc;

use rand::rngs::StdRng;
use welle_graph::{Graph, NodeId, Port};

use crate::engine::{node_rng, EngineConfig, RunOutcome};
use crate::message::Payload;
use crate::metrics::{Metrics, NoopObserver, TransmitEvent, TransmitObserver};
use crate::protocol::{Context, Protocol};
use crate::queues::EdgeQueues;

/// Multi-threaded dense executor. See the module docs for the trade-offs
/// versus [`crate::Engine`].
#[derive(Debug)]
pub struct ThreadedEngine<P: Protocol> {
    graph: Arc<Graph>,
    cfg: EngineConfig,
    threads: usize,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    queues: EdgeQueues<P::Msg>,
    inboxes: Vec<Vec<(Port, P::Msg)>>,
    outboxes: Vec<Vec<(Port, P::Msg)>>,
    wake_by_node: Vec<Option<u64>>,
    round: u64,
    started: bool,
    metrics: Metrics,
}

impl<P: Protocol> ThreadedEngine<P> {
    /// Creates a threaded engine with `threads` worker threads
    /// (`threads = 1` degenerates to a dense serial engine).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.n()` or `threads == 0`.
    pub fn new(graph: Arc<Graph>, nodes: Vec<P>, cfg: EngineConfig, threads: usize) -> Self {
        assert_eq!(nodes.len(), graph.n(), "one protocol per node");
        assert!(threads > 0, "need at least one worker thread");
        let n = graph.n();
        ThreadedEngine {
            rngs: (0..n).map(|i| node_rng(cfg.seed, i)).collect(),
            queues: EdgeQueues::new(graph.directed_edge_count()),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            outboxes: (0..n).map(|_| Vec::new()).collect(),
            wake_by_node: vec![None; n],
            round: 0,
            started: false,
            metrics: Metrics::new(n),
            graph,
            cfg,
            threads,
            nodes,
        }
    }

    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Traffic metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Immutable view of the protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the engine, returning the protocol instances.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs until done/quiescent or the round limit; see
    /// [`crate::Engine::run`] for the semantics.
    pub fn run(&mut self, round_limit: u64) -> RunOutcome {
        self.run_observed(round_limit, &mut NoopObserver)
    }

    /// Like [`ThreadedEngine::run`] with a transmission observer.
    pub fn run_observed(
        &mut self,
        round_limit: u64,
        obs: &mut dyn TransmitObserver,
    ) -> RunOutcome {
        loop {
            if self.started {
                let idle = self.queues.in_flight() == 0
                    && self.inboxes.iter().all(|i| i.is_empty());
                if idle {
                    if self.nodes.iter().all(|p| p.is_done()) {
                        return RunOutcome::Done { round: self.round };
                    }
                    match self.wake_by_node.iter().flatten().min() {
                        None => return RunOutcome::Quiescent { round: self.round },
                        Some(&r) => {
                            if r > self.round {
                                self.round = r;
                            }
                        }
                    }
                }
            }
            if self.round >= round_limit {
                return RunOutcome::RoundLimit { round: self.round };
            }
            self.step_observed(obs);
        }
    }

    /// Simulates one round (start-up on the first call).
    pub fn step_observed(&mut self, obs: &mut dyn TransmitObserver) {
        let n = self.graph.n();
        let starting = !self.started;
        self.started = true;
        let round = self.round;
        let chunk = n.div_ceil(self.threads);
        let graph = &self.graph;

        // Protocol phase, parallel over contiguous chunks.
        {
            let node_chunks = self.nodes.chunks_mut(chunk);
            let rng_chunks = self.rngs.chunks_mut(chunk);
            let inbox_chunks = self.inboxes.chunks_mut(chunk);
            let outbox_chunks = self.outboxes.chunks_mut(chunk);
            let wake_chunks = self.wake_by_node.chunks_mut(chunk);
            std::thread::scope(|scope| {
                for (ci, ((((nodes, rngs), inboxes), outboxes), wakes)) in node_chunks
                    .zip(rng_chunks)
                    .zip(inbox_chunks)
                    .zip(outbox_chunks)
                    .zip(wake_chunks)
                    .enumerate()
                {
                    let base = ci * chunk;
                    scope.spawn(move || {
                        for (off, (((node, rng), inbox), outbox)) in nodes
                            .iter_mut()
                            .zip(rngs.iter_mut())
                            .zip(inboxes.iter_mut())
                            .zip(outbox_chunk_iter(outboxes))
                            .enumerate()
                        {
                            let i = base + off;
                            let due = wakes[off].is_some_and(|w| w <= round);
                            if !starting && inbox.is_empty() && !due {
                                continue;
                            }
                            if due {
                                wakes[off] = None;
                            }
                            let mut wake = None;
                            {
                                let mut ctx = Context {
                                    round,
                                    n,
                                    degree: graph.degree(NodeId::new(i)),
                                    rng,
                                    sends: outbox,
                                    wake: &mut wake,
                                };
                                if starting {
                                    node.on_start(&mut ctx);
                                } else {
                                    node.on_round(&mut ctx, inbox);
                                }
                            }
                            inbox.clear();
                            if let Some(r) = wake {
                                let r = r.max(round + 1);
                                wakes[off] = Some(match wakes[off] {
                                    Some(cur) => cur.min(r),
                                    None => r,
                                });
                            }
                        }
                    });
                }
            });
        }

        // Serial merge: enqueue sends in node order (determinism), then
        // transmit exactly as the serial engine does.
        for i in 0..n {
            let u = NodeId::new(i);
            let outbox = &mut self.outboxes[i];
            for (port, msg) in outbox.drain(..) {
                if let Some(budget) = self.cfg.bandwidth_bits {
                    let sz = msg.bit_size();
                    assert!(
                        sz <= budget,
                        "protocol bug: message of {sz} bits exceeds the {budget}-bit budget"
                    );
                }
                self.metrics.sent_by_node[i] += 1;
                self.queues.push(&self.graph, u, port, msg);
            }
        }
        let metrics = &mut self.metrics;
        let inboxes = &mut self.inboxes;
        let mut transmitted = false;
        self.queues.transmit(graph, |u, p, msg| {
            let v = graph.neighbor(u, p);
            let q = graph.reverse_port(u, p);
            let e = graph.edge_id(u, p);
            let bits = msg.bit_size();
            metrics.messages += 1;
            metrics.bits += bits as u64;
            obs.on_transmit(&TransmitEvent {
                round,
                from: u,
                from_port: p,
                to: v,
                to_port: q,
                edge: e,
                bits,
            });
            inboxes[v.index()].push((q, msg));
            transmitted = true;
        });
        metrics.max_edge_backlog = metrics.max_edge_backlog.max(self.queues.max_backlog());
        if transmitted || starting {
            metrics.active_rounds += 1;
        }
        self.round += 1;
    }
}

/// `chunks_mut` gives us `&mut [Vec<..>]`; iterate its elements mutably.
fn outbox_chunk_iter<T>(chunk: &mut [T]) -> impl Iterator<Item = &mut T> {
    chunk.iter_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::testing::FloodMax;
    use welle_graph::gen;

    fn graph() -> Arc<Graph> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        Arc::new(gen::random_regular(48, 4, &mut rng).unwrap())
    }
    use rand::SeedableRng;

    #[test]
    fn matches_serial_engine_exactly() {
        let g = graph();
        let cfg = EngineConfig {
            seed: 99,
            bandwidth_bits: None,
        };
        let mk = |_: usize| -> Vec<FloodMax> {
            (0..g.n()).map(|i| FloodMax::new((i * 7 % 48) as u64)).collect()
        };
        let mut serial = Engine::new(Arc::clone(&g), mk(0), cfg);
        let serial_out = serial.run(100_000);

        for threads in [1usize, 3, 8] {
            let mut par = ThreadedEngine::new(Arc::clone(&g), mk(0), cfg, threads);
            let par_out = par.run(100_000);
            assert_eq!(serial_out.is_done(), par_out.is_done());
            assert_eq!(serial.metrics().messages, par.metrics().messages);
            assert_eq!(serial.metrics().bits, par.metrics().bits);
            for (a, b) in serial.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.best(), b.best());
            }
        }
    }

    #[test]
    fn flood_converges_with_threads() {
        let g = graph();
        let nodes = (0..g.n()).map(|i| FloodMax::new(i as u64)).collect();
        let mut e = ThreadedEngine::new(g, nodes, EngineConfig::default(), 4);
        let out = e.run(10_000);
        assert!(out.is_done());
        assert!(e.nodes().iter().all(|n| n.best() == 47));
    }

    #[test]
    fn single_thread_equals_multi() {
        let g = graph();
        let cfg = EngineConfig::default();
        let mut one = ThreadedEngine::new(
            Arc::clone(&g),
            (0..g.n()).map(|i| FloodMax::new(i as u64)).collect(),
            cfg,
            1,
        );
        let mut many = ThreadedEngine::new(
            Arc::clone(&g),
            (0..g.n()).map(|i| FloodMax::new(i as u64)).collect(),
            cfg,
            6,
        );
        one.run(10_000);
        many.run(10_000);
        assert_eq!(one.metrics().messages, many.metrics().messages);
        assert_eq!(one.round(), many.round());
    }
}
