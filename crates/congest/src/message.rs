//! Message payloads and their bit-size accounting.

/// A message that can travel over an edge in one round.
///
/// The CONGEST model (§1 of the paper) allows `O(log n)` bits per edge per
/// round; [`Payload::bit_size`] is how the simulator enforces that budget
/// and how the metrics report total traffic in bits. Implementations should
/// count the bits of the *information content* (ids are `4⌈log₂ n⌉` bits,
/// counters `⌈log₂ range⌉` bits, flags 1 bit), not Rust's in-memory layout.
///
/// `Default` is required by the engines' struct-of-arrays message
/// arenas: a recycled slot is overwritten with `M::default()` (dropping
/// any heap the old message owned) instead of carrying an `Option`
/// discriminant per slot. The default value is never transmitted or
/// observed by protocols; it only parks in free slots.
pub trait Payload: Clone + std::fmt::Debug + Send + Default + 'static {
    /// Size of this message in bits when serialized on the wire.
    fn bit_size(&self) -> usize;
}

impl Payload for () {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Payload for u32 {
    fn bit_size(&self) -> usize {
        32
    }
}

impl Payload for u64 {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Number of bits needed to represent values in `0..=max` (at least 1).
///
/// ```
/// use welle_congest::bits_for;
/// assert_eq!(bits_for(0), 1);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// ```
pub fn bits_for(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

/// Bits for an id drawn from `[1, n⁴]` — the paper's id range
/// (§1 "Port Numbering Model").
pub fn id_bits(n: usize) -> usize {
    4 * bits_for(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn id_bits_is_four_log_n() {
        assert_eq!(id_bits(1000), 4 * 10); // 1000 fits in 10 bits
        assert_eq!(id_bits(1024), 4 * 11); // 1024 needs 11 bits
    }

    #[test]
    fn unit_and_integer_payloads() {
        assert_eq!(().bit_size(), 1);
        assert_eq!(7u32.bit_size(), 32);
        assert_eq!(7u64.bit_size(), 64);
    }
}
