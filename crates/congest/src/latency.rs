//! Per-edge message latency models for the [`AsyncEngine`].
//!
//! The round engines deliver every message exactly one round after it
//! crosses its edge. A [`LatencyModel`] replaces that constant with a
//! seeded per-crossing sample — fixed, uniform, or log-normal service
//! times, plus an optional per-edge service *rate* so a hub edge fed
//! faster than it drains builds a queue — while keeping the run a pure
//! function of `(graph, protocols, seed, model)`.
//!
//! Internally the async engine measures time in **ticks**,
//! [`TICKS_PER_ROUND`] per protocol round, so sub-round latencies order
//! deterministically without floating-point comparisons on the event
//! heap. A crossing at round `r` completes service at
//! `r·TPR + service_ticks` (later if the edge is still busy) and is
//! delivered `latency + fault-delay` ticks after that. With the zero
//! model every crossing lands exactly on `(r + 1)·TPR` — the next round
//! boundary — which is what makes the async engine event-for-event
//! identical to the round engine there.
//!
//! Samples are keyed statelessly on `(model seed, crossing round,
//! directed edge)` with the same [`mix3`](crate::faults) hash the drop
//! layer uses: no RNG stream ordering is involved, so the schedule
//! cannot depend on heap insertion order.
//!
//! [`AsyncEngine`]: crate::AsyncEngine

use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use rand::LogNormal;

use crate::faults::{mix3, DelayedMsg};

/// Virtual-time resolution: ticks per protocol round.
///
/// Power of two so round⇄tick conversions are exact; 1024 gives the
/// latency models ~3 decimal digits of sub-round resolution while
/// leaving sixty-plus bits of round range.
pub(crate) const TICKS_PER_ROUND: u64 = 1024;

/// Stream key offset for the second sample word (Box–Muller needs two).
const W2_SALT: u64 = 0xA5A5_5A5A_C3C3_3C3C;

/// The latency distribution of a [`LatencyModel`], in round units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LatencyDist {
    /// No extra latency: every crossing is delivered exactly one round
    /// later, making the async engine bit-identical to the round engine.
    #[default]
    Zero,
    /// Every crossing takes an extra fixed number of rounds (fractions
    /// allowed: `0.5` is half a round).
    Fixed(f64),
    /// Extra latency uniform in `[lo, hi]` rounds, sampled per crossing.
    Uniform {
        /// Lower bound, in rounds.
        lo: f64,
        /// Upper bound, in rounds.
        hi: f64,
    },
    /// Extra latency `exp(N(mu, sigma))` rounds — the heavy-tailed
    /// service-time shape of queueing models, sampled per crossing.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

/// A seeded description of per-edge message latency, consumed by
/// [`AsyncEngine`](crate::AsyncEngine) via
/// [`Exec::Async`](crate::Exec::Async).
///
/// ```
/// use welle_congest::LatencyModel;
///
/// let model = LatencyModel::log_normal(0.0, 0.5).seed(7).service_rate(0.5);
/// assert!(model.validate().is_ok());
/// assert_eq!(model, model); // plain value type, cheap to copy
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyModel {
    /// Stream key for the per-crossing samples.
    pub(crate) seed: u64,
    /// Latency distribution, in round units.
    pub(crate) dist: LatencyDist,
    /// Messages an edge can *service* per round (≤ 1). Below 1, an edge
    /// fed every round builds a queue: each crossing starts service only
    /// when the previous one finishes, modelling hub congestion.
    pub(crate) service_rate: f64,
}

impl LatencyModel {
    /// The zero model: no latency, unit service rate. An async run under
    /// this model is bit-identical to the round engine.
    pub fn zero() -> Self {
        LatencyModel {
            seed: 0,
            dist: LatencyDist::Zero,
            service_rate: 1.0,
        }
    }

    /// Fixed extra latency of `rounds` rounds on every crossing.
    pub fn fixed(rounds: f64) -> Self {
        LatencyModel {
            dist: LatencyDist::Fixed(rounds),
            ..LatencyModel::zero()
        }
    }

    /// Extra latency uniform in `[lo, hi]` rounds per crossing.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        LatencyModel {
            dist: LatencyDist::Uniform { lo, hi },
            ..LatencyModel::zero()
        }
    }

    /// Log-normal extra latency `exp(N(mu, sigma))` rounds per crossing.
    pub fn log_normal(mu: f64, sigma: f64) -> Self {
        LatencyModel {
            dist: LatencyDist::LogNormal { mu, sigma },
            ..LatencyModel::zero()
        }
    }

    /// Sets the sample stream seed (independent of graph and protocol
    /// seeds; two runs differing only here see different latency draws).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-edge service rate in `(0, 1]` messages per round.
    pub fn service_rate(mut self, rate: f64) -> Self {
        self.service_rate = rate;
        self
    }

    /// The configured distribution.
    pub fn dist(&self) -> LatencyDist {
        self.dist
    }

    /// Checks the model's parameters without running anything.
    ///
    /// # Errors
    ///
    /// The first [`LatencyError`] found, if any.
    pub fn validate(&self) -> Result<(), LatencyError> {
        match self.dist {
            LatencyDist::Zero => {}
            LatencyDist::Fixed(r) => {
                if !r.is_finite() || r < 0.0 {
                    return Err(LatencyError::BadFixed(r));
                }
            }
            LatencyDist::Uniform { lo, hi } => {
                if !lo.is_finite() || !hi.is_finite() || lo < 0.0 || lo > hi {
                    return Err(LatencyError::BadUniform { lo, hi });
                }
            }
            LatencyDist::LogNormal { mu, sigma } => {
                if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
                    return Err(LatencyError::BadLogNormal { mu, sigma });
                }
            }
        }
        if !self.service_rate.is_finite()
            || self.service_rate <= 0.0
            || self.service_rate > 1.0
        {
            return Err(LatencyError::BadServiceRate(self.service_rate));
        }
        Ok(())
    }
}

/// Why a [`LatencyModel`] is not usable.
#[derive(Clone, Debug, PartialEq)]
pub enum LatencyError {
    /// A fixed latency must be finite and non-negative.
    BadFixed(f64),
    /// A uniform range needs finite `0 ≤ lo ≤ hi`.
    BadUniform {
        /// The offending lower bound.
        lo: f64,
        /// The offending upper bound.
        hi: f64,
    },
    /// A log-normal needs finite `mu` and finite `sigma ≥ 0`.
    BadLogNormal {
        /// The offending mean.
        mu: f64,
        /// The offending standard deviation.
        sigma: f64,
    },
    /// The service rate must be in `(0, 1]`.
    BadServiceRate(f64),
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::BadFixed(r) => {
                write!(f, "fixed latency must be finite and >= 0 rounds, got {r}")
            }
            LatencyError::BadUniform { lo, hi } => {
                write!(f, "uniform latency needs finite 0 <= lo <= hi, got [{lo}, {hi}]")
            }
            LatencyError::BadLogNormal { mu, sigma } => {
                write!(
                    f,
                    "log-normal latency needs finite mu and sigma >= 0, got mu = {mu}, sigma = {sigma}"
                )
            }
            LatencyError::BadServiceRate(r) => {
                write!(f, "service rate must be in (0, 1] messages/round, got {r}")
            }
        }
    }
}

impl Error for LatencyError {}

/// Maps `w`'s high 53 bits to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(w: u64) -> f64 {
    (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts a non-negative latency in rounds to ticks (saturating: an
/// astronomically large sample parks the message forever, it does not
/// wrap time backwards).
#[inline]
fn to_ticks(rounds: f64) -> u64 {
    // f64 -> u64 `as` casts saturate; negative clamps to 0 first.
    (rounds.max(0.0) * TICKS_PER_ROUND as f64) as u64
}

/// Runtime state of a [`LatencyModel`] inside the async engine: the
/// precomputed service schedule, per-edge busy horizons (only when the
/// rate is below 1), and the due-tick heap of parked deliveries.
#[derive(Debug)]
pub(crate) struct LatencyState<M> {
    model: LatencyModel,
    /// Precomputed log-normal sampler (validation guarantees `Some`
    /// whenever the dist is `LogNormal`).
    lognormal: Option<LogNormal>,
    /// Ticks one service occupies the edge: `TICKS_PER_ROUND / rate`.
    service_ticks: u64,
    /// Whether `busy` is maintained (`service_ticks > TICKS_PER_ROUND`).
    track_busy: bool,
    /// Tick each directed edge becomes free, when tracked.
    busy: Vec<u64>,
    /// Deliveries scheduled beyond the current round boundary, ordered
    /// by `(due tick, park seq)`.
    parked: BinaryHeap<DelayedMsg<M>>,
    /// Park order within equal due ticks.
    seq: u64,
    /// Latest delivery completion tick seen (virtual-time span).
    last_tick: u64,
}

impl<M> LatencyState<M> {
    /// Builds the state for a *validated* model over `dir_count`
    /// directed edges.
    pub(crate) fn new(model: LatencyModel, dir_count: usize) -> Self {
        let lognormal = match model.dist {
            LatencyDist::LogNormal { mu, sigma } => {
                // welle-lint: allow(no-lib-unwrap) — invariant: LatencyModel::validate() already rejected non-finite mu / non-positive sigma
                Some(LogNormal::new(mu, sigma).expect("model validated"))
            }
            _ => None,
        };
        let service_ticks = (TICKS_PER_ROUND as f64 / model.service_rate) as u64;
        let track_busy = service_ticks > TICKS_PER_ROUND;
        LatencyState {
            model,
            lognormal,
            service_ticks,
            track_busy,
            busy: if track_busy { vec![0; dir_count] } else { Vec::new() },
            parked: BinaryHeap::new(),
            seq: 0,
            last_tick: 0,
        }
    }

    /// Latency sample in ticks for the crossing of `dir` at `round`.
    /// Pure in `(model seed, round, dir)`, like the drop layer's coins.
    #[inline]
    fn sample_ticks(&self, round: u64, dir: u32) -> u64 {
        match self.model.dist {
            LatencyDist::Zero => 0,
            LatencyDist::Fixed(r) => to_ticks(r),
            LatencyDist::Uniform { lo, hi } => {
                let w = mix3(self.model.seed, round, dir as u64);
                to_ticks(lo + unit_f64(w) * (hi - lo))
            }
            LatencyDist::LogNormal { .. } => {
                let w1 = mix3(self.model.seed, round, dir as u64);
                let w2 = mix3(self.model.seed ^ W2_SALT, round, dir as u64);
                // welle-lint: allow(no-lib-unwrap) — invariant: new() populates `lognormal` exactly when the dist is LogNormal
                let ln = self.lognormal.as_ref().expect("built in new()");
                to_ticks(ln.from_words(w1, w2))
            }
        }
    }

    /// Due tick for a message crossing `dir` at `round` with an extra
    /// fault-layer delay of `fault_delay` rounds. Advances the edge's
    /// busy horizon when the service rate is below 1.
    ///
    /// Under the zero model this is exactly `(round + 1 + fault_delay) ·
    /// TICKS_PER_ROUND` — the same arrival round the round engine
    /// computes.
    #[inline]
    pub(crate) fn crossing_due(&mut self, round: u64, dir: u32, fault_delay: u32) -> u64 {
        let base = round.saturating_mul(TICKS_PER_ROUND);
        let start = if self.track_busy {
            let s = base.max(self.busy[dir as usize]);
            self.busy[dir as usize] = s.saturating_add(self.service_ticks);
            s
        } else {
            base
        };
        start
            .saturating_add(self.service_ticks)
            .saturating_add(u64::from(fault_delay).saturating_mul(TICKS_PER_ROUND))
            .saturating_add(self.sample_ticks(round, dir))
    }

    /// Parks a delivery for release at tick `due`.
    pub(crate) fn park(&mut self, due: u64, dir: u32, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.parked.push(DelayedMsg { due, seq, dir, msg });
    }

    /// Messages parked beyond the current round boundary (they count as
    /// in flight — termination must not outrun them).
    pub(crate) fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Whether any parked delivery is due by tick `horizon`.
    pub(crate) fn due_now(&self, horizon: u64) -> bool {
        self.parked.peek().is_some_and(|d| d.due <= horizon)
    }

    /// Pops the earliest parked delivery if it is due by tick `horizon`.
    pub(crate) fn pop_due(&mut self, horizon: u64) -> Option<DelayedMsg<M>> {
        if self.parked.peek().is_some_and(|d| d.due <= horizon) {
            self.parked.pop()
        } else {
            None
        }
    }

    /// Round at which the earliest parked delivery is released (the idle
    /// skip jumps here instead of stepping empty rounds).
    pub(crate) fn next_release_round(&self) -> Option<u64> {
        self.parked
            .peek()
            .map(|d| d.due.saturating_sub(1) / TICKS_PER_ROUND)
    }

    /// Records a delivery completing at tick `tick` for the
    /// virtual-time span.
    #[inline]
    pub(crate) fn note_delivered(&mut self, tick: u64) {
        self.last_tick = self.last_tick.max(tick);
    }

    /// Latest delivery completion tick seen.
    pub(crate) fn last_tick(&self) -> u64 {
        self.last_tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(LatencyModel::zero().validate().is_ok());
        assert!(LatencyModel::fixed(2.5).validate().is_ok());
        assert!(LatencyModel::uniform(0.5, 1.5).validate().is_ok());
        assert!(LatencyModel::log_normal(0.0, 0.5).validate().is_ok());

        assert_eq!(
            LatencyModel::fixed(-1.0).validate(),
            Err(LatencyError::BadFixed(-1.0))
        );
        assert!(matches!(
            LatencyModel::fixed(f64::NAN).validate(),
            Err(LatencyError::BadFixed(x)) if x.is_nan()
        ));
        assert!(matches!(
            LatencyModel::uniform(2.0, 1.0).validate(),
            Err(LatencyError::BadUniform { .. })
        ));
        assert!(matches!(
            LatencyModel::uniform(-0.5, 1.0).validate(),
            Err(LatencyError::BadUniform { .. })
        ));
        assert!(matches!(
            LatencyModel::log_normal(f64::INFINITY, 0.5).validate(),
            Err(LatencyError::BadLogNormal { .. })
        ));
        assert!(matches!(
            LatencyModel::log_normal(0.0, -0.1).validate(),
            Err(LatencyError::BadLogNormal { .. })
        ));
        assert_eq!(
            LatencyModel::zero().service_rate(0.0).validate(),
            Err(LatencyError::BadServiceRate(0.0))
        );
        assert_eq!(
            LatencyModel::zero().service_rate(1.5).validate(),
            Err(LatencyError::BadServiceRate(1.5))
        );
    }

    #[test]
    fn zero_model_lands_exactly_on_round_boundaries() {
        let mut st: LatencyState<u64> = LatencyState::new(LatencyModel::zero(), 8);
        for round in [0u64, 1, 7, 1_000_000] {
            for dir in 0..8u32 {
                assert_eq!(
                    st.crossing_due(round, dir, 0),
                    (round + 1) * TICKS_PER_ROUND
                );
            }
        }
        // Fault delay folds in whole rounds, matching the round engine's
        // `due = crossing + delay` release round.
        assert_eq!(st.crossing_due(3, 0, 4), (3 + 1 + 4) * TICKS_PER_ROUND);
    }

    #[test]
    fn fixed_model_shifts_due_by_whole_sample() {
        let mut st: LatencyState<u64> = LatencyState::new(LatencyModel::fixed(1.5), 4);
        // 1.5 rounds = 1536 ticks on top of the one-round service.
        assert_eq!(st.crossing_due(2, 1, 0), 2 * 1024 + 1024 + 1536);
    }

    #[test]
    fn uniform_samples_stay_in_range_and_are_seed_stable() {
        let mut a: LatencyState<u64> =
            LatencyState::new(LatencyModel::uniform(0.5, 2.0).seed(9), 16);
        let mut b: LatencyState<u64> =
            LatencyState::new(LatencyModel::uniform(0.5, 2.0).seed(9), 16);
        for round in 0..50u64 {
            for dir in 0..16u32 {
                let due = a.crossing_due(round, dir, 0);
                assert_eq!(due, b.crossing_due(round, dir, 0), "seed-stable");
                let extra = due - (round + 1) * TICKS_PER_ROUND;
                let lo = to_ticks(0.5);
                let hi = to_ticks(2.0);
                assert!((lo..=hi).contains(&extra), "round {round} dir {dir}: {extra}");
            }
        }
        // A different seed draws a different schedule.
        let mut c: LatencyState<u64> =
            LatencyState::new(LatencyModel::uniform(0.5, 2.0).seed(10), 16);
        let differs = (0..16u32).any(|dir| c.crossing_due(0, dir, 0) != b.crossing_due(0, dir, 0));
        assert!(differs);
    }

    #[test]
    fn log_normal_samples_are_positive_and_seed_stable() {
        let mut a: LatencyState<u64> =
            LatencyState::new(LatencyModel::log_normal(0.0, 0.5).seed(3), 8);
        let mut b: LatencyState<u64> =
            LatencyState::new(LatencyModel::log_normal(0.0, 0.5).seed(3), 8);
        for round in 0..20u64 {
            for dir in 0..8u32 {
                let due = a.crossing_due(round, dir, 0);
                assert_eq!(due, b.crossing_due(round, dir, 0));
                assert!(due > (round + 1) * TICKS_PER_ROUND, "exp(N) > 0");
            }
        }
    }

    #[test]
    fn service_rate_queues_back_to_back_crossings() {
        // Rate 0.5: each service takes 2 rounds of ticks. Feeding the
        // same edge every round builds a queue — the k-th crossing
        // completes at (k+1)·2 rounds, not k+2.
        let mut st: LatencyState<u64> =
            LatencyState::new(LatencyModel::zero().service_rate(0.5), 2);
        let two_rounds = 2 * TICKS_PER_ROUND;
        assert_eq!(st.crossing_due(0, 0, 0), two_rounds);
        assert_eq!(st.crossing_due(1, 0, 0), 2 * two_rounds);
        assert_eq!(st.crossing_due(2, 0, 0), 3 * two_rounds);
        // An idle gap lets the edge drain: a crossing at round 10 starts
        // fresh.
        assert_eq!(st.crossing_due(10, 0, 0), 10 * TICKS_PER_ROUND + two_rounds);
        // The other edge is independent.
        assert_eq!(st.crossing_due(10, 1, 0), 10 * TICKS_PER_ROUND + two_rounds);
    }

    #[test]
    fn unit_rate_does_not_allocate_busy_tracking() {
        let st: LatencyState<u64> = LatencyState::new(LatencyModel::zero(), 1 << 20);
        assert!(!st.track_busy);
        assert!(st.busy.is_empty());
    }

    #[test]
    fn release_round_is_the_last_boundary_at_or_after_due() {
        let mut st: LatencyState<u64> = LatencyState::new(LatencyModel::zero(), 4);
        // Due exactly on a boundary releases *at* that boundary's round.
        st.park(5 * TICKS_PER_ROUND, 0, 1u64);
        assert_eq!(st.next_release_round(), Some(4));
        assert!(st.pop_due(5 * TICKS_PER_ROUND).is_some());
        // Due just past a boundary waits for the next one.
        st.park(5 * TICKS_PER_ROUND + 1, 0, 2u64);
        assert_eq!(st.next_release_round(), Some(5));
        assert!(st.pop_due(5 * TICKS_PER_ROUND).is_none());
        assert!(st.pop_due(6 * TICKS_PER_ROUND).is_some());
    }

    #[test]
    fn parked_pops_in_due_then_seq_order() {
        let mut st: LatencyState<u64> = LatencyState::new(LatencyModel::zero(), 4);
        st.park(9000, 0, 900);
        st.park(5000, 1, 500);
        st.park(5000, 2, 501);
        st.park(7000, 3, 700);
        assert_eq!(st.parked(), 4);
        let mut order = Vec::new();
        while let Some(d) = st.pop_due(u64::MAX) {
            order.push(d.msg);
        }
        assert_eq!(order, vec![500, 501, 700, 900]);
    }

    #[test]
    fn tick_math_saturates_instead_of_wrapping() {
        let mut st: LatencyState<u64> = LatencyState::new(LatencyModel::zero(), 1);
        // The adaptive driver passes round limits near u64::MAX/4;
        // nothing here may wrap.
        let due = st.crossing_due(u64::MAX / 4, 0, u32::MAX);
        assert_eq!(due, u64::MAX);
        assert_eq!(to_ticks(f64::MAX), u64::MAX);
        assert_eq!(to_ticks(-3.0), 0);
    }
}
