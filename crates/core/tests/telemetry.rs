//! Election-level telemetry fences: phase attribution is complete and
//! byte-identical across executors and trial-thread counts, survives a
//! campaign resume, and costs nothing when off.

use std::sync::Arc;

use proptest::prelude::*;
use welle_core::export::{phase_table, write_round_log};
use welle_core::{
    Campaign, Election, ElectionConfig, Exec, ElectionReport, FaultPlan, Phase, Retention,
    TelemetryConfig,
};
use welle_graph::gen;

fn graph() -> Arc<welle_graph::Graph> {
    Arc::new(gen::hypercube(6).unwrap())
}

fn cfg() -> ElectionConfig {
    ElectionConfig::tuned_for_simulation(64)
}

fn observed(exec: Exec, seed: u64, tcfg: TelemetryConfig) -> ElectionReport {
    let g = graph();
    Election::on(&g)
        .config(cfg())
        .seed(seed)
        .executor(exec)
        .telemetry(tcfg)
        .run()
        .unwrap()
}

#[test]
fn phase_tables_and_round_logs_identical_across_executors() {
    let serial = observed(Exec::Serial, 7, TelemetryConfig::full());
    let mut serial_log = Vec::new();
    write_round_log(serial.telemetry.as_ref().unwrap(), &mut serial_log).unwrap();
    for exec in [
        Exec::Threaded(3),
        Exec::Async(welle_core::LatencyModel::zero()),
    ] {
        let other = observed(exec, 7, TelemetryConfig::full());
        assert_eq!(other.phase_rounds, serial.phase_rounds, "{exec:?}");
        assert_eq!(other.phase_messages, serial.phase_messages, "{exec:?}");
        assert_eq!(
            phase_table(&other),
            phase_table(&serial),
            "{exec:?}: phase table must be byte-identical"
        );
        let mut log = Vec::new();
        write_round_log(other.telemetry.as_ref().unwrap(), &mut log).unwrap();
        assert_eq!(log, serial_log, "{exec:?}: round log must be byte-identical");
    }
}

#[test]
fn phase_attribution_is_complete() {
    let report = observed(Exec::Serial, 3, TelemetryConfig::full());
    let t = report.telemetry.as_ref().unwrap();
    // Every sampled round lands in some election phase: the protocol
    // publishes `walk` from its very first callback.
    assert!(t.samples.iter().all(|s| s.phase.is_some()));
    assert_eq!(
        report.phase_rounds.iter().sum::<u64>(),
        t.total_samples,
        "per-phase rounds partition the sampled rounds"
    );
    assert_eq!(
        report.phase_messages.iter().sum::<u64>(),
        report.messages,
        "per-phase messages partition the message total"
    );
    // A successful election exercises the walk and at least R1.
    assert!(report.is_success());
    assert!(report.phase_rounds[Phase::Walk.tag() as usize] > 0);
    assert!(report.phase_rounds[Phase::R1.tag() as usize] > 0);
}

#[test]
fn telemetry_off_leaves_the_report_unchanged() {
    let g = graph();
    let base = Election::on(&g).config(cfg()).seed(11).run().unwrap();
    assert!(base.telemetry.is_none());
    assert_eq!(base.phase_rounds, [0; 5]);
    assert_eq!(base.phase_messages, [0; 5]);
    // Installing telemetry must not perturb the election itself.
    let on = observed(Exec::Serial, 11, TelemetryConfig::full().with_profile());
    assert_eq!(on.leaders, base.leaders);
    assert_eq!(on.messages, base.messages);
    assert_eq!(on.bits, base.bits);
    assert_eq!(on.decided_round, base.decided_round);
    assert_eq!(on.engine_rounds, base.engine_rounds);
    assert_eq!(on.outcome, base.outcome);
    // And the off-run's CSV row equals the on-run's with the ten phase
    // columns zeroed — nothing else may move.
    let strip = |row: &str| -> Vec<String> {
        row.split(',').map(str::to_string).collect()
    };
    let (b, o) = (strip(&base.csv_row()), strip(&on.csv_row()));
    assert_eq!(b.len(), o.len());
    for (i, (x, y)) in b.iter().zip(&o).enumerate() {
        if (15..25).contains(&i) {
            assert_eq!(x, "0", "column {i} must be zero when telemetry is off");
        } else {
            assert_eq!(x, y, "column {i} drifted");
        }
    }
}

#[test]
fn ring_zero_keeps_phase_totals_without_samples() {
    let full = observed(Exec::Serial, 5, TelemetryConfig::full());
    let lean = observed(Exec::Serial, 5, TelemetryConfig::ring(0));
    assert_eq!(lean.phase_rounds, full.phase_rounds);
    assert_eq!(lean.phase_messages, full.phase_messages);
    let t = lean.telemetry.as_ref().unwrap();
    assert!(t.samples.is_empty());
    assert_eq!(
        t.total_samples,
        full.telemetry.as_ref().unwrap().total_samples
    );
}

#[test]
fn campaign_aggregates_phases_at_any_worker_count() {
    let g = graph();
    let sweep = |workers: usize| {
        Campaign::new(Election::on(&g).config(cfg()))
            .label("q6")
            .telemetry(TelemetryConfig::ring(0))
            .seeds(0..6)
            .trial_threads(workers)
            .run()
            .unwrap()
    };
    let serial = sweep(1);
    let s = serial.summary();
    assert!(s.phase_rounds_max.iter().any(|&r| r > 0));
    // mean * trials == sum of the per-trial phase rounds.
    for (i, &mean) in s.phase_rounds_mean.iter().enumerate() {
        let sum: u64 = serial.trials.iter().map(|t| t.report.phase_rounds[i]).sum();
        assert!((mean * s.trials as f64 - sum as f64).abs() < 1e-9, "phase {i}");
        let max = serial
            .trials
            .iter()
            .map(|t| t.report.phase_rounds[i])
            .max()
            .unwrap();
        assert_eq!(s.phase_rounds_max[i], max, "phase {i}");
    }
    for workers in [2usize, 4] {
        let pooled = sweep(workers);
        let p = pooled.summary();
        assert_eq!(p.phase_rounds_max, s.phase_rounds_max, "workers={workers}");
        assert_eq!(p.csv_row(), s.csv_row(), "workers={workers}");
    }
}

#[test]
fn resumed_campaign_recovers_phase_aggregates() {
    let g = graph();
    let path = {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/test-tmp");
        std::fs::create_dir_all(&p).unwrap();
        p.push(format!("{}_telemetry_resume.csv", std::process::id()));
        p
    };
    let sweep = || {
        Campaign::new(Election::on(&g).config(cfg()))
            .label("q6")
            .telemetry(TelemetryConfig::ring(0))
            .seeds(0..5)
    };
    let full = sweep().stream_csv(&path).run().unwrap();
    let full_text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    // Interrupt after 2 of 5 trials, then resume: the recovered phase
    // aggregates must match the uninterrupted run exactly.
    sweep().stream_csv(&path).budget_trials(2).run().unwrap();
    let resumed = sweep().stream_csv(&path).resume(true).run().unwrap();
    let resumed_text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(resumed.resumed_trials, 2);
    assert_eq!(resumed_text, full_text);
    assert_eq!(
        resumed.summary().phase_rounds_max,
        full.summary().phase_rounds_max
    );
    assert_eq!(resumed.summary().csv_row(), full.summary().csv_row());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Phase streams agree across executors for random seeds and
    /// retention policies, with and without faults.
    #[test]
    fn phase_streams_agree_for_random_runs(
        seed in any::<u64>(),
        ring in 0usize..5,
        drop_pct in 0u32..10,
    ) {
        let g = graph();
        // ring == 4 doubles as "full retention".
        let tcfg = if ring < 4 {
            TelemetryConfig::ring(ring * 8)
        } else {
            TelemetryConfig::full()
        };
        let run = |exec: Exec| {
            let mut e = Election::on(&g)
                .config(ElectionConfig {
                    max_walk_len: Some(64),
                    ..cfg()
                })
                .seed(seed)
                .executor(exec)
                .telemetry(tcfg);
            if drop_pct > 0 {
                e = e.faults(FaultPlan::new(seed).drop_rate(f64::from(drop_pct) / 100.0));
            }
            e.run().unwrap()
        };
        let serial = run(Exec::Serial);
        let threaded = run(Exec::Threaded(2));
        prop_assert_eq!(serial.phase_rounds, threaded.phase_rounds);
        prop_assert_eq!(serial.phase_messages, threaded.phase_messages);
        let (st, tt) = (serial.telemetry.unwrap(), threaded.telemetry.unwrap());
        prop_assert_eq!(&st.samples, &tt.samples);
        prop_assert_eq!(st.total_samples, tt.total_samples);
        prop_assert_eq!(&st.phases, &tt.phases);
        if let Retention::Ring(k) = tcfg.retention {
            prop_assert!(st.samples.len() <= k);
        }
    }
}
