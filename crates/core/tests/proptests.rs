//! Property-based tests of the election: safety (never two leaders) on
//! random connected graphs, parameter-derivation invariants, and message
//! size budgets.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle_congest::Payload;
use welle_core::{
    Campaign, CampaignReport, CampaignSummary, Election, ElectionConfig, ElectionMsg,
    ElectionReport, Exec, FaultPlan, FwdItem, LatencyModel, MsgSizeMode, Params, RevItem, Trial,
};
use welle_graph::GraphBuilder;

fn random_connected(n: usize, extra: usize, seed: u64) -> Arc<welle_graph::Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for child in 1..n {
        let parent = rand::RngExt::random_range(&mut rng, 0..child);
        b.add_edge(parent, child).unwrap();
    }
    for _ in 0..extra {
        let u = rand::RngExt::random_range(&mut rng, 0..n);
        let v = rand::RngExt::random_range(&mut rng, 0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
        }
    }
    Arc::new(b.build().unwrap())
}

/// Full-field report comparison (everything the run can observe).
fn reports_identical(a: &ElectionReport, b: &ElectionReport) -> bool {
    a.n == b.n
        && a.m == b.m
        && a.contenders == b.contenders
        && a.leaders == b.leaders
        && a.leader_id == b.leader_id
        && a.messages == b.messages
        && a.bits == b.bits
        && a.decided_round == b.decided_round
        && a.engine_rounds == b.engine_rounds
        && a.final_walk_len == b.final_walk_len
        && a.epochs_used == b.epochs_used
        && a.gave_up == b.gave_up
        && a.dropped_messages == b.dropped_messages
        && a.crashed == b.crashed
        && a.dropped_tokens == b.dropped_tokens
        && a.broken_routes == b.broken_routes
        && a.virtual_time == b.virtual_time
        && a.outcome == b.outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn never_more_than_one_leader(n in 24usize..56, extra in 8usize..64, seed in any::<u64>()) {
        let g = random_connected(n, extra, seed);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.max_walk_len = Some(64); // keep give-ups cheap on bad graphs
        let r = Election::on(&g).config(cfg).seed(seed ^ 0xABCD).run().unwrap();
        prop_assert!(r.leaders.len() <= 1, "leaders: {:?}", r.leaders);
        prop_assert_eq!(r.broken_routes, 0, "routing must never break");
        prop_assert_eq!(r.dropped_tokens, 0, "no stale tokens in sync runs");
    }

    #[test]
    fn params_invariants(n in 2usize..5_000, c1 in 0.5f64..8.0, c2 in 0.25f64..4.0) {
        let cfg = ElectionConfig { c1, c2, ..ElectionConfig::default() };
        let p = Params::derive(n, cfg);
        prop_assert!(p.contender_prob <= 1.0);
        prop_assert!(p.tau_intersection >= 1);
        prop_assert!(p.tau_distinct >= 1);
        prop_assert!(p.walks_per_contender >= 1);
        prop_assert!((p.walks_per_contender as f64) <= 0.45 * n as f64 + 1.0);
        prop_assert_eq!(p.tau_distinct, (p.walks_per_contender as usize).div_ceil(2));
        // Boundaries monotone.
        let mut prev = 0;
        for seg in 0..=p.total_segments() {
            let b = p.segment_boundary(seg);
            prop_assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn congest_messages_fit_the_bandwidth_cap(n in 8usize..4_000, id in 1u64..u64::MAX, epoch in 0u32..30, step in 0u32..1_000_000) {
        let p = Params::derive(n, ElectionConfig::default());
        let cap = p.bandwidth_bits.unwrap();
        let id = id % p.id_max + 1;
        let msgs = [
            ElectionMsg::walk(id, epoch, step, p.walks_per_contender),
            ElectionMsg::rev(id, epoch, step, RevItem::ProxyInfo { proxy_id: id, count: 1_000 }),
            ElectionMsg::rev(id, epoch, step, RevItem::KnownContenders { ids: &[p.id_max] }),
            ElectionMsg::rev(id, epoch, step, RevItem::Winner { id: p.id_max }),
            ElectionMsg::fwd(id, epoch, step, FwdItem::I2Ids { ids: &[p.id_max] }),
            ElectionMsg::fwd(id, epoch, step, FwdItem::StopMark),
        ];
        for m in msgs {
            prop_assert!(m.bit_size() <= cap, "{m:?}: {} > {cap}", m.bit_size());
        }
    }

    #[test]
    fn large_mode_caps_fit_full_sets(n in 8usize..2_000) {
        let cfg = ElectionConfig { msg_size: MsgSizeMode::Large, ..ElectionConfig::default() };
        let p = Params::derive(n, cfg);
        let cap = p.bandwidth_bits.unwrap();
        let ids = vec![p.id_max; p.frag];
        let m = ElectionMsg::rev(
            p.id_max,
            30,
            1 << 20,
            RevItem::KnownContenders { ids: &ids },
        );
        prop_assert!(m.bit_size() <= cap, "{} > {cap}", m.bit_size());
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_across_executors(
        n in 24usize..48,
        extra in 8usize..48,
        seed in any::<u64>(),
        threads in 1usize..5,
        plan_seed in any::<u64>(),
    ) {
        // A FaultPlan with drop rate 0, no crashes, zero delay, and no
        // cuts must be indistinguishable from the fault-free engine —
        // on the serial executor and on any thread count.
        let g = random_connected(n, extra, seed);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.max_walk_len = Some(64);
        let baseline = Election::on(&g).config(cfg).seed(seed ^ 0xF00).run().unwrap();
        for exec in [Exec::Serial, Exec::Threaded(threads)] {
            let faulted = Election::on(&g)
                .config(cfg)
                .seed(seed ^ 0xF00)
                .executor(exec)
                .faults(FaultPlan::new(plan_seed))
                .run()
                .unwrap();
            prop_assert!(reports_identical(&baseline, &faulted), "{exec:?}");
            prop_assert_eq!(faulted.dropped_messages, 0);
            prop_assert_eq!(faulted.crashed, 0);
        }
    }

    #[test]
    fn faulted_elections_agree_across_executors_and_stay_safe(
        n in 24usize..48,
        extra in 8usize..48,
        seed in any::<u64>(),
        threads in 2usize..5,
        drop_pm in 0u32..300,
    ) {
        // Under real faults: still deterministic, still bit-identical
        // across executors, and still never more than one leader.
        let g = random_connected(n, extra, seed);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.max_walk_len = Some(64);
        let plan = FaultPlan::new(seed ^ 0xBAD)
            .drop_rate(drop_pm as f64 / 1000.0)
            .crash_fraction(0.05, 20);
        let serial = Election::on(&g)
            .config(cfg)
            .seed(seed ^ 0xF01)
            .executor(Exec::Serial)
            .faults(plan.clone())
            .run()
            .unwrap();
        prop_assert!(serial.leaders.len() <= 1, "leaders: {:?}", serial.leaders);
        let par = Election::on(&g)
            .config(cfg)
            .seed(seed ^ 0xF01)
            .executor(Exec::Threaded(threads))
            .faults(plan)
            .run()
            .unwrap();
        prop_assert!(reports_identical(&serial, &par));
    }

    #[test]
    fn campaigns_are_byte_identical_at_any_worker_count(
        n in 24usize..48,
        extra in 8usize..48,
        seed in any::<u64>(),
        k in 3usize..7,
        drop_pm in 50u32..300,
    ) {
        // The trial scheduler reassembles completions into the serial
        // (scenario, seed) order, so the full observable outcome —
        // per-trial CSV rows and per-scenario summary rows, across a
        // fault-free and a message-dropping scenario — must come out
        // byte-identical at 1, 2, and k worker threads.
        let g = random_connected(n, extra, seed);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.max_walk_len = Some(64);
        let run = |workers: usize| -> CampaignReport {
            Campaign::new(Election::on(&g).config(cfg))
                .label("clean")
                .scenario("dropping, faulted", &g, cfg)
                .faults(FaultPlan::new(seed ^ 0xBAD).drop_rate(drop_pm as f64 / 1000.0))
                .seeds(0..3)
                .trial_threads(workers)
                .run()
                .unwrap()
        };
        let fingerprint = |o: &CampaignReport| -> (Vec<String>, Vec<String>) {
            (
                o.trials.iter().map(Trial::csv_row).collect(),
                o.summaries.iter().map(CampaignSummary::csv_row).collect(),
            )
        };
        let serial = run(1);
        prop_assert_eq!(serial.trials.len(), 6);
        let expect = fingerprint(&serial);
        for workers in [2usize, k] {
            let pooled = run(workers);
            prop_assert_eq!(fingerprint(&pooled), expect.clone(), "workers = {}", workers);
            prop_assert!(pooled.engines_built <= workers);
        }
    }

    #[test]
    fn async_zero_latency_matches_serial_on_full_reports(
        n in 24usize..48,
        extra in 8usize..48,
        seed in any::<u64>(),
        drop_pm in 0u32..200,
    ) {
        // The async executor's zero-latency contract at the Election
        // level: every field of the report — with or without a biting
        // fault plan — must be bit-identical to the serial engine's.
        let g = random_connected(n, extra, seed);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.max_walk_len = Some(64);
        let plan = (drop_pm > 0)
            .then(|| FaultPlan::new(seed ^ 0xBAD).drop_rate(drop_pm as f64 / 1000.0));
        let run = |exec: Exec| {
            let mut e = Election::on(&g).config(cfg).seed(seed ^ 0xF02).executor(exec);
            if let Some(p) = &plan {
                e = e.faults(p.clone());
            }
            e.run().unwrap()
        };
        let serial = run(Exec::Serial);
        let async_ = run(Exec::Async(LatencyModel::zero()));
        prop_assert!(reports_identical(&serial, &async_));
        prop_assert_eq!(async_.virtual_time, async_.engine_rounds as f64);
    }

    #[test]
    fn async_nonzero_latency_replays_identically(
        n in 24usize..40,
        extra in 8usize..32,
        seed in any::<u64>(),
        model_kind in 0u8..3,
    ) {
        // Sampled latency is a pure function of (graph, config, seed,
        // model): two fresh runs must agree on every report field.
        let g = random_connected(n, extra, seed);
        let mut cfg = ElectionConfig::tuned_for_simulation(n);
        cfg.max_walk_len = Some(64);
        let model = match model_kind {
            0 => LatencyModel::fixed(1.5),
            1 => LatencyModel::uniform(0.0, 2.0),
            _ => LatencyModel::log_normal(0.2, 0.5),
        }
        .seed(seed ^ 0xCAFE);
        let run = || {
            Election::on(&g)
                .config(cfg)
                .seed(seed ^ 0xF03)
                .executor(Exec::Async(model))
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert!(reports_identical(&a, &b));
        prop_assert!(a.leaders.len() <= 1, "leaders: {:?}", a.leaders);
    }

    #[test]
    fn deterministic_reports(seed in any::<u64>()) {
        let g = random_connected(32, 32, 99);
        let mut cfg = ElectionConfig::tuned_for_simulation(32);
        cfg.max_walk_len = Some(64);
        let a = Election::on(&g).config(cfg).seed(seed).run().unwrap();
        let b = Election::on(&g).config(cfg).seed(seed).run().unwrap();
        prop_assert_eq!(a.messages, b.messages);
        prop_assert_eq!(a.leaders, b.leaders);
    }
}
