//! Fence for the hash-state determinism fixes: replacing the seeded-path
//! `HashMap`/`HashSet` protocol state (`fwd_seen`, `proxy_counts`, the
//! `TrailStore` map) with ordered containers must not change a single
//! report byte. The pinned rows below were recorded *before* the swap;
//! the proptest then holds the stronger invariant the swap exists to
//! protect — full-report identity across repeated runs and executors on
//! random graphs and seeds.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use welle_core::{Election, ElectionConfig, Exec};
use welle_graph::GraphBuilder;

fn random_connected(n: usize, extra: usize, seed: u64) -> Arc<welle_graph::Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for child in 1..n {
        let parent = rand::RngExt::random_range(&mut rng, 0..child);
        b.add_edge(parent, child).unwrap();
    }
    for _ in 0..extra {
        let u = rand::RngExt::random_range(&mut rng, 0..n);
        let v = rand::RngExt::random_range(&mut rng, 0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
        }
    }
    Arc::new(b.build().unwrap())
}

fn run_row(g: &Arc<welle_graph::Graph>, seed: u64, exec: Exec) -> String {
    let mut cfg = ElectionConfig::tuned_for_simulation(g.n());
    cfg.max_walk_len = Some(64);
    Election::on(g)
        .config(cfg)
        .seed(seed)
        .executor(exec)
        .run()
        .unwrap()
        .csv_row()
}

/// Golden rows recorded at the pre-fix tree (hash-based `fwd_seen`,
/// `proxy_counts`, `TrailStore`). The ordered-container replacements
/// must reproduce them byte for byte.
#[test]
fn pinned_reports_unchanged_by_hash_state_fix() {
    // The ten zero columns are the per-phase breakdown added with the
    // telemetry layer — all zero here because these runs record none,
    // so the simulated values still match the pre-fix recordings.
    let cases: [(usize, usize, u64, &str); 3] = [
        (48, 40, 11, "48,84,12,1,4862562,55049,2724113,1279,1317,16,5,0,0,0,1317,0,0,0,0,0,0,0,0,0,0,true"),
        (40, 24, 7, "40,63,16,1,2304460,100023,4761748,2957,2966,64,7,1,0,0,2966,0,0,0,0,0,0,0,0,0,0,true"),
        (56, 60, 23, "56,113,19,1,9178418,147863,7624009,2860,2868,32,6,0,0,0,2868,0,0,0,0,0,0,0,0,0,0,true"),
    ];
    for (n, extra, seed, want) in cases {
        let g = random_connected(n, extra, seed);
        let got = run_row(&g, seed ^ 0x5EED, Exec::Serial);
        assert_eq!(got, want, "report drifted for n={n} extra={extra} seed={seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The contract the ordered containers protect: the full report is a
    /// pure function of (graph, seed), byte-identical across repeated
    /// runs and across executors.
    #[test]
    fn full_report_identity(n in 24usize..56, extra in 8usize..64, seed in any::<u64>()) {
        let g = random_connected(n, extra, seed);
        let first = run_row(&g, seed ^ 0xF00D, Exec::Serial);
        let again = run_row(&g, seed ^ 0xF00D, Exec::Serial);
        prop_assert_eq!(&again, &first, "same-executor replay diverged");
        let threaded = run_row(&g, seed ^ 0xF00D, Exec::Threaded(2));
        prop_assert_eq!(&threaded, &first, "cross-executor replay diverged");
    }
}
