//! Telemetry exporters: the per-round sample stream as CSV or JSONL,
//! and the human-readable phase/profile tables the CLI prints.
//!
//! Everything here renders data already recorded by the telemetry layer
//! ([`Election::telemetry`](crate::Election::telemetry)); nothing
//! re-runs or perturbs a simulation. The machine formats
//! ([`write_round_log`], [`write_samples_jsonl`]) emit one record per
//! retained [`RoundSample`](crate::RoundSample) and are deterministic byte-for-byte: the
//! same `(graph, config, seed, plan)` produces the same file on every
//! executor. The human tables ([`phase_table`], [`profile_table`]) are
//! for eyes, not parsers — the CLI routes them to stderr when stdout
//! must stay machine-pure.

use std::io::{self, Write};

use welle_congest::{SpanStats, TelemetryReport};

use crate::config::Phase;
use crate::runner::ElectionReport;

/// The column names of one [`write_round_log`] row.
pub const ROUND_LOG_HEADER: &str =
    "round,phase,messages,bits,active_nodes,max_backlog,dropped,parked,tick";

/// Renders a phase tag the way both exporters spell it: the election
/// phase's name when the tag is one ([`Phase::from_tag`]), the bare
/// number for foreign protocols' tags, empty before the first publish.
fn phase_label(tag: Option<u8>) -> String {
    match tag {
        None => String::new(),
        Some(t) => match Phase::from_tag(t) {
            Some(p) => p.name().to_string(),
            None => t.to_string(),
        },
    }
}

/// Writes the retained sample stream as CSV: [`ROUND_LOG_HEADER`], then
/// one row per [`RoundSample`](crate::RoundSample), oldest first. Under ring retention this
/// is the stream's tail; [`TelemetryReport::total_samples`] says how
/// many rounds the whole run sampled.
///
/// # Errors
///
/// Any [`io::Error`] of the underlying writer.
pub fn write_round_log(report: &TelemetryReport, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{ROUND_LOG_HEADER}")?;
    for s in &report.samples {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{}",
            s.round,
            phase_label(s.phase),
            s.messages,
            s.bits,
            s.active_nodes,
            s.max_backlog,
            s.dropped,
            s.parked,
            s.tick,
        )?;
    }
    Ok(())
}

/// Writes the retained sample stream as JSONL: one JSON object per
/// [`RoundSample`](crate::RoundSample), oldest first, with the same fields as
/// [`write_round_log`]. `phase` is `null` before the first publish,
/// otherwise the same label the CSV uses (a JSON string).
///
/// # Errors
///
/// Any [`io::Error`] of the underlying writer.
pub fn write_samples_jsonl(report: &TelemetryReport, w: &mut impl Write) -> io::Result<()> {
    for s in &report.samples {
        let phase = match s.phase {
            None => "null".to_string(),
            Some(_) => format!("\"{}\"", phase_label(s.phase)),
        };
        writeln!(
            w,
            concat!(
                "{{\"round\":{},\"phase\":{},\"messages\":{},\"bits\":{},",
                "\"active_nodes\":{},\"max_backlog\":{},\"dropped\":{},",
                "\"parked\":{},\"tick\":{}}}"
            ),
            s.round,
            phase,
            s.messages,
            s.bits,
            s.active_nodes,
            s.max_backlog,
            s.dropped,
            s.parked,
            s.tick,
        )?;
    }
    Ok(())
}

/// Renders the report's per-phase breakdown as a small aligned table —
/// one row per election phase with its active rounds and messages, and
/// a totals row. Returns the paper-faithful "all zeros" table when the
/// run did not enable telemetry; callers that want to suppress it can
/// check [`ElectionReport::telemetry`] first.
pub fn phase_table(report: &ElectionReport) -> String {
    let mut out = String::new();
    out.push_str("phase   rounds      messages\n");
    for p in Phase::ALL {
        let i = p.tag() as usize;
        out.push_str(&format!(
            "{:<6} {:>7} {:>13}\n",
            p.name(),
            report.phase_rounds[i],
            report.phase_messages[i],
        ));
    }
    out.push_str(&format!(
        "{:<6} {:>7} {:>13}\n",
        "total",
        report.phase_rounds.iter().sum::<u64>(),
        report.phase_messages.iter().sum::<u64>(),
    ));
    out
}

/// Renders the span profiler's output as an aligned table — one row per
/// stage in hierarchy order, children indented under their parent, with
/// entry/event counts (deterministic) and wall-clock milliseconds
/// (not). `None` when the run did not profile
/// ([`TelemetryConfig::profile`](welle_congest::TelemetryConfig) off, or
/// telemetry absent entirely).
pub fn profile_table(report: &TelemetryReport) -> Option<String> {
    let profile: &[SpanStats] = report.profile.as_deref()?;
    let mut out = String::new();
    out.push_str("span             entries        events       wall_ms\n");
    for s in profile {
        let depth = std::iter::successors(Some(s.stage), |st| st.parent()).count() - 1;
        let name = format!("{}{}", "  ".repeat(depth), s.stage.name());
        out.push_str(&format!(
            "{:<14} {:>9} {:>13} {:>13.3}\n",
            name,
            s.entries,
            s.events,
            s.wall_ns as f64 / 1e6,
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::{Election, ElectionConfig};
    use welle_congest::TelemetryConfig;
    use welle_graph::gen;

    fn observed_report() -> ElectionReport {
        let g = Arc::new(gen::hypercube(6).unwrap());
        Election::on(&g)
            .config(ElectionConfig::tuned_for_simulation(64))
            .seed(3)
            .telemetry(TelemetryConfig::full().with_profile())
            .run()
            .unwrap()
    }

    #[test]
    fn round_log_has_one_row_per_sample_and_a_header() {
        let report = observed_report();
        let t = report.telemetry.as_ref().unwrap();
        let mut buf = Vec::new();
        write_round_log(t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), ROUND_LOG_HEADER);
        assert_eq!(lines.count() as u64, t.total_samples);
        // Every data row has exactly the header's column count.
        for row in text.lines().skip(1) {
            assert_eq!(
                row.split(',').count(),
                ROUND_LOG_HEADER.split(',').count(),
                "row: {row}"
            );
        }
        // The election publishes phases from round one, so the log names
        // them.
        assert!(text.contains(",walk,"));
    }

    #[test]
    fn jsonl_mirrors_the_csv_stream() {
        let report = observed_report();
        let t = report.telemetry.as_ref().unwrap();
        let mut buf = Vec::new();
        write_samples_jsonl(t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), t.samples.len());
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("{\"round\":"), "{first}");
        assert!(first.ends_with('}'), "{first}");
        assert!(first.contains("\"phase\":\"walk\""), "{first}");
    }

    #[test]
    fn phase_table_rows_cover_all_phases_and_total() {
        let report = observed_report();
        let table = phase_table(&report);
        for p in Phase::ALL {
            assert!(table.contains(p.name()), "missing {}", p.name());
        }
        assert!(table.contains("total"));
        // The totals row agrees with the report's arrays.
        let rounds: u64 = report.phase_rounds.iter().sum();
        assert!(table.contains(&rounds.to_string()));
    }

    #[test]
    fn profile_table_present_iff_profiling_ran() {
        let report = observed_report();
        let t = report.telemetry.as_ref().unwrap();
        let table = profile_table(t).expect("profiling was on");
        assert!(table.contains("round"));
        assert!(table.contains("  callbacks"), "children are indented");
        let g = Arc::new(gen::hypercube(6).unwrap());
        let unprofiled = Election::on(&g)
            .config(ElectionConfig::tuned_for_simulation(64))
            .seed(3)
            .telemetry(TelemetryConfig::full())
            .run()
            .unwrap();
        assert!(profile_table(unprofiled.telemetry.as_ref().unwrap()).is_none());
    }

    #[test]
    fn foreign_phase_tags_render_numerically() {
        assert_eq!(phase_label(None), "");
        assert_eq!(phase_label(Some(0)), "walk");
        assert_eq!(phase_label(Some(4)), "wait");
        assert_eq!(phase_label(Some(9)), "9");
    }
}
