//! The campaign trial scheduler: a work-stealing pool of persistent
//! worker threads running independent (scenario, seed) trials.
//!
//! Trials are seeded and independent, so cross-trial parallelism cannot
//! change any single trial's result — determinism is preserved by
//! *reassembly*: workers complete units in whatever order the host
//! schedules them, results land in a slot table indexed by the
//! campaign's serial trial order, and the calling thread hands the
//! contiguous completed prefix downstream strictly in that order. The
//! observable output (per-trial hooks, streamed CSV rows, summaries) is
//! therefore byte-identical to the serial scenario-major loop at any
//! worker count.
//!
//! Each worker owns a [`PooledEngine`]: the first trial builds a real
//! engine, every later one resets and reuses its arenas (see
//! [`welle_congest::Engine::reset_with`]) — a sweep of thousands of
//! trials performs a handful of engine constructions, not thousands.
//!
//! Work distribution: each worker starts with a contiguous chunk of the
//! unit range in its own deque, pops from the front, and steals from
//! the *back* of the next non-empty victim when it runs dry. No new
//! work is ever produced mid-run, so "every deque empty" is a stable
//! termination condition — no retry loops or sentinel messages needed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex, recovering from poisoning. A worker panic already
/// trips `worker_died` (re-raised when the scope joins), so the poison
/// flag carries no extra information here — recovering it keeps the
/// drainer alive long enough to surface the *original* panic instead of
/// masking it with a secondary `PoisonError` unwind.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

use crate::runner::PooledEngine;

/// Runs units `0..total` across `workers` threads, invoking
/// `on_complete(unit, result)` on the calling thread in strictly
/// increasing unit order. Returns the number of engines the worker
/// pools actually constructed.
///
/// If a worker panics (a protocol bug), the panic is re-raised here
/// after the surviving workers drain — nothing is swallowed.
pub(crate) fn run_pool<T, R>(
    total: usize,
    workers: usize,
    run_one: R,
    mut on_complete: impl FnMut(usize, T),
) -> usize
where
    T: Send,
    R: Fn(&mut PooledEngine, usize) -> T + Sync,
{
    let workers = workers.max(1).min(total.max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((total * w / workers..total * (w + 1) / workers).collect()))
        .collect();
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..total).map(|_| None).collect());
    let ready = Condvar::new();
    let worker_died = AtomicBool::new(false);
    let engines_built = Mutex::new(0usize);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let (queues, slots, ready) = (&queues, &slots, &ready);
            let (worker_died, engines_built, run_one) = (&worker_died, &engines_built, &run_one);
            scope.spawn(move || {
                // Wake the drainer even if this worker panics, so it
                // stops waiting and the scope can re-raise the panic.
                struct Bail<'a> {
                    died: &'a AtomicBool,
                    ready: &'a Condvar,
                }
                impl Drop for Bail<'_> {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            self.died.store(true, Ordering::SeqCst);
                            self.ready.notify_all();
                        }
                    }
                }
                let _bail = Bail {
                    died: worker_died,
                    ready,
                };
                let mut pool = PooledEngine::new();
                loop {
                    let mut unit = lock_recovering(&queues[w]).pop_front();
                    if unit.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            if let Some(u) = lock_recovering(&queues[victim]).pop_back() {
                                unit = Some(u);
                                break;
                            }
                        }
                    }
                    let Some(u) = unit else { break };
                    let result = run_one(&mut pool, u);
                    lock_recovering(slots)[u] = Some(result);
                    ready.notify_all();
                }
                *lock_recovering(engines_built) += pool.built;
            });
        }

        // Drain completions in unit order on the calling thread: the
        // contiguous completed prefix is released as it forms, outside
        // the lock (hooks and sink writes may be slow).
        let mut cursor = 0usize;
        while cursor < total {
            let mut batch = Vec::new();
            {
                let mut guard = lock_recovering(&slots);
                loop {
                    while cursor < total {
                        let Some(result) = guard[cursor].take() else { break };
                        batch.push((cursor, result));
                        cursor += 1;
                    }
                    if !batch.is_empty() || cursor >= total || worker_died.load(Ordering::SeqCst)
                    {
                        break;
                    }
                    let (g, _timeout) = ready
                        .wait_timeout(guard, Duration::from_millis(100))
                        .unwrap_or_else(PoisonError::into_inner);
                    guard = g;
                }
            }
            for (unit, result) in batch {
                on_complete(unit, result);
            }
            if worker_died.load(Ordering::SeqCst) {
                break; // the scope join below re-raises the panic
            }
        }
    });
    let built = *lock_recovering(&engines_built);
    built
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn completions_arrive_in_unit_order_for_any_worker_count() {
        for workers in [1usize, 2, 3, 7] {
            let mut seen = Vec::new();
            let built = run_pool(
                20,
                workers,
                |_pool, u| u * 10,
                |u, r| {
                    assert_eq!(r, u * 10);
                    seen.push(u);
                },
            );
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "workers = {workers}");
            // No trial ran an engine, so none were built.
            assert_eq!(built, 0);
        }
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        run_pool(
            100,
            4,
            |_pool, _u| {
                counter.fetch_add(1, Ordering::SeqCst);
            },
            |_, _| {},
        );
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_units_is_a_no_op() {
        let built = run_pool(0, 4, |_pool, u| u, |_, _| panic!("nothing to complete"));
        assert_eq!(built, 0);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_pool(
                8,
                2,
                |_pool, u| {
                    if u == 5 {
                        panic!("trial bug");
                    }
                    u
                },
                |_, _| {},
            )
        });
        assert!(result.is_err(), "a worker panic must not be swallowed");
    }
}
