//! Configuration and derived parameters of the election algorithm.

use welle_congest::bits_for;

use crate::error::ConfigError;

/// Message-size regime (Lemma 12 analyses both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MsgSizeMode {
    /// Standard CONGEST: `O(log n)` bits per message; id sets travel one
    /// id per message ("each O(log n) sized message contains the
    /// information of the id of a node and some additional O(1) bits").
    #[default]
    Congest,
    /// The paper's relaxed variant: `O(log³ n)`-bit messages, whole id
    /// sets in one message — message complexity drops to
    /// `O(√n log^{3/2} n · t_mix)`.
    Large,
}

/// How segment boundaries are realized (Fidelity note 6 of DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Paper-faithful fixed budgets: epoch `e` reserves
    /// `T_e = ⌈c_T·2^e·ln²n⌉` rounds per segment; nodes act on the shared
    /// round clock. Use this when measuring *time* (Theorem 13's
    /// `O(t_mix log² n)`).
    #[default]
    FixedT,
    /// Segments advance when the simulator observes quiescence (driver
    /// broadcasts an advance signal). Identical message complexity;
    /// reported rounds are the rounds actually consumed. Use for large
    /// sweeps.
    Adaptive,
}

/// User-facing tuning knobs of Algorithm 1 + 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElectionConfig {
    /// The paper's `c1`: contender probability is `c1·ln n / n` and the
    /// intersection threshold is `(3/4)·c1·ln n` (Lemma 1).
    pub c1: f64,
    /// The paper's `c2 ≥ 2`: each contender runs `c2·√n·ln n` walks and
    /// needs `(c2/2)·√n·ln n` distinct proxies (Distinctness Property).
    pub c2: f64,
    /// Schedule multiplier: segment budget `T = ⌈c_T · t_u · ln² n⌉`
    /// (the paper's `T = (25/16)c1·t_u·log² n` up to the constant).
    pub c_t: f64,
    /// Message-size regime.
    pub msg_size: MsgSizeMode,
    /// Segment-boundary realization.
    pub sync: SyncMode,
    /// Walk-length cap: guessing stops (and the run is declared failed)
    /// once `t_u` would exceed this. `None` derives `4·n²` (covers
    /// `t_mix` of every family used here except pathological lollipops).
    pub max_walk_len: Option<u32>,
    /// `Some(L)` switches to the Kutten et al. \[25\] baseline: a single
    /// phase with known walk length `L ≈ c3·t_mix`, no guess-and-double.
    pub fixed_walk_len: Option<u32>,
    /// Enforce the per-message bit cap inside the engine (panics on
    /// protocol bugs that exceed the budget).
    pub enforce_bandwidth: bool,
}

impl Default for ElectionConfig {
    fn default() -> Self {
        ElectionConfig {
            c1: 3.0,
            c2: 2.0,
            c_t: 1.0,
            msg_size: MsgSizeMode::Congest,
            sync: SyncMode::FixedT,
            max_walk_len: None,
            fixed_walk_len: None,
            enforce_bandwidth: true,
        }
    }
}

impl ElectionConfig {
    /// A configuration tuned for simulation-scale networks
    /// (n in the hundreds to low thousands): `c1 = 4` (denser contender
    /// sets concentrate better at small `n`), `c2 = 1` (keeps the walk
    /// budget in the paper's `√n·log n ≪ n` regime), adaptive segment
    /// advancement, and a walk-length cap of `max(256, 16·ln²n)` — far
    /// above the `t_mix` of any well-connected family, so only genuinely
    /// failing runs give up early instead of simulating `4n²`-step walks.
    ///
    /// Use [`ElectionConfig::default`] for the paper-faithful constants.
    pub fn tuned_for_simulation(n: usize) -> Self {
        let ln = (n as f64).ln().max(1.0);
        ElectionConfig {
            c1: 4.0,
            c2: 1.0,
            sync: SyncMode::Adaptive,
            max_walk_len: Some(((16.0 * ln * ln) as u32).max(256)),
            ..ElectionConfig::default()
        }
    }

    /// Checks the configuration against a network of `n` nodes without
    /// deriving anything.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: a non-finite or
    /// non-positive tuning constant, a zero walk cap, or `n < 2`.
    pub fn validate(&self, n: usize) -> Result<(), ConfigError> {
        for (name, value) in [("c1", self.c1), ("c2", self.c2), ("c_t", self.c_t)] {
            if !value.is_finite() || value <= 0.0 {
                return Err(ConfigError::BadConstant { name, value });
            }
        }
        if self.max_walk_len == Some(0) {
            return Err(ConfigError::ZeroWalkCap);
        }
        if self.fixed_walk_len == Some(0) {
            return Err(ConfigError::ZeroFixedWalk);
        }
        if n < 2 {
            return Err(ConfigError::TooFewNodes { n });
        }
        Ok(())
    }
}

/// The five segments of one guess-and-double epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Random walks spread (`[S, S+T)`).
    Walk,
    /// Proxies reply with id, distinctness bit and `I1` (`[S+T, S+2T)`).
    R1,
    /// Contenders broadcast `I2` to their proxies (`[S+2T, S+3T)`).
    R2,
    /// Proxies reply with `I3` (`[S+3T, S+4T)`).
    R3,
    /// Contenders decide; winner/stop waves propagate (`[S+4T, S+6T)`).
    Wait,
}

impl Phase {
    /// Every phase, in segment order — the telemetry layer's bucket
    /// order for per-phase tables.
    pub const ALL: [Phase; 5] = [Phase::Walk, Phase::R1, Phase::R2, Phase::R3, Phase::Wait];

    /// Phase from a global segment index (5 per epoch).
    pub fn of_segment(seg: u64) -> Phase {
        match seg % 5 {
            0 => Phase::Walk,
            1 => Phase::R1,
            2 => Phase::R2,
            3 => Phase::R3,
            _ => Phase::Wait,
        }
    }

    /// The stable numeric tag published through
    /// [`Protocol::phase_tag`](welle_congest::Protocol::phase_tag):
    /// the phase's position in the segment cycle, so
    /// `Phase::of_segment(s).tag() == (s % 5) as u8`.
    pub fn tag(self) -> u8 {
        match self {
            Phase::Walk => 0,
            Phase::R1 => 1,
            Phase::R2 => 2,
            Phase::R3 => 3,
            Phase::Wait => 4,
        }
    }

    /// Inverse of [`Phase::tag`]; `None` for tags outside `0..5`.
    pub fn from_tag(tag: u8) -> Option<Phase> {
        Phase::ALL.get(tag as usize).copied()
    }

    /// Short human-readable name (phase-table and round-log output).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Walk => "walk",
            Phase::R1 => "r1",
            Phase::R2 => "r2",
            Phase::R3 => "r3",
            Phase::Wait => "wait",
        }
    }
}

/// All derived quantities, shared read-only by every node (they are a pure
/// function of `(n, config)`, so "all nodes know `n`" gives them to
/// everyone for free).
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// The source configuration.
    pub cfg: ElectionConfig,
    /// `ln n` (the paper's `log n`; constants absorb the base).
    pub ln_n: f64,
    /// Contender probability `min(1, c1·ln n / n)`.
    pub contender_prob: f64,
    /// Walks per contender `K = max(1, ⌈c2·√n·ln n⌉)`.
    pub walks_per_contender: u32,
    /// Intersection threshold `max(1, ⌊(3/4)·c1·ln n⌋)`.
    pub tau_intersection: usize,
    /// Distinctness threshold `max(1, ⌈(c2/2)·√n·ln n⌉)`.
    pub tau_distinct: usize,
    /// Ids are drawn uniformly from `[1, id_max]` with `id_max = n⁴`
    /// (saturating at `u64::MAX`).
    pub id_max: u64,
    /// Number of guess-and-double epochs before giving up.
    pub max_epochs: u32,
    /// Ids per set-carrying message (1 in CONGEST, all in Large mode).
    pub frag: usize,
    /// Engine-level per-message bit cap, if enforcement is on.
    pub bandwidth_bits: Option<usize>,
    epoch_starts: Vec<u64>,
}

impl Params {
    /// Derives all parameters for a network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics on any configuration [`ElectionConfig::validate`] rejects
    /// (notably `n < 2`). Fallible callers — the [`Election`] builder
    /// among them — use [`Params::try_derive`].
    ///
    /// [`Election`]: crate::Election
    pub fn derive(n: usize, cfg: ElectionConfig) -> Params {
        Params::try_derive(n, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Derives all parameters for a network of `n` nodes, reporting
    /// invalid configurations as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns whatever [`ElectionConfig::validate`] rejects.
    pub fn try_derive(n: usize, cfg: ElectionConfig) -> Result<Params, ConfigError> {
        cfg.validate(n)?;
        let ln_n = (n as f64).ln().max(1.0);
        let contender_prob = (cfg.c1 * ln_n / n as f64).min(1.0);
        // Small-n regularization (documented in DESIGN.md §3): the paper's
        // asymptotic regime has √n·log n = o(n); below n ≈ (c2/0.45)²·ln²n
        // the unclamped budget would exceed n·ln 2 walks, at which point
        // the Distinctness Property (≥ K/2 *distinct* endpoints among n
        // bins) cannot hold for any walk length. Clamping K at 0.45·n
        // keeps the property satisfiable without touching the asymptotics.
        let unclamped = (cfg.c2 * (n as f64).sqrt() * ln_n).ceil().max(1.0);
        let walks_per_contender = unclamped.min((0.45 * n as f64).ceil().max(1.0)) as u32;
        let tau_intersection = ((0.75 * cfg.c1 * ln_n).floor() as usize).max(1);
        let tau_distinct = (walks_per_contender as usize).div_ceil(2);
        let id_max = (n as u128).pow(4).min(u64::MAX as u128) as u64;

        let max_walk_len = cfg
            .fixed_walk_len
            .or(cfg.max_walk_len)
            .unwrap_or_else(|| ((4 * n * n) as u64).min(u32::MAX as u64) as u32)
            .max(1);
        let max_epochs = if cfg.fixed_walk_len.is_some() {
            1
        } else {
            // Smallest e with 2^e >= max_walk_len, inclusive.
            let mut e = 0u32;
            while (1u64 << e) < max_walk_len as u64 {
                e += 1;
            }
            e + 1
        };

        // Expected contender count is c1·ln n; allow 4x slack for the I1
        // caps used in Large-mode sizing.
        let i1_cap = ((4.0 * cfg.c1 * ln_n).ceil() as usize).max(4);
        let frag = match cfg.msg_size {
            MsgSizeMode::Congest => 1,
            MsgSizeMode::Large => i1_cap,
        };
        let id_bits = bits_for(id_max);
        let bandwidth_bits = if cfg.enforce_bandwidth {
            Some(match cfg.msg_size {
                MsgSizeMode::Congest => 4 * id_bits + 96,
                MsgSizeMode::Large => (i1_cap + 2) * id_bits + 96,
            })
        } else {
            None
        };

        let mut params = Params {
            n,
            cfg,
            ln_n,
            contender_prob,
            walks_per_contender,
            tau_intersection,
            tau_distinct,
            id_max,
            max_epochs,
            frag,
            bandwidth_bits,
            epoch_starts: Vec::new(),
        };
        let mut starts = Vec::with_capacity(max_epochs as usize + 1);
        let mut acc = 0u64;
        starts.push(0);
        for e in 0..max_epochs {
            acc += 6 * params.segment_budget(e);
            starts.push(acc);
        }
        params.epoch_starts = starts;
        Ok(params)
    }

    /// Walk length `t_u` of epoch `e` (`2^e`, or the fixed baseline
    /// length).
    pub fn walk_len(&self, epoch: u32) -> u32 {
        match self.cfg.fixed_walk_len {
            Some(l) => l.max(1),
            None => 1u32 << epoch.min(31),
        }
    }

    /// Segment budget `T_e = max(t_u + 2, ⌈c_T·t_u·ln²n⌉)` rounds.
    pub fn segment_budget(&self, epoch: u32) -> u64 {
        let l = self.walk_len(epoch) as f64;
        let t = (self.cfg.c_t * l * self.ln_n * self.ln_n).ceil() as u64;
        t.max(self.walk_len(epoch) as u64 + 2)
    }

    /// Total number of segments (5 per epoch).
    pub fn total_segments(&self) -> u64 {
        5 * self.max_epochs as u64
    }

    /// Round at which global segment `seg` begins, in [`SyncMode::FixedT`].
    /// `seg == total_segments()` gives the end of the schedule.
    pub fn segment_boundary(&self, seg: u64) -> u64 {
        let epoch = (seg / 5).min(self.max_epochs as u64);
        if epoch == self.max_epochs as u64 {
            return self.epoch_starts[self.max_epochs as usize];
        }
        let t = self.segment_budget(epoch as u32);
        self.epoch_starts[epoch as usize] + (seg % 5) * t
    }

    /// Last round of the schedule plus drain slack — the engine run limit.
    pub fn round_limit(&self) -> u64 {
        self.segment_boundary(self.total_segments()) + 10 * self.segment_budget(self.max_epochs - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = Params::derive(1024, ElectionConfig::default());
        assert!(p.contender_prob > 0.0 && p.contender_prob < 0.05);
        // K = 2 * 32 * ln(1024) ≈ 443
        assert!(p.walks_per_contender >= 400 && p.walks_per_contender <= 500);
        // tau_int = 0.75 * 3 * 6.93 ≈ 15
        assert_eq!(p.tau_intersection, 15);
        assert_eq!(p.tau_distinct as u64, p.walks_per_contender as u64 / 2 + p.walks_per_contender as u64 % 2);
        assert_eq!(p.id_max, 1u64 << 40);
        assert_eq!(p.frag, 1);
    }

    #[test]
    fn small_n_clamps() {
        let p = Params::derive(4, ElectionConfig::default());
        assert!(p.contender_prob <= 1.0);
        assert!(p.tau_intersection >= 1);
        assert!(p.tau_distinct >= 1);
        assert!(p.walks_per_contender >= 1);
    }

    #[test]
    fn walk_lengths_double() {
        let p = Params::derive(64, ElectionConfig::default());
        assert_eq!(p.walk_len(0), 1);
        assert_eq!(p.walk_len(3), 8);
        // Cap 4n² = 16384: epochs up to 2^14.
        assert_eq!(p.max_epochs, 15);
    }

    #[test]
    fn fixed_walk_len_gives_single_epoch() {
        let cfg = ElectionConfig {
            fixed_walk_len: Some(12),
            ..ElectionConfig::default()
        };
        let p = Params::derive(64, cfg);
        assert_eq!(p.max_epochs, 1);
        assert_eq!(p.walk_len(0), 12);
        assert_eq!(p.walk_len(7), 12);
    }

    #[test]
    fn boundaries_are_monotone_and_consistent() {
        let p = Params::derive(128, ElectionConfig::default());
        let mut prev = 0;
        for seg in 0..=p.total_segments() {
            let b = p.segment_boundary(seg);
            assert!(b >= prev, "boundaries must be nondecreasing");
            prev = b;
        }
        // Epoch e spans 6 budgets: boundary(5(e+1)) - boundary(5e) = 6T_e.
        for e in 0..p.max_epochs as u64 - 1 {
            let span = p.segment_boundary(5 * (e + 1)) - p.segment_boundary(5 * e);
            assert_eq!(span, 6 * p.segment_budget(e as u32));
        }
        // Within an epoch, the first 4 boundaries are T apart.
        let t = p.segment_budget(2);
        for ph in 0..4 {
            assert_eq!(
                p.segment_boundary(10 + ph + 1) - p.segment_boundary(10 + ph),
                t
            );
        }
        assert!(p.round_limit() > p.segment_boundary(p.total_segments()));
    }

    #[test]
    fn phase_of_segment_cycles() {
        assert_eq!(Phase::of_segment(0), Phase::Walk);
        assert_eq!(Phase::of_segment(1), Phase::R1);
        assert_eq!(Phase::of_segment(2), Phase::R2);
        assert_eq!(Phase::of_segment(3), Phase::R3);
        assert_eq!(Phase::of_segment(4), Phase::Wait);
        assert_eq!(Phase::of_segment(5), Phase::Walk);
    }

    #[test]
    fn phase_tags_round_trip_in_segment_order() {
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.tag() as usize, i);
            assert_eq!(Phase::from_tag(p.tag()), Some(p));
            assert_eq!(Phase::of_segment(i as u64), p);
            assert!(!p.name().is_empty());
        }
        assert_eq!(Phase::from_tag(5), None);
        assert_eq!(Phase::from_tag(255), None);
    }

    #[test]
    fn large_mode_widens_messages() {
        let congest = Params::derive(256, ElectionConfig::default());
        let large = Params::derive(
            256,
            ElectionConfig {
                msg_size: MsgSizeMode::Large,
                ..ElectionConfig::default()
            },
        );
        assert!(large.frag > congest.frag);
        assert!(large.bandwidth_bits.unwrap() > congest.bandwidth_bits.unwrap());
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_tiny_n() {
        let _ = Params::derive(1, ElectionConfig::default());
    }

    #[test]
    fn try_derive_rejects_bad_constants() {
        for (patch, name) in [
            (ElectionConfig { c1: f64::NAN, ..ElectionConfig::default() }, "c1"),
            (ElectionConfig { c1: 0.0, ..ElectionConfig::default() }, "c1"),
            (ElectionConfig { c2: -1.0, ..ElectionConfig::default() }, "c2"),
            (ElectionConfig { c2: f64::INFINITY, ..ElectionConfig::default() }, "c2"),
            (ElectionConfig { c_t: 0.0, ..ElectionConfig::default() }, "c_t"),
        ] {
            match Params::try_derive(64, patch) {
                Err(ConfigError::BadConstant { name: got, .. }) => assert_eq!(got, name),
                other => panic!("{name}: expected BadConstant, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_derive_rejects_zero_walk_caps_and_tiny_n() {
        let zero_cap = ElectionConfig {
            max_walk_len: Some(0),
            ..ElectionConfig::default()
        };
        assert_eq!(
            Params::try_derive(64, zero_cap).unwrap_err(),
            ConfigError::ZeroWalkCap
        );
        let zero_fixed = ElectionConfig {
            fixed_walk_len: Some(0),
            ..ElectionConfig::default()
        };
        assert_eq!(
            Params::try_derive(64, zero_fixed).unwrap_err(),
            ConfigError::ZeroFixedWalk
        );
        assert_eq!(
            Params::try_derive(1, ElectionConfig::default()).unwrap_err(),
            ConfigError::TooFewNodes { n: 1 }
        );
        assert!(Params::try_derive(2, ElectionConfig::default()).is_ok());
    }
}
