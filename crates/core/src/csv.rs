//! Minimal RFC 4180 CSV field handling for the report writers.
//!
//! Numeric columns never need quoting, but scenario labels are
//! free-form strings ([`Campaign::label`](crate::Campaign::label)
//! accepts anything) — a label like `p=0.05, dumbbell` written raw
//! would silently corrupt the column structure. Every string field in
//! the CSV writers ([`CampaignSummary::csv_row`](crate::CampaignSummary::csv_row),
//! [`Trial::csv_row`](crate::Trial::csv_row)) goes through
//! [`escape`], and the resume-manifest reader parses rows back with
//! [`split_row`], so arbitrary labels survive a round-trip exactly.

use std::borrow::Cow;

/// Quotes a field per RFC 4180 when it needs it: fields containing a
/// comma, a double quote, or a line break are wrapped in double quotes
/// with internal quotes doubled; anything else passes through borrowed
/// and unchanged.
pub fn escape(field: &str) -> Cow<'_, str> {
    if field.contains(['"', ',', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        Cow::Owned(out)
    } else {
        Cow::Borrowed(field)
    }
}

/// Splits one CSV row into its fields, undoing [`escape`]: quoted
/// fields may contain commas and doubled quotes. Returns `None` for a
/// malformed row (an unterminated quoted field, or garbage after a
/// closing quote) — the resume reader treats that as a torn partial
/// write rather than guessing.
pub fn split_row(row: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = row.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                // Quoted field: consume to the closing quote, mapping
                // doubled quotes to literal ones.
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') => match chars.peek() {
                            Some('"') => {
                                chars.next();
                                field.push('"');
                            }
                            _ => break,
                        },
                        Some(c) => field.push(c),
                        None => return None, // unterminated quote
                    }
                }
                match chars.next() {
                    None => {
                        fields.push(std::mem::take(&mut field));
                        return Some(fields);
                    }
                    Some(',') => fields.push(std::mem::take(&mut field)),
                    Some(_) => return None, // garbage after closing quote
                }
            }
            _ => {
                // Unquoted field: up to the next comma or end of row.
                loop {
                    match chars.next() {
                        None => {
                            fields.push(std::mem::take(&mut field));
                            return Some(fields);
                        }
                        Some(',') => {
                            fields.push(std::mem::take(&mut field));
                            break;
                        }
                        Some('"') => return None, // quote inside bare field
                        Some(c) => field.push(c),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through_borrowed() {
        assert!(matches!(escape("p=0.05"), Cow::Borrowed("p=0.05")));
        assert!(matches!(escape(""), Cow::Borrowed("")));
    }

    #[test]
    fn commas_quotes_and_newlines_are_quoted() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn split_undoes_escape_exactly() {
        for label in ["plain", "p=0.05, dumbbell", "q\"uo\"te", "both, \"x\"", ""] {
            let row = format!("{},7,true", escape(label));
            let fields = split_row(&row).unwrap();
            assert_eq!(fields, vec![label.to_string(), "7".into(), "true".into()]);
        }
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert_eq!(split_row("\"unterminated"), None);
        assert_eq!(split_row("\"x\"y,z"), None);
        assert_eq!(split_row("ba\"re"), None);
    }

    #[test]
    fn empty_and_trailing_fields() {
        assert_eq!(split_row("").unwrap(), vec![String::new()]);
        assert_eq!(split_row("a,,b,").unwrap(), vec!["a", "", "b", ""]);
    }
}
