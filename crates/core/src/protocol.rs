//! The node protocol implementing Algorithms 1 and 2 of the paper.
//!
//! Life of an epoch `e` (walk length `t_u = 2^e`, segment budget `T_e`):
//!
//! 1. **Walk** — active contenders launch `c2·√n·ln n` aggregated walk
//!    tokens; every node forwards token batches one lazy step per round,
//!    recording breadcrumb trails. Tokens with `remaining = 0` register
//!    proxy records.
//! 2. **R1** — proxies send each current-epoch origin its id, walk count
//!    (the distinctness bit `d`), the set `I1` of other contenders they
//!    serve, and any known winner — reverse-routed along the trails.
//! 3. **R2** — contenders broadcast `I2` (union of received `I1`s) forward
//!    to their proxies.
//! 4. **R3** — proxies reverse-route `I3` (union of received `I2`s) to
//!    their current-epoch contenders.
//! 5. **Decide + wait (2T)** — contenders check the Intersection and
//!    Distinctness properties; on success they stop, commit their trails
//!    with a `StopMark` wave, and — if they hold the largest id in `I4`
//!    and have heard no winner — declare leadership and flood a winner
//!    wave (proxies relay it to all their contenders).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::RngExt;
use welle_congest::{Context, Protocol, Signal};
use welle_graph::Port;
use welle_walks::{split_lazy, Hop, ReverseRoute, TrailStore};

use crate::config::{Params, Phase, SyncMode};
use crate::msg::{ElectionMsg, FwdItem, MsgView, RevItem};
use crate::state::{ContenderState, Decision, EpochRecord, NodeStats, ProxyRecord};

/// The signal value the adaptive driver broadcasts to advance one segment.
pub const SIGNAL_ADVANCE: Signal = 1;

/// One anonymous node running the election (Algorithm 1 + 2).
#[derive(Debug)]
pub struct ElectionNode {
    params: Arc<Params>,
    id: u64,
    contender: Option<ContenderState>,
    decided: Option<Decision>,
    decided_round: Option<u64>,
    trails: TrailStore,
    proxies: BTreeMap<u64, ProxyRecord>,
    /// Lazy-step holdovers: `(origin, epoch, remaining, count)` to process
    /// next round.
    pending_stays: Vec<(u64, u32, u32, u32)>,
    /// Union of `I2` fragments received this epoch while acting as proxy.
    i3_acc: std::collections::BTreeSet<u64>,
    /// Per-epoch forward dedup ("filtering and forwarding"). Ordered
    /// container: seeded-path state must never depend on hash order
    /// (enforced by `welle-lint`'s `no-hash-iter`).
    fwd_seen: BTreeSet<u64>,
    winner_heard: Option<u64>,
    winner_relayed_as_proxy: bool,
    /// Next unfired global segment index.
    seg_idx: u64,
    cur_epoch: u32,
    /// Phase of the most recently fired segment — published through
    /// [`Protocol::phase_tag`] for the telemetry layer. Segment firing
    /// is driven by the shared round clock (FixedT) or the broadcast
    /// advance signal (Adaptive), so every node that fires in a round
    /// publishes the same phase regardless of executor or callback
    /// order.
    cur_phase: Phase,
    stats: NodeStats,
}

impl ElectionNode {
    /// Creates a node sharing the derived parameters.
    pub fn new(params: Arc<Params>) -> Self {
        ElectionNode {
            params,
            id: 0,
            contender: None,
            decided: None,
            decided_round: None,
            trails: TrailStore::new(),
            proxies: BTreeMap::new(),
            pending_stays: Vec::new(),
            i3_acc: std::collections::BTreeSet::new(),
            fwd_seen: BTreeSet::new(),
            winner_heard: None,
            winner_relayed_as_proxy: false,
            seg_idx: 0,
            cur_epoch: 0,
            cur_phase: Phase::Walk,
            stats: NodeStats::default(),
        }
    }

    /// The node's random id in `[1, n⁴]` (drawn at start).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the node designated itself contender.
    pub fn is_contender(&self) -> bool {
        self.contender.is_some()
    }

    /// The contender-side state, if any.
    pub fn contender_state(&self) -> Option<&ContenderState> {
        self.contender.as_ref()
    }

    /// The node's final decision, once made.
    pub fn decision(&self) -> Option<Decision> {
        self.decided
    }

    /// Round at which the decision was made.
    pub fn decided_round(&self) -> Option<u64> {
        self.decided_round
    }

    /// Winner id this node has heard of, if any.
    pub fn winner_heard(&self) -> Option<u64> {
        self.winner_heard
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // Segment machinery
    // ------------------------------------------------------------------

    fn fire_due_segments(&mut self, ctx: &mut Context<'_, ElectionMsg>) {
        if self.params.cfg.sync != SyncMode::FixedT {
            return;
        }
        while self.seg_idx < self.params.total_segments()
            && self.params.segment_boundary(self.seg_idx) <= ctx.round()
        {
            let seg = self.seg_idx;
            self.seg_idx += 1;
            self.fire_segment(ctx, seg);
        }
    }

    fn schedule_next_wake(&mut self, ctx: &mut Context<'_, ElectionMsg>) {
        if self.params.cfg.sync != SyncMode::FixedT {
            return;
        }
        if self.seg_idx >= self.params.total_segments() {
            return;
        }
        if self.has_segment_role() {
            let next = self.params.segment_boundary(self.seg_idx);
            ctx.wake_at(next);
        }
    }

    /// Does this node need to act at upcoming segment boundaries?
    fn has_segment_role(&self) -> bool {
        if let Some(c) = &self.contender {
            if c.active {
                return true;
            }
        }
        self.proxies
            .values()
            .any(|r| r.epoch == self.cur_epoch && !r.finalized)
    }

    fn fire_segment(&mut self, ctx: &mut Context<'_, ElectionMsg>, seg: u64) {
        let epoch = (seg / 5) as u32;
        self.cur_epoch = epoch;
        self.cur_phase = Phase::of_segment(seg);
        match Phase::of_segment(seg) {
            Phase::Walk => self.begin_epoch(ctx, epoch),
            Phase::R1 => self.emit_r1(ctx, epoch),
            Phase::R2 => self.emit_r2(ctx, epoch),
            Phase::R3 => self.emit_r3(ctx, epoch),
            Phase::Wait => self.decide(ctx, epoch),
        }
    }

    fn begin_epoch(&mut self, ctx: &mut Context<'_, ElectionMsg>, epoch: u32) {
        // GC: tentative records of older epochs can never be used again.
        self.trails.gc(epoch);
        self.proxies
            .retain(|_, r| r.finalized || r.epoch >= epoch);
        self.i3_acc.clear();
        self.fwd_seen.clear();

        let launch = match &mut self.contender {
            Some(c) if c.active => {
                c.begin_epoch();
                true
            }
            _ => false,
        };
        if launch {
            let len = self.params.walk_len(epoch);
            let count = self.params.walks_per_contender;
            self.handle_walk_tokens(ctx, self.id, epoch, len, count, Hop::Origin);
        }
    }

    fn emit_r1(&mut self, ctx: &mut Context<'_, ElectionMsg>, epoch: u32) {
        // Proxies answer the *current-epoch* contenders (stopped
        // contenders no longer evaluate properties, so no reply needed;
        // their ids still flow inside I1).
        let emissions: Vec<(u64, u32, u32)> = self
            .proxies
            .iter()
            .filter(|(_, r)| r.epoch == epoch && !r.finalized)
            .map(|(&o, r)| (o, r.walk_len, r.count))
            .collect();
        for (origin, walk_len, count) in emissions {
            self.send_reverse(
                ctx,
                origin,
                epoch,
                walk_len,
                RevItem::ProxyInfo {
                    proxy_id: self.id,
                    count,
                },
            );
            let i1: Vec<u64> = self
                .proxies
                .iter()
                .filter(|(&o2, r2)| o2 != origin && r2.valid_at(epoch))
                .map(|(&o2, _)| o2)
                .collect();
            for chunk in i1.chunks(self.params.frag) {
                self.send_reverse(
                    ctx,
                    origin,
                    epoch,
                    walk_len,
                    RevItem::KnownContenders { ids: chunk },
                );
            }
            if let Some(w) = self.winner_heard {
                self.send_reverse(ctx, origin, epoch, walk_len, RevItem::Winner { id: w });
            }
        }
    }

    fn emit_r2(&mut self, ctx: &mut Context<'_, ElectionMsg>, epoch: u32) {
        let ids: Vec<u64> = match &self.contender {
            Some(c) if c.active => {
                // I2 plus our own id: strictly more information than the
                // paper's I2 (our id reaches I3/I4 anyway through shared
                // proxies whenever it matters); can only reduce the
                // multi-leader risk, never the at-least-one guarantee.
                let mut v: Vec<u64> = c.i2.iter().copied().collect();
                v.push(self.id);
                v
            }
            _ => return,
        };
        for chunk in ids.chunks(self.params.frag) {
            let m = ElectionMsg::fwd(self.id, epoch, 0, FwdItem::I2Ids { ids: chunk });
            self.process_forward(ctx, m);
        }
    }

    fn emit_r3(&mut self, ctx: &mut Context<'_, ElectionMsg>, epoch: u32) {
        if self.i3_acc.is_empty() {
            return;
        }
        let emissions: Vec<(u64, u32)> = self
            .proxies
            .iter()
            .filter(|(_, r)| r.epoch == epoch && !r.finalized)
            .map(|(&o, r)| (o, r.walk_len))
            .collect();
        if emissions.is_empty() {
            return;
        }
        let i3: Vec<u64> = self.i3_acc.iter().copied().collect();
        for (origin, walk_len) in emissions {
            for chunk in i3.chunks(self.params.frag) {
                self.send_reverse(
                    ctx,
                    origin,
                    epoch,
                    walk_len,
                    RevItem::R3Contenders { ids: chunk },
                );
            }
        }
    }

    fn decide(&mut self, ctx: &mut Context<'_, ElectionMsg>, epoch: u32) {
        let Some(c) = &mut self.contender else {
            return;
        };
        if !c.active {
            return;
        }
        let distinct = c.distinct_proxies();
        let inter = c.i2.len();
        let satisfied =
            inter >= self.params.tau_intersection && distinct >= self.params.tau_distinct;
        // The known-t_mix baseline stops unconditionally after its single
        // phase (Kutten et al. [25] assume the guarantee holds).
        let baseline_stop = self.params.cfg.fixed_walk_len.is_some();
        let last_epoch = epoch + 1 >= self.params.max_epochs;
        c.history.push(EpochRecord {
            epoch,
            walk_len: self.params.walk_len(epoch),
            proxy_replies: c.proxy_counts.len(),
            distinct_proxies: distinct,
            i2_len: inter,
            satisfied,
        });

        if satisfied || baseline_stop || last_epoch {
            c.active = false;
            c.stopped_epoch = Some(epoch);
            c.gave_up = !(satisfied || baseline_stop);
            // Winning condition: largest id in I4 (∪ I2 ∪ {self}) and no
            // winner heard.
            let max_known = c
                .i4_extra
                .iter()
                .chain(c.i2.iter())
                .copied()
                .chain(std::iter::once(self.id))
                .max()
                .unwrap_or(self.id);
            let wins =
                !c.gave_up && self.winner_heard.is_none() && max_known == self.id;
            self.decided = Some(if wins {
                Decision::Leader
            } else {
                Decision::NonLeader
            });
            self.decided_round = Some(ctx.round());
            // Commit: proxies and trail nodes keep serving this epoch's
            // records (Fidelity note 5).
            let stop = ElectionMsg::fwd(self.id, epoch, 0, FwdItem::StopMark);
            self.process_forward(ctx, stop);
            if wins {
                self.winner_heard = Some(self.id);
                let win = ElectionMsg::fwd(self.id, epoch, 0, FwdItem::Winner { id: self.id });
                self.process_forward(ctx, win);
            }
        }
        // Otherwise stay active; the next Walk segment doubles the guess.
    }

    // ------------------------------------------------------------------
    // Walk forwarding
    // ------------------------------------------------------------------

    fn handle_walk_tokens(
        &mut self,
        ctx: &mut Context<'_, ElectionMsg>,
        origin: u64,
        epoch: u32,
        remaining: u32,
        count: u32,
        via: Hop,
    ) {
        let walk_len = self.params.walk_len(epoch);
        let step = walk_len.saturating_sub(remaining);
        let Some(trail) = self.trails.enter_epoch(origin, epoch, walk_len) else {
            self.stats.dropped_tokens += count as u64;
            return;
        };
        trail.record_in(step, via);
        if remaining == 0 {
            let rec = self.proxies.entry(origin).or_insert(ProxyRecord {
                epoch,
                walk_len,
                count: 0,
                finalized: false,
            });
            if rec.epoch != epoch {
                if rec.finalized {
                    // A stopped contender cannot generate new walks.
                    self.stats.dropped_tokens += count as u64;
                    return;
                }
                *rec = ProxyRecord {
                    epoch,
                    walk_len,
                    count: 0,
                    finalized: false,
                };
            }
            rec.count += count;
            return;
        }
        let split = split_lazy(count, ctx.degree(), ctx.rng());
        if split.stay > 0 {
            self.trails
                .enter_epoch(origin, epoch, walk_len)
                // welle-lint: allow(no-lib-unwrap) — invariant: enter_epoch for this (origin, epoch) succeeded lines above with the same walk_len
                .expect("trail just created")
                .record_out(step, Hop::Stay);
            self.pending_stays
                .push((origin, epoch, remaining - 1, split.stay));
            let next = ctx.round() + 1;
            ctx.wake_at(next);
        }
        for (port, cnt) in split.moves {
            self.trails
                .enter_epoch(origin, epoch, walk_len)
                // welle-lint: allow(no-lib-unwrap) — invariant: enter_epoch for this (origin, epoch) succeeded lines above with the same walk_len
                .expect("trail just created")
                .record_out(step, Hop::Via(port));
            ctx.send(port, ElectionMsg::walk(origin, epoch, remaining - 1, cnt));
        }
    }

    // ------------------------------------------------------------------
    // Reverse routing (proxy → contender)
    // ------------------------------------------------------------------

    fn send_reverse(
        &mut self,
        ctx: &mut Context<'_, ElectionMsg>,
        origin: u64,
        epoch: u32,
        step: u32,
        item: RevItem<'_>,
    ) {
        self.route_reverse(ctx, ElectionMsg::rev(origin, epoch, step, item));
    }

    /// Routes a reverse unit one hop: deliver at the origin, relay along
    /// the trail (re-addressed, sharing any interned id run), or drop.
    fn route_reverse(&mut self, ctx: &mut Context<'_, ElectionMsg>, msg: ElectionMsg) {
        let MsgView::Rev {
            origin,
            epoch,
            step,
            ..
        } = msg.view()
        else {
            return;
        };
        let route = match self.trails.at_epoch(origin, epoch) {
            Some(trail) => trail.reverse_route(step),
            None => ReverseRoute::Broken,
        };
        match route {
            ReverseRoute::AtOrigin => {
                if self.id == origin {
                    if let MsgView::Rev { item, .. } = msg.view() {
                        self.deliver_to_contender(ctx, epoch, item);
                    }
                } else {
                    self.stats.broken_routes += 1;
                }
            }
            ReverseRoute::Forward(port, next_step) => {
                ctx.send(port, msg.with_step(next_step));
            }
            ReverseRoute::Broken => self.stats.broken_routes += 1,
        }
    }

    fn deliver_to_contender(
        &mut self,
        ctx: &mut Context<'_, ElectionMsg>,
        epoch: u32,
        item: RevItem<'_>,
    ) {
        match item {
            RevItem::ProxyInfo { proxy_id, count } => {
                if let Some(c) = &mut self.contender {
                    if c.active && epoch == self.cur_epoch {
                        c.proxy_counts.insert(proxy_id, count);
                    }
                }
            }
            RevItem::KnownContenders { ids } => {
                if let Some(c) = &mut self.contender {
                    if c.active && epoch == self.cur_epoch {
                        c.i2.extend(ids.iter().copied());
                    }
                }
            }
            RevItem::R3Contenders { ids } => {
                if let Some(c) = &mut self.contender {
                    if c.active && epoch == self.cur_epoch {
                        c.i4_extra.extend(ids.iter().copied());
                    }
                }
            }
            RevItem::Winner { id } => self.hear_winner_as_contender(ctx, id),
        }
    }

    /// Rule 7: the first time a contender hears of a winner, it forwards
    /// the message to all its proxies (and never elects itself).
    fn hear_winner_as_contender(&mut self, ctx: &mut Context<'_, ElectionMsg>, winner: u64) {
        if self.winner_heard.is_some() {
            return;
        }
        self.winner_heard = Some(winner);
        if self.contender.is_some() {
            if let Some(trail) = self.trails.current(self.id) {
                let epoch = trail.epoch();
                let m = ElectionMsg::fwd(self.id, epoch, 0, FwdItem::Winner { id: winner });
                self.process_forward(ctx, m);
            }
        }
    }

    // ------------------------------------------------------------------
    // Forward routing (contender → proxies)
    // ------------------------------------------------------------------

    fn process_forward(&mut self, ctx: &mut Context<'_, ElectionMsg>, msg: ElectionMsg) {
        let key = match msg.view() {
            MsgView::Fwd { origin, item, .. } => ElectionMsg::fwd_dedup_key(origin, &item),
            _ => return,
        };
        if !self.fwd_seen.insert(key) {
            return;
        }
        let origin = msg.origin();
        let epoch = msg.epoch();
        let Some(trail) = self.trails.at_epoch(origin, epoch) else {
            self.stats.broken_routes += 1;
            return;
        };
        let ports = trail.distinct_out_ports();
        let is_proxy = self
            .proxies
            .get(&origin)
            .is_some_and(|r| r.epoch == epoch);
        for port in ports {
            // Re-address to step 0 for the next hop; interned id runs
            // are shared, not re-cloned per edge.
            ctx.send(port, msg.with_step(0));
        }
        match msg.view() {
            MsgView::Fwd {
                item: FwdItem::StopMark,
                ..
            } => {
                self.trails.finalize(origin, epoch);
                if let Some(rec) = self.proxies.get_mut(&origin) {
                    if rec.epoch == epoch {
                        rec.finalized = true;
                    }
                }
            }
            MsgView::Fwd {
                item: FwdItem::I2Ids { ids },
                ..
            } if is_proxy => {
                self.i3_acc.extend(ids.iter().copied());
            }
            MsgView::Fwd {
                item: FwdItem::Winner { id },
                ..
            } if is_proxy => {
                self.hear_winner_as_proxy(ctx, id);
            }
            _ => {}
        }
    }

    /// Rule 6: the first time a proxy receives a winner message, it sends
    /// it to all its contenders.
    fn hear_winner_as_proxy(&mut self, ctx: &mut Context<'_, ElectionMsg>, winner: u64) {
        if self.winner_heard.is_none() {
            self.winner_heard = Some(winner);
        }
        if self.winner_relayed_as_proxy {
            return;
        }
        self.winner_relayed_as_proxy = true;
        let targets: Vec<(u64, u32, u32)> = self
            .proxies
            .iter()
            .filter(|(_, r)| r.valid_at(self.cur_epoch))
            .map(|(&o, r)| (o, r.epoch, r.walk_len))
            .collect();
        for (origin, epoch, walk_len) in targets {
            if origin == self.id {
                continue;
            }
            self.send_reverse(ctx, origin, epoch, walk_len, RevItem::Winner { id: winner });
        }
    }

    fn handle_message(
        &mut self,
        ctx: &mut Context<'_, ElectionMsg>,
        port: Port,
        msg: ElectionMsg,
    ) {
        if let MsgView::Walk {
            origin,
            epoch,
            remaining,
            count,
        } = msg.view()
        {
            self.handle_walk_tokens(ctx, origin, epoch, remaining, count, Hop::Via(port));
            return;
        }
        if msg.is_rev() {
            self.route_reverse(ctx, msg);
        } else {
            self.process_forward(ctx, msg);
        }
    }
}

impl Protocol for ElectionNode {
    type Msg = ElectionMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ElectionMsg>) {
        // Algorithm 1: random id in [1, n⁴]; contender with prob c1·ln n/n.
        self.id = ctx.rng().random_range(1..=self.params.id_max);
        let is_contender = ctx.rng().random_bool(self.params.contender_prob);
        if is_contender {
            self.contender = Some(ContenderState::new());
        } else {
            // Non-contenders declare non-leader immediately (line 4).
            self.decided = Some(Decision::NonLeader);
            self.decided_round = Some(0);
        }
        // Epoch 0 begins now, in both sync modes.
        self.seg_idx = 1;
        self.fire_segment(ctx, 0);
        self.schedule_next_wake(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ElectionMsg>, inbox: &mut Vec<(Port, ElectionMsg)>) {
        // Lazy-step holdovers from last round first.
        let stays = std::mem::take(&mut self.pending_stays);
        for (origin, epoch, remaining, count) in stays {
            self.handle_walk_tokens(ctx, origin, epoch, remaining, count, Hop::Stay);
        }
        for (port, msg) in inbox.drain(..) {
            self.handle_message(ctx, port, msg);
        }
        self.fire_due_segments(ctx);
        self.schedule_next_wake(ctx);
    }

    fn on_signal(&mut self, ctx: &mut Context<'_, ElectionMsg>, signal: Signal) {
        if signal == SIGNAL_ADVANCE
            && self.params.cfg.sync == SyncMode::Adaptive
            && self.seg_idx < self.params.total_segments()
        {
            let seg = self.seg_idx;
            self.seg_idx += 1;
            self.fire_segment(ctx, seg);
        }
    }

    fn is_done(&self) -> bool {
        self.decided.is_some()
    }

    fn phase_tag(&self) -> Option<u8> {
        Some(self.cur_phase.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ElectionConfig;

    #[test]
    fn node_construction_defaults() {
        let params = Arc::new(Params::derive(64, ElectionConfig::default()));
        let node = ElectionNode::new(params);
        assert_eq!(node.id(), 0);
        assert!(!node.is_contender());
        assert!(node.decision().is_none());
        assert_eq!(node.stats(), NodeStats::default());
    }

    // Full protocol behaviour is exercised through the runner tests in
    // `runner.rs` and the integration tests at the workspace root.
}
