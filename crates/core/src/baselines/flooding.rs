//! Flood-max: the classic `O(m·D)`-message implicit election.
//!
//! Every node draws a random id from `[1, n⁴]` and floods the maximum it
//! has seen. The node whose own id survives is the leader. This is the
//! "obvious" baseline whose `Ω(m)` cost (Kutten et al. [24]) the paper
//! beats on well-connected graphs — Experiment E10 measures the
//! crossover.

use std::sync::Arc;

use rand::RngExt;
use welle_congest::{Context, Engine, EngineConfig, Protocol};
use welle_graph::{Graph, Port};

use super::BaselineReport;

/// Flood-max node with a random id (drawn at start, paper's id range).
#[derive(Clone, Debug)]
pub struct FloodMaxElection {
    id_max: u64,
    id: u64,
    best: u64,
    started: bool,
}

impl FloodMaxElection {
    /// Creates a node; ids are drawn from `[1, id_max]` at start.
    pub fn new(id_max: u64) -> Self {
        FloodMaxElection {
            id_max,
            id: 0,
            best: 0,
            started: false,
        }
    }

    /// This node's drawn id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this node still believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.started && self.best == self.id
    }

    fn flood(&self, ctx: &mut Context<'_, u64>) {
        for p in 0..ctx.degree() {
            ctx.send(Port::new(p), self.best);
        }
    }
}

impl Protocol for FloodMaxElection {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.id = ctx.rng().random_range(1..=self.id_max);
        self.best = self.id;
        self.started = true;
        self.flood(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &mut Vec<(Port, u64)>) {
        let mut improved = false;
        for (_, id) in inbox.drain(..) {
            if id > self.best {
                self.best = id;
                improved = true;
            }
        }
        if improved {
            self.flood(ctx);
        }
    }

    fn is_done(&self) -> bool {
        self.started
    }
}

/// Runs flood-max to quiescence and reports the surviving leader(s).
pub fn run_flood_max(graph: &Arc<Graph>, seed: u64) -> BaselineReport {
    let n = graph.n();
    let id_max = (n as u128).pow(4).min(u64::MAX as u128) as u64;
    let mut engine = Engine::from_fn(
        Arc::clone(graph),
        EngineConfig {
            seed,
            bandwidth_bits: None,
        },
        |_| FloodMaxElection::new(id_max),
    );
    let outcome = engine.run(1_000_000);
    let leaders = engine
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_leader())
        .map(|(i, _)| i)
        .collect();
    BaselineReport {
        leaders,
        messages: engine.metrics().messages,
        bits: engine.metrics().bits,
        rounds: outcome.round(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::gen;

    #[test]
    fn flood_max_elects_exactly_one() {
        for seed in 0..5u64 {
            let g = Arc::new(gen::torus2d(5, 6).unwrap());
            let report = run_flood_max(&g, seed);
            assert!(report.is_success(), "seed {seed}: {:?}", report.leaders);
        }
    }

    #[test]
    fn message_count_scales_with_m() {
        let small = Arc::new(gen::clique(16).unwrap());
        let large = Arc::new(gen::clique(48).unwrap());
        let a = run_flood_max(&small, 1).messages;
        let b = run_flood_max(&large, 1).messages;
        // m grows 9.7x; flood-max messages should grow at least ~5x.
        assert!(b > 5 * a, "small {a}, large {b}");
    }
}
