//! Baseline election algorithms the paper compares against.

mod flooding;
mod known_mixing;
mod ring;

pub use flooding::{run_flood_max, FloodMaxElection};
pub use known_mixing::run_known_tmix_election;
pub use ring::{run_hirschberg_sinclair, HsMsg, HsNode};

/// Common summary for simple baselines.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// Nodes believing they are the leader at quiescence.
    pub leaders: Vec<usize>,
    /// Total messages.
    pub messages: u64,
    /// Total bits.
    pub bits: u64,
    /// Rounds until quiescence.
    pub rounds: u64,
}

impl BaselineReport {
    /// Exactly one leader?
    pub fn is_success(&self) -> bool {
        self.leaders.len() == 1
    }
}
