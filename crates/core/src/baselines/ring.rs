//! Hirschberg–Sinclair on rings: the classic `O(n log n)`-message,
//! `O(n)`-round election for bidirectional rings, included as the
//! specialized baseline the paper's general bounds are often contrasted
//! with (§1 cites the ring literature: Chang–Roberts, Frederickson–Lynch,
//! HS).
//!
//! The protocol runs in phases: in phase `k` a still-active candidate
//! sends probes `2^k` hops in both directions; a probe is bounced back
//! unless it meets a larger id, and a candidate that receives both its
//! probes back advances to phase `k + 1`. A probe returning to its own
//! originator after travelling the full ring makes that originator the
//! leader. Works on unoriented rings (port numbering carries no
//! direction; the protocol treats its two ports symmetrically).

use rand::RngExt;
use welle_congest::{bits_for, Context, Payload, Protocol};
use welle_graph::Port;

use super::BaselineReport;

/// Message of the HS protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HsMsg {
    /// Outbound probe `⟨id, phase, hops_remaining⟩`.
    Probe {
        /// Originator's id.
        id: u64,
        /// Phase number.
        phase: u32,
        /// Hops still to travel before bouncing.
        hops: u32,
    },
    /// A probe echoing back to its originator.
    Echo {
        /// Originator's id.
        id: u64,
        /// Phase number.
        phase: u32,
    },
    /// Declaration flooded by the winner so the ring quiesces knowing
    /// the election finished (implicit election only needs the winner to
    /// know, but termination detection keeps runs finite).
    Elected {
        /// Winner's id.
        id: u64,
    },
}

/// A null echo: fills recycled engine arena slots (the [`Payload`]
/// contract) and is never sent by the protocol (probe ids are ≥ 1).
impl Default for HsMsg {
    fn default() -> Self {
        HsMsg::Echo { id: 0, phase: 0 }
    }
}

impl Payload for HsMsg {
    fn bit_size(&self) -> usize {
        match self {
            HsMsg::Probe { id, phase, hops } => {
                2 + bits_for(*id) + bits_for(*phase as u64 + 1) + bits_for(*hops as u64 + 1)
            }
            HsMsg::Echo { id, phase } => 2 + bits_for(*id) + bits_for(*phase as u64 + 1),
            HsMsg::Elected { id } => 2 + bits_for(*id),
        }
    }
}

/// Node state for Hirschberg–Sinclair.
#[derive(Clone, Debug)]
pub struct HsNode {
    id_max: u64,
    id: u64,
    active: bool,
    phase: u32,
    echoes: u8,
    leader: Option<u64>,
    done: bool,
}

impl HsNode {
    /// Creates a node; ids are drawn from `[1, id_max]` at start.
    pub fn new(id_max: u64) -> Self {
        HsNode {
            id_max,
            id: 0,
            active: false,
            phase: 0,
            echoes: 0,
            leader: None,
            done: false,
        }
    }

    /// This node's drawn id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The winner this node learned of, if the election finished.
    pub fn leader(&self) -> Option<u64> {
        self.leader
    }

    /// Whether this node is the elected leader.
    pub fn is_leader(&self) -> bool {
        self.leader == Some(self.id)
    }

    fn launch_phase(&mut self, ctx: &mut Context<'_, HsMsg>) {
        self.echoes = 0;
        let probe = HsMsg::Probe {
            id: self.id,
            phase: self.phase,
            hops: 1u32 << self.phase,
        };
        ctx.send(Port::new(0), probe);
        ctx.send(Port::new(1), probe);
    }

    fn other(port: Port) -> Port {
        Port::new(1 - port.index())
    }
}

impl Protocol for HsNode {
    type Msg = HsMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, HsMsg>) {
        assert_eq!(ctx.degree(), 2, "Hirschberg-Sinclair requires a ring");
        self.id = ctx.rng().random_range(1..=self.id_max);
        self.active = true;
        self.launch_phase(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, HsMsg>, inbox: &mut Vec<(Port, HsMsg)>) {
        for (port, msg) in inbox.drain(..) {
            match msg {
                HsMsg::Probe { id, phase, hops } => {
                    if id == self.id {
                        // The probe went all the way around: leader.
                        if self.leader.is_none() {
                            self.leader = Some(self.id);
                            ctx.send(Port::new(0), HsMsg::Elected { id: self.id });
                        }
                    } else if id > self.id {
                        // Relay or bounce; smaller local id defers.
                        self.active = false;
                        if hops > 1 {
                            ctx.send(Self::other(port), HsMsg::Probe { id, phase, hops: hops - 1 });
                        } else {
                            ctx.send(port, HsMsg::Echo { id, phase });
                        }
                    }
                    // id < self.id: swallow the probe.
                }
                HsMsg::Echo { id, phase } => {
                    if id == self.id {
                        if phase == self.phase && self.leader.is_none() {
                            self.echoes += 1;
                            if self.echoes == 2 {
                                self.phase += 1;
                                self.launch_phase(ctx);
                            }
                        }
                    } else {
                        // Relay the echo towards its originator.
                        ctx.send(Self::other(port), HsMsg::Echo { id, phase });
                    }
                }
                HsMsg::Elected { id } => {
                    if !self.done {
                        self.done = true;
                        self.leader = Some(id);
                        ctx.send(Self::other(port), HsMsg::Elected { id });
                    }
                }
            }
        }
        if self.leader == Some(self.id) {
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs Hirschberg–Sinclair on a ring graph.
///
/// # Panics
///
/// Panics (inside the engine) if the graph is not 2-regular.
pub fn run_hirschberg_sinclair(
    graph: &std::sync::Arc<welle_graph::Graph>,
    seed: u64,
) -> BaselineReport {
    let n = graph.n();
    let id_max = (n as u128).pow(4).min(u64::MAX as u128) as u64;
    let mut engine = welle_congest::Engine::from_fn(
        std::sync::Arc::clone(graph),
        welle_congest::EngineConfig {
            seed,
            bandwidth_bits: None,
        },
        |_| HsNode::new(id_max),
    );
    let outcome = engine.run(100 * n as u64 + 1_000);
    let leaders = engine
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_leader())
        .map(|(i, _)| i)
        .collect();
    BaselineReport {
        leaders,
        messages: engine.metrics().messages,
        bits: engine.metrics().bits,
        rounds: outcome.round(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use welle_graph::gen;

    #[test]
    fn hs_elects_exactly_one_on_rings() {
        for n in [4usize, 16, 64] {
            for seed in 0..3u64 {
                let g = Arc::new(gen::ring(n).unwrap());
                let report = run_hirschberg_sinclair(&g, seed);
                assert!(
                    report.is_success(),
                    "n={n} seed={seed}: {:?}",
                    report.leaders
                );
            }
        }
    }

    #[test]
    fn hs_message_complexity_is_n_log_n() {
        // Message count ~ c·n·log n: check growth between n and 4n stays
        // well below quadratic and near the n log n curve.
        let g64 = Arc::new(gen::ring(64).unwrap());
        let g256 = Arc::new(gen::ring(256).unwrap());
        let m64 = run_hirschberg_sinclair(&g64, 1).messages as f64;
        let m256 = run_hirschberg_sinclair(&g256, 1).messages as f64;
        let growth = m256 / m64;
        // n log n predicts 4·(8/6) ≈ 5.3; allow a generous band that
        // still excludes Θ(n²) (growth 16).
        assert!(
            growth > 3.0 && growth < 9.0,
            "growth {growth} inconsistent with n log n"
        );
    }

    #[test]
    fn everyone_learns_the_leader() {
        let g = Arc::new(gen::ring(32).unwrap());
        let id_max = (32u128.pow(4)) as u64;
        let mut engine = welle_congest::Engine::from_fn(
            Arc::clone(&g),
            welle_congest::EngineConfig::default(),
            |_| HsNode::new(id_max),
        );
        engine.run(10_000);
        let leader_ids: std::collections::HashSet<_> =
            engine.nodes().iter().filter_map(|p| p.leader()).collect();
        assert_eq!(leader_ids.len(), 1, "all nodes agree on the winner");
        assert_eq!(
            engine.nodes().iter().filter(|p| p.leader().is_some()).count(),
            32
        );
    }

    #[test]
    #[should_panic(expected = "ring")]
    fn hs_rejects_non_rings() {
        let g = Arc::new(gen::star(4).unwrap());
        let _ = run_hirschberg_sinclair(&g, 1);
    }
}
