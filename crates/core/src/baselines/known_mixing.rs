//! The Kutten et al. \[25\] baseline: identical walk machinery, but the
//! mixing time is *known* to all nodes, so a single phase with walk
//! length `c3·t_mix` suffices — no guess-and-double, no `log² n`
//! synchronization overhead. Experiment E12 compares it against the
//! paper's algorithm to quantify the price of not knowing `t_mix`.

use std::sync::Arc;

use welle_graph::Graph;

use crate::config::ElectionConfig;
use crate::election::Election;
use crate::runner::ElectionReport;

/// Runs the known-`t_mix` single-phase election.
///
/// `c3 ≥ 1` is the safety factor on the known mixing time (the paper's
/// Lemma 3 uses `t_u = c3·t_mix`).
pub fn run_known_tmix_election(
    graph: &Arc<Graph>,
    base: &ElectionConfig,
    tmix: u32,
    c3: u32,
    seed: u64,
) -> ElectionReport {
    let cfg = ElectionConfig {
        fixed_walk_len: Some(tmix.saturating_mul(c3).max(1)),
        ..*base
    };
    Election::on(graph)
        .config(cfg)
        .seed(seed)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use welle_graph::gen;
    use welle_walks::{mixing_time, MixingOptions};

    #[test]
    fn known_tmix_elects_unique_leader() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Arc::new(gen::random_regular(128, 4, &mut rng).unwrap());
        let tmix = mixing_time(&g, MixingOptions::default()).unwrap();
        let base = ElectionConfig::tuned_for_simulation(128);
        for seed in [1u64, 2, 3] {
            let report = run_known_tmix_election(&g, &base, tmix, 2, seed);
            assert!(
                report.is_success(),
                "seed {seed}: leaders {:?}",
                report.leaders
            );
            assert_eq!(report.epochs_used, 1, "single phase only");
        }
    }

    #[test]
    fn known_walk_length_single_phase_beats_guessing_in_rounds() {
        // Fair comparison: give the baseline the walk length at which the
        // guess-and-double run actually stopped. Its guaranteed advantage
        // is *time* — one phase instead of all the doubling phases plus
        // their synchronization overhead (the `log² n` factor of
        // Theorem 13 vs the single-phase Kutten et al. baseline).
        //
        // Message complexity carries no such guarantee in either
        // direction: guess-and-double prunes contenders between phases
        // and its early phases use short (cheap) walks, so one full phase
        // at the stopping length frequently costs MORE messages than the
        // whole doubling run; experiment E12 quantifies that trade-off.
        let mut rng = StdRng::seed_from_u64(8);
        let g = Arc::new(gen::random_regular(128, 4, &mut rng).unwrap());
        let base = ElectionConfig::tuned_for_simulation(128);
        let unknown = Election::on(&g).config(base).seed(5).run().unwrap();
        assert!(unknown.is_success());
        let known = run_known_tmix_election(&g, &base, unknown.final_walk_len, 1, 5);
        assert!(known.is_success());
        assert_eq!(known.epochs_used, 1, "baseline must finish in one phase");
        assert!(
            known.decided_round < unknown.decided_round,
            "single phase at the stopping length must decide sooner: {} vs {}",
            known.decided_round,
            unknown.decided_round
        );
    }

    #[test]
    fn oversized_fixed_walk_len_still_works() {
        // Overestimating t_mix costs time, not correctness.
        let mut rng = StdRng::seed_from_u64(9);
        let g = Arc::new(gen::random_regular(128, 4, &mut rng).unwrap());
        let base = ElectionConfig::tuned_for_simulation(128);
        let report = run_known_tmix_election(&g, &base, 64, 2, 4);
        assert!(report.is_success(), "leaders {:?}", report.leaders);
    }
}
