//! Typed configuration-validation errors.
//!
//! Every way an [`ElectionConfig`](crate::ElectionConfig) can be
//! nonsensical is caught when parameters are derived — at
//! [`Election`](crate::Election) builder time or in
//! [`Params::try_derive`](crate::Params::try_derive) — and reported as a
//! [`ConfigError`] instead of a panic or garbage parameters.

use std::error::Error;
use std::fmt;

/// A validation failure in an election configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// One of the tuning constants (`c1`, `c2`, `c_t`) is NaN, infinite,
    /// or not strictly positive. Tail-event injection (a contender
    /// probability of effectively zero) uses a tiny positive `c1`, not
    /// `c1 = 0`.
    BadConstant {
        /// The field name (`"c1"`, `"c2"`, or `"c_t"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `max_walk_len == Some(0)`: a zero-step walk can never leave its
    /// origin, so the guess-and-double search would give up immediately
    /// while looking like a real run.
    ZeroWalkCap,
    /// `fixed_walk_len == Some(0)`: the Kutten et al. baseline needs at
    /// least a 1-step walk.
    ZeroFixedWalk,
    /// The network has fewer than two nodes; an election needs company.
    TooFewNodes {
        /// The offending network size.
        n: usize,
    },
    /// [`Exec::Threaded`](crate::Exec::Threaded) was given zero worker
    /// threads.
    ZeroThreads,
    /// A [`Campaign`](crate::Campaign) was asked to run with no seeds.
    NoSeeds,
    /// A [`FaultPlan`](crate::FaultPlan) does not fit the graph it was
    /// attached to (bad probabilities, crash targets out of range, cuts
    /// naming missing edges).
    Fault(welle_congest::FaultError),
    /// An [`Exec::Async`](crate::Exec::Async) latency model has
    /// nonsensical parameters (negative or non-finite latency, an
    /// inverted uniform range, a service rate outside `(0, 1]`).
    Latency(welle_congest::LatencyError),
    /// A campaign's streaming results sink
    /// ([`Campaign::stream_csv`](crate::Campaign::stream_csv)) could not
    /// be created, written, or flushed.
    SinkIo {
        /// The sink path.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A resume manifest ([`Campaign::resume`](crate::Campaign::resume))
    /// does not belong to the campaign being resumed: the header or a
    /// completed row disagrees with the expected (scenario, seed) order.
    ResumeMismatch {
        /// The manifest path.
        path: String,
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadConstant { name, value } => write!(
                f,
                "election constant {name} must be finite and positive, got {value}"
            ),
            ConfigError::ZeroWalkCap => {
                write!(f, "max_walk_len = Some(0): walks need at least one step")
            }
            ConfigError::ZeroFixedWalk => {
                write!(f, "fixed_walk_len = Some(0): walks need at least one step")
            }
            ConfigError::TooFewNodes { n } => {
                write!(f, "election needs at least two nodes, got n = {n}")
            }
            ConfigError::ZeroThreads => {
                write!(f, "Exec::Threaded needs at least one worker thread")
            }
            ConfigError::NoSeeds => write!(f, "campaign has no seeds to run"),
            ConfigError::Fault(e) => write!(f, "fault plan rejected: {e}"),
            ConfigError::Latency(e) => write!(f, "latency model rejected: {e}"),
            ConfigError::SinkIo { path, detail } => {
                write!(f, "campaign sink {path}: {detail}")
            }
            ConfigError::ResumeMismatch { path, detail } => {
                write!(f, "resume manifest {path} does not match this campaign: {detail}")
            }
        }
    }
}

impl From<welle_congest::FaultError> for ConfigError {
    fn from(e: welle_congest::FaultError) -> Self {
        ConfigError::Fault(e)
    }
}

impl From<welle_congest::LatencyError> for ConfigError {
    fn from(e: welle_congest::LatencyError) -> Self {
        ConfigError::Latency(e)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = ConfigError::BadConstant {
            name: "c2",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("c2"));
        assert!(ConfigError::TooFewNodes { n: 1 }
            .to_string()
            .contains("at least two nodes"));
    }
}
