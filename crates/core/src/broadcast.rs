//! Push–pull rumor spreading (Karp et al. \[22\]), the broadcast stage that
//! upgrades implicit to explicit leader election (Corollary 14).
//!
//! Each round, an informed node *pushes* the rumor through a uniformly
//! random port and an uninformed node *pulls* from a uniformly random
//! port (informed nodes answer pulls). On a graph of conductance `φ` all
//! nodes are informed within `O(log n / φ)` rounds w.h.p. (Giakkoupis
//! \[17\]), for `O(n·log n/φ)` messages.

use std::sync::Arc;

use rand::RngExt;
use welle_congest::{bits_for, Context, Engine, EngineConfig, Payload, Protocol};
use welle_graph::{Graph, Port};

/// Message of the push–pull protocol. The `Default` value (a pull
/// request) fills recycled engine arena slots, per the [`Payload`]
/// contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GossipMsg {
    /// The rumor (the leader's id, for explicit election).
    Rumor(u64),
    /// A pull request.
    #[default]
    Pull,
}

impl Payload for GossipMsg {
    fn bit_size(&self) -> usize {
        match self {
            GossipMsg::Rumor(id) => 1 + bits_for(*id),
            GossipMsg::Pull => 1,
        }
    }
}

/// One node of the push–pull broadcast.
#[derive(Clone, Debug)]
pub struct PushPullNode {
    rumor: Option<u64>,
    informed_round: Option<u64>,
    horizon: u64,
}

impl PushPullNode {
    /// Creates a node; the initiator holds the rumor from round 0.
    pub fn new(rumor: Option<u64>, horizon: u64) -> Self {
        PushPullNode {
            informed_round: rumor.map(|_| 0),
            rumor,
            horizon,
        }
    }

    /// The rumor this node knows, if informed.
    pub fn rumor(&self) -> Option<u64> {
        self.rumor
    }

    /// Round at which this node became informed.
    pub fn informed_round(&self) -> Option<u64> {
        self.informed_round
    }

    fn act(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        if ctx.round() >= self.horizon || ctx.degree() == 0 {
            return;
        }
        let degree = ctx.degree();
        let port = Port::new(ctx.rng().random_range(0..degree));
        match self.rumor {
            Some(id) => ctx.send(port, GossipMsg::Rumor(id)),
            None => ctx.send(port, GossipMsg::Pull),
        }
        let next = ctx.round() + 1;
        ctx.wake_at(next);
    }
}

impl Protocol for PushPullNode {
    type Msg = GossipMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        self.act(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, GossipMsg>, inbox: &mut Vec<(Port, GossipMsg)>) {
        for (port, msg) in inbox.drain(..) {
            match msg {
                GossipMsg::Rumor(id) => {
                    if self.rumor.is_none() {
                        self.rumor = Some(id);
                        self.informed_round = Some(ctx.round());
                    }
                }
                GossipMsg::Pull => {
                    if let Some(id) = self.rumor {
                        ctx.send(port, GossipMsg::Rumor(id));
                    }
                }
            }
        }
        self.act(ctx);
    }

    fn is_done(&self) -> bool {
        self.rumor.is_some()
    }
}

/// Result of one broadcast run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastReport {
    /// Whether every node learned the rumor within the horizon.
    pub all_informed: bool,
    /// Round by which the last node was informed.
    pub rounds: u64,
    /// Total messages (pushes + pulls + pull-answers).
    pub messages: u64,
    /// Total bits.
    pub bits: u64,
}

/// Runs push–pull from `source` until everyone is informed (or the
/// horizon passes).
///
/// ```no_run
/// use std::sync::Arc;
/// use welle_core::broadcast::run_push_pull;
/// use welle_graph::gen;
///
/// let g = Arc::new(gen::hypercube(6).unwrap());
/// let report = run_push_pull(&g, 0, 99, 10_000, 1);
/// assert!(report.all_informed);
/// ```
pub fn run_push_pull(
    graph: &Arc<Graph>,
    source: usize,
    rumor: u64,
    horizon: u64,
    seed: u64,
) -> BroadcastReport {
    let mut engine = Engine::from_fn(
        Arc::clone(graph),
        EngineConfig {
            seed,
            bandwidth_bits: None,
        },
        |i| {
            PushPullNode::new(
                if i == source { Some(rumor) } else { None },
                horizon,
            )
        },
    );
    engine.run_until(horizon + 2, |e| e.nodes().iter().all(|n| n.rumor().is_some()));
    let all_informed = engine.nodes().iter().all(|n| n.rumor() == Some(rumor));
    let rounds = engine
        .nodes()
        .iter()
        .filter_map(|n| n.informed_round())
        .max()
        .unwrap_or(0);
    BroadcastReport {
        all_informed,
        rounds,
        messages: engine.metrics().messages,
        bits: engine.metrics().bits,
    }
}

/// Explicit election = implicit election + broadcast of the leader id
/// (Corollary 14).
#[derive(Clone, Debug)]
pub struct ExplicitReport {
    /// The implicit-election stage.
    pub election: crate::runner::ElectionReport,
    /// The broadcast stage (`None` when the election failed to produce a
    /// unique leader).
    pub broadcast: Option<BroadcastReport>,
}

impl ExplicitReport {
    /// Success: unique leader and everyone informed of its id.
    pub fn is_success(&self) -> bool {
        self.election.is_success()
            && self.broadcast.as_ref().is_some_and(|b| b.all_informed)
    }

    /// Combined message count of both stages.
    pub fn total_messages(&self) -> u64 {
        self.election.messages + self.broadcast.as_ref().map_or(0, |b| b.messages)
    }
}

/// Runs the full explicit election (Corollary 14): implicit stage, then
/// push–pull broadcast of the winner's id from the winner.
pub fn run_explicit_election(
    graph: &Arc<Graph>,
    cfg: &crate::config::ElectionConfig,
    broadcast_horizon: u64,
    seed: u64,
) -> ExplicitReport {
    let election = crate::election::Election::on(graph)
        .config(*cfg)
        .seed(seed)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    let broadcast = match (&election.leaders[..], election.leader_id) {
        (&[leader], Some(id)) => Some(run_push_pull(
            graph,
            leader,
            id,
            broadcast_horizon,
            seed ^ 0xB0AD_CA57,
        )),
        _ => None,
    };
    ExplicitReport {
        election,
        broadcast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::gen;

    #[test]
    fn broadcast_informs_everyone_on_expander() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = Arc::new(gen::random_regular(128, 4, &mut rng).unwrap());
        let report = run_push_pull(&g, 5, 777, 10_000, 1);
        assert!(report.all_informed);
        // O(log n) rounds on an expander; be generous.
        assert!(report.rounds <= 60, "rounds = {}", report.rounds);
        assert!(report.messages >= 128, "at least n messages");
    }

    #[test]
    fn broadcast_on_ring_takes_linear_rounds() {
        let g = Arc::new(gen::ring(64).unwrap());
        let report = run_push_pull(&g, 0, 9, 100_000, 2);
        assert!(report.all_informed);
        // Rumor travels at most 2 hops per round on a cycle.
        assert!(report.rounds >= 16, "rounds = {}", report.rounds);
    }

    #[test]
    fn horizon_caps_failure() {
        let g = Arc::new(gen::ring(64).unwrap());
        let report = run_push_pull(&g, 0, 9, 3, 2);
        assert!(!report.all_informed);
    }

    #[test]
    fn rumor_bit_size() {
        assert!(GossipMsg::Rumor(u64::MAX).bit_size() > GossipMsg::Pull.bit_size());
    }
}
