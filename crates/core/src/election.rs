//! The [`Election`] builder — the one entry point for running a single
//! election on any executor, with or without an observer.
//!
//! ```no_run
//! use std::sync::Arc;
//! use welle_core::{Election, ElectionConfig, Exec};
//! use welle_graph::gen;
//!
//! let g = Arc::new(gen::hypercube(6).unwrap());
//! let report = Election::on(&g)
//!     .config(ElectionConfig::tuned_for_simulation(g.n()))
//!     .seed(7)
//!     .executor(Exec::Auto)
//!     .run()
//!     .unwrap();
//! assert!(report.is_success());
//! ```

use std::sync::Arc;

use welle_congest::{FaultPlan, NoopObserver, TelemetryConfig, TransmitObserver};
use welle_graph::Graph;

use crate::config::{ElectionConfig, Params};
use crate::error::ConfigError;
use crate::runner::{plan_for, run_resolved, ElectionReport};

/// Which CONGEST executor drives the election (re-exported from
/// [`welle_congest`], where the executors live). `Exec::Async` opens
/// the latency axis; everything else is the synchronous model.
pub use welle_congest::Exec;

/// Builder for a single election run: graph in, [`ElectionReport`] out.
///
/// Construct with [`Election::on`], chain the knobs you care about —
/// every one has a default — and finish with [`Election::run`]. Batch
/// runs over many seeds or graphs belong to
/// [`Campaign`](crate::Campaign), which consumes one of these builders
/// as its prototype.
#[must_use = "an Election does nothing until .run() is called"]
pub struct Election<'g, 'o> {
    pub(crate) graph: &'g Arc<Graph>,
    pub(crate) cfg: ElectionConfig,
    pub(crate) seed: u64,
    pub(crate) exec: Exec,
    pub(crate) believed_n: Option<usize>,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) telem: Option<TelemetryConfig>,
    pub(crate) obs: Option<&'o mut dyn TransmitObserver>,
}

impl<'g, 'o> Election<'g, 'o> {
    /// Starts a builder for an election on `graph` with the
    /// paper-faithful [`ElectionConfig::default`], seed 0, and
    /// [`Exec::Auto`].
    pub fn on(graph: &'g Arc<Graph>) -> Self {
        Election {
            graph,
            cfg: ElectionConfig::default(),
            seed: 0,
            exec: Exec::Auto,
            believed_n: None,
            faults: None,
            telem: None,
            obs: None,
        }
    }

    /// Sets the election configuration (see
    /// [`ElectionConfig::tuned_for_simulation`] for the usual choice at
    /// simulation scale).
    pub fn config(mut self, cfg: ElectionConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the run seed (drives every coin the protocol flips).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the executor choice.
    pub fn executor(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Reports every transmission to `obs` (traffic classification in
    /// the lower-bound experiments, invariant checks in tests).
    pub fn observer(mut self, obs: &'o mut dyn TransmitObserver) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Runs the election under adversarial network conditions (message
    /// drops, crash-stop schedules, delivery delay, edge cuts — see
    /// [`FaultPlan`]). The plan is validated against the graph before
    /// anything is simulated, and a given `(graph, config, seed, plan)`
    /// replays identically on every executor.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Records per-round telemetry during the run (sample stream, phase
    /// tables, optional span profile — see [`TelemetryConfig`]). The
    /// resulting [`ElectionReport`] carries the recorded
    /// [`TelemetryReport`](welle_congest::TelemetryReport) plus
    /// per-phase round/message totals; the sample stream is identical on
    /// every executor. Without this call the report's phase columns are
    /// zero and `telemetry` is `None`.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telem = Some(cfg);
        self
    }

    /// Derives parameters as if the network had `n` nodes, regardless of
    /// the actual graph size — the §5 "n is not known" experiments run
    /// a dumbbell where every node believes it lives on one half.
    pub fn believing_n(mut self, n: usize) -> Self {
        self.believed_n = Some(n);
        self
    }

    /// The graph this election will run on.
    pub fn graph(&self) -> &'g Arc<Graph> {
        self.graph
    }

    /// Validates the configuration, picks the executor, and runs the
    /// election.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for any configuration
    /// [`ElectionConfig::validate`] rejects, for
    /// [`Exec::Threaded`]`(0)`, for an [`Exec::Async`] latency model
    /// with bad parameters, or for a [`FaultPlan`] that does not fit
    /// the graph. Nothing is simulated on error.
    pub fn run(self) -> Result<ElectionReport, ConfigError> {
        let Election {
            graph,
            cfg,
            seed,
            exec,
            believed_n,
            faults,
            telem,
            obs,
        } = self;
        let n = believed_n.unwrap_or_else(|| graph.n());
        let params = Arc::new(Params::try_derive(n, cfg)?);
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let plan = plan_for(exec, graph, cores)?;
        let compiled = match &faults {
            Some(plan) => Some(plan.compile_for(graph)?),
            None => None,
        };
        let mut noop = NoopObserver;
        let obs: &mut dyn TransmitObserver = match obs {
            Some(o) => o,
            None => &mut noop,
        };
        Ok(run_resolved(
            graph,
            params,
            plan,
            seed,
            compiled.as_ref(),
            telem,
            obs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::gen;

    fn graph() -> Arc<Graph> {
        Arc::new(gen::hypercube(6).unwrap())
    }

    #[test]
    fn builder_runs_with_defaults() {
        let g = graph();
        let report = Election::on(&g).seed(7).run().unwrap();
        assert!(report.is_success());
        assert_eq!(report.n, 64);
    }

    #[test]
    fn builder_rejects_bad_config_without_running() {
        let g = graph();
        let err = Election::on(&g)
            .config(ElectionConfig {
                c1: f64::NAN,
                ..ElectionConfig::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadConstant { name: "c1", .. }));
        let err = Election::on(&g)
            .config(ElectionConfig {
                max_walk_len: Some(0),
                ..ElectionConfig::default()
            })
            .run()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroWalkCap);
    }

    #[test]
    fn zero_threads_is_a_config_error() {
        let g = graph();
        let err = Election::on(&g)
            .executor(Exec::Threaded(0))
            .run()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroThreads);
    }

    #[test]
    fn executors_are_bit_identical() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let runs: Vec<_> = [
            Exec::Auto,
            Exec::Serial,
            Exec::Threaded(3),
            Exec::Async(welle_congest::LatencyModel::zero()),
        ]
        .into_iter()
        .map(|exec| {
            Election::on(&g)
                .config(cfg)
                .seed(11)
                .executor(exec)
                .run()
                .unwrap()
        })
        .collect();
        for r in &runs[1..] {
            assert_eq!(r.leaders, runs[0].leaders);
            assert_eq!(r.messages, runs[0].messages);
            assert_eq!(r.engine_rounds, runs[0].engine_rounds);
            assert_eq!(r.virtual_time, runs[0].virtual_time);
        }
    }

    #[test]
    fn bad_latency_model_is_a_config_error() {
        let g = graph();
        let err = Election::on(&g)
            .executor(Exec::Async(welle_congest::LatencyModel::fixed(-2.0)))
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Latency(_)), "{err:?}");
    }

    #[test]
    fn auto_resolves_serial_on_small_graphs() {
        let g = graph();
        assert_eq!(Exec::Auto.resolve(&g), Exec::Serial);
        assert_eq!(Exec::Threaded(4).resolve(&g), Exec::Threaded(4));
    }

    #[test]
    fn observer_sees_every_message() {
        let g = graph();
        let mut count = 0u64;
        let mut obs = |_ev: &welle_congest::TransmitEvent| count += 1;
        let report = Election::on(&g)
            .config(ElectionConfig::tuned_for_simulation(64))
            .seed(3)
            .observer(&mut obs)
            .run()
            .unwrap();
        assert_eq!(count, report.messages);
    }

    #[test]
    fn fault_plan_rides_the_builder() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let clean = Election::on(&g).config(cfg).seed(9).run().unwrap();
        assert_eq!(clean.dropped_messages, 0);
        assert_eq!(clean.crashed, 0);
        let faulted = Election::on(&g)
            .config(cfg)
            .seed(9)
            .faults(welle_congest::FaultPlan::new(5).drop_rate(0.2))
            .run()
            .unwrap();
        assert!(faulted.dropped_messages > 0);
        let replay = Election::on(&g)
            .config(cfg)
            .seed(9)
            .faults(welle_congest::FaultPlan::new(5).drop_rate(0.2))
            .run()
            .unwrap();
        assert_eq!(faulted.messages, replay.messages);
        assert_eq!(faulted.dropped_messages, replay.dropped_messages);
        assert_eq!(faulted.leaders, replay.leaders);
    }

    #[test]
    fn believing_n_overrides_parameter_derivation() {
        let g = graph();
        // Params derived for n = 32 on a 64-node graph: the run completes
        // and reports the *actual* graph size.
        let report = Election::on(&g)
            .config(ElectionConfig::tuned_for_simulation(32))
            .believing_n(32)
            .seed(5)
            .run()
            .unwrap();
        assert_eq!(report.n, 64);
    }
}
