//! The campaign's streaming results sink, doubling as its resume
//! manifest.
//!
//! [`Campaign::stream_csv`](crate::Campaign::stream_csv) flushes one
//! [`Trial::csv_row`](crate::Trial::csv_row) per completed trial, in
//! deterministic (scenario, seed) order. Because rows are appended in
//! that fixed order and flushed eagerly, an interrupted run leaves a
//! *valid prefix* of the full output — which is all a resume needs: on
//! [`Campaign::resume`](crate::Campaign::resume) the file is parsed
//! back, each completed row is checked against the expected trial
//! order, a torn trailing row is discarded, and the campaign restarts
//! at the first missing trial. The resumed file is byte-identical to an
//! uninterrupted run's.
//!
//! Rows are parsed as RFC 4180 *logical* rows: a quoted scenario label
//! may contain embedded newlines, so row boundaries are found by quote
//! parity rather than by physical line — and a tear anywhere inside
//! such a row (even right after one of its interior newlines) still
//! reads as torn, not as a corrupt manifest.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::csv;
use crate::error::ConfigError;

/// Per-trial statistics recovered from a resume manifest — exactly the
/// fields campaign summaries aggregate, so resumed trials contribute to
/// [`CampaignSummary`](crate::CampaignSummary) as if they had just run.
pub(crate) struct ParsedTrial {
    pub(crate) leaders: usize,
    pub(crate) gave_up: usize,
    pub(crate) messages: u64,
    pub(crate) rounds: u64,
    /// Per-phase engine rounds in [`Phase::tag`](crate::Phase::tag)
    /// order — zero in manifests written without telemetry.
    pub(crate) phase_rounds: [u64; 5],
}

/// An open, append-positioned trial-row stream.
pub(crate) struct StreamSink {
    out: BufWriter<File>,
    path: PathBuf,
}

impl StreamSink {
    fn io_err(path: &Path, e: std::io::Error) -> ConfigError {
        ConfigError::SinkIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }

    /// Creates (truncating) the sink file, creating parent directories
    /// as needed, and writes the header row.
    pub(crate) fn create(path: &Path, header: &str) -> Result<Self, ConfigError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| Self::io_err(path, e))?;
            }
        }
        let file = File::create(path).map_err(|e| Self::io_err(path, e))?;
        let mut sink = StreamSink {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
        };
        sink.write_row(header)?;
        Ok(sink)
    }

    /// Opens `path` as a resume manifest: validates the header and every
    /// completed row against `expected` (the campaign's full trial order
    /// as `(scenario label, seed)`), drops a torn trailing row, rewrites
    /// the valid prefix, and returns the append-positioned sink together
    /// with the recovered trials. A missing file resumes as a fresh run.
    /// Rows are RFC 4180 logical rows — a quoted label's embedded
    /// newlines do not split them — and a row is only complete once its
    /// quotes are balanced and it ends in a newline.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ResumeMismatch`] when the file belongs to a
    /// different campaign (header or any completed row disagrees with
    /// `expected`); [`ConfigError::SinkIo`] for I/O failures.
    pub(crate) fn resume(
        path: &Path,
        header: &str,
        expected: &[(&str, u64)],
    ) -> Result<(Self, Vec<ParsedTrial>), ConfigError> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Self::create(path, header)?, Vec::new()));
            }
            Err(e) => return Err(Self::io_err(path, e)),
        };
        let mismatch = |detail: String| ConfigError::ResumeMismatch {
            path: path.display().to_string(),
            detail,
        };

        let mut lines = text.split_inclusive('\n').peekable();
        match lines.next() {
            // A torn (or absent) header line carries no completed work.
            None => return Ok((Self::create(path, header)?, Vec::new())),
            Some(first) => match first.strip_suffix('\n') {
                None => return Ok((Self::create(path, header)?, Vec::new())),
                Some(h) if h.trim_end_matches('\r') != header => {
                    return Err(mismatch(format!(
                        "header is {h:?}, this campaign writes {header:?}"
                    )));
                }
                Some(_) => {}
            },
        }

        let header_cols: Vec<&str> = header.split(',').collect();
        let col = |name: &str| -> usize {
            header_cols
                .iter()
                .position(|c| *c == name)
                // welle-lint: allow(no-lib-unwrap) — invariant: the header is the crate's own TrialReport::csv_header() constant, which names every column looked up here
                .expect("trial header names every summary column")
        };
        let (c_leaders, c_gave_up, c_messages, c_rounds) = (
            col("leaders"),
            col("gave_up"),
            col("messages"),
            col("engine_rounds"),
        );
        let c_phase_rounds = [
            col("walk_rounds"),
            col("r1_rounds"),
            col("r2_rounds"),
            col("r3_rounds"),
            col("wait_rounds"),
        ];

        let mut parsed = Vec::new();
        let mut kept = String::with_capacity(text.len());
        kept.push_str(header);
        kept.push('\n');
        // RFC 4180 quoted fields may contain newlines (scenario labels
        // pass through `csv::escape`), so one *logical* row can span
        // several physical lines. Assemble rows by quote parity: a row
        // is complete only once its cumulative `"` count is even and it
        // ends in a newline. Whatever is left in `buf` at end of input —
        // no trailing newline, or a quote still open — is the torn
        // trailing row of an interrupted run, discarded so its trial
        // re-runs.
        let mut i = 0usize;
        let mut buf = String::new();
        let mut quotes_even = true;
        for line in lines {
            buf.push_str(line);
            quotes_even ^= line.bytes().filter(|&b| b == b'"').count() % 2 == 1;
            if !quotes_even || !buf.ends_with('\n') {
                continue; // the row continues on the next physical line
            }
            let row = buf.strip_suffix('\n').unwrap_or(&buf);
            let row = row.trim_end_matches('\r');
            let fields = csv::split_row(row)
                .filter(|f| f.len() == header_cols.len())
                .ok_or_else(|| mismatch(format!("row {} is not a complete trial row", i + 1)))?;
            let Some(&(label, seed)) = expected.get(i) else {
                return Err(mismatch(format!(
                    "{} completed rows but the campaign only has {} trials",
                    i + 1,
                    expected.len()
                )));
            };
            if fields[0] != label || fields[1].parse::<u64>() != Ok(seed) {
                return Err(mismatch(format!(
                    "row {} is ({:?}, {}), expected ({label:?}, {seed})",
                    i + 1,
                    fields[0],
                    fields[1],
                )));
            }
            let num = |c: usize| -> Result<u64, ConfigError> {
                fields[c]
                    .parse::<u64>()
                    .map_err(|_| mismatch(format!("row {}: bad {} value", i + 1, header_cols[c])))
            };
            let mut phase_rounds = [0u64; 5];
            for (slot, &c) in phase_rounds.iter_mut().zip(&c_phase_rounds) {
                *slot = num(c)?;
            }
            parsed.push(ParsedTrial {
                leaders: num(c_leaders)? as usize,
                gave_up: num(c_gave_up)? as usize,
                messages: num(c_messages)?,
                rounds: num(c_rounds)?,
                phase_rounds,
            });
            kept.push_str(row);
            kept.push('\n');
            i += 1;
            buf.clear();
        }

        // Rewrite the valid prefix (dropping any torn tail) and leave
        // the file open for appending the remaining trials.
        let file = File::create(path).map_err(|e| Self::io_err(path, e))?;
        let mut out = BufWriter::new(file);
        out.write_all(kept.as_bytes())
            .and_then(|_| out.flush())
            .map_err(|e| Self::io_err(path, e))?;
        Ok((
            StreamSink {
                out,
                path: path.to_path_buf(),
            },
            parsed,
        ))
    }

    /// Appends one row and flushes it — each completed trial hits the
    /// disk before the next one is reported, which is the valid-prefix
    /// guarantee the resume path relies on.
    pub(crate) fn write_row(&mut self, row: &str) -> Result<(), ConfigError> {
        writeln!(self.out, "{row}")
            .and_then(|_| self.out.flush())
            .map_err(|e| Self::io_err(&self.path, e))
    }
}
