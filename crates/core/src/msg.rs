//! Wire messages of the election protocol, with bit-exact size
//! accounting (Lemma 12's message taxonomy).
//!
//! # Packed representation
//!
//! [`ElectionMsg`] is a single 32-byte struct, not a tree of enums: a
//! 64-bit `origin`, a 64-bit payload `word`, a 64-bit packed `meta`
//! header, and an optional interned id run. At `n = 10⁶` the engine
//! holds millions of these in its arena slots simultaneously, so the
//! layout is chosen to make the common case allocation-free:
//!
//! * `meta` packs `tag(4) | epoch(6) | aux(32) | cnt(22)`. `aux` is the
//!   walk's `remaining` counter or the reverse-routing `step`; `cnt` is
//!   the walk multiplicity, the proxy count, or an id-set length.
//!   `epoch ≤ 33` always (guess-and-double caps at `2^e ≥ 4n²`) and the
//!   walk count `K = ⌈c2·√n·ln n⌉` stays below `2²²` for every
//!   `u32`-representable `n` at the default `c2`; both bounds are
//!   asserted with descriptive panics at construction.
//! * Id-set payloads (`I1`/`I2`/`I3` fragments) inline a single id in
//!   `word`. In CONGEST mode `frag == 1`, so *every* election message
//!   is heap-free. Longer fragments (Large mode) intern the run in an
//!   `Arc`, shared by all hops of a forward wave instead of re-cloned
//!   per edge.
//!
//! The packing is an in-memory concern only: [`Payload::bit_size`]
//! still charges the analytical wire cost of the unpacked fields, so
//! bandwidth accounting is unchanged.

use std::sync::Arc;

use welle_congest::{bits_for, Payload};

/// Tag bits distinguishing message variants on the wire (the charged
/// cost; the in-memory tag spends 4 bits of `meta` to leave room for a
/// reserved all-zero "void" state used by recycled arena slots).
const TAG_BITS: usize = 3;

const TAG_SHIFT: u32 = 60;
const EPOCH_SHIFT: u32 = 54;
const AUX_SHIFT: u32 = 22;
const EPOCH_MAX: u64 = (1 << 6) - 1;
const CNT_MAX: u64 = (1 << 22) - 1;
const AUX_MASK: u64 = 0xFFFF_FFFF << AUX_SHIFT;

const TAG_WALK: u64 = 1;
const TAG_REV_PROXY: u64 = 2;
const TAG_REV_KNOWN: u64 = 3;
const TAG_REV_R3: u64 = 4;
const TAG_REV_WINNER: u64 = 5;
const TAG_FWD_I2: u64 = 6;
const TAG_FWD_STOP: u64 = 7;
const TAG_FWD_WINNER: u64 = 8;

fn pack(tag: u64, epoch: u32, aux: u32, cnt: u64) -> u64 {
    assert!(
        u64::from(epoch) <= EPOCH_MAX,
        "epoch {epoch} exceeds the packed 6-bit budget (max {EPOCH_MAX})"
    );
    assert!(
        cnt <= CNT_MAX,
        "count {cnt} exceeds the packed 22-bit budget (max {CNT_MAX})"
    );
    (tag << TAG_SHIFT) | (u64::from(epoch) << EPOCH_SHIFT) | (u64::from(aux) << AUX_SHIFT) | cnt
}

/// A message of Algorithm 2, bit-packed (see the module docs).
///
/// Three routing classes, inspected through [`ElectionMsg::view`]:
/// `Walk` tokens advance the random walks; `Rev` units travel
/// *backwards* along recorded trails (proxy → contender: rounds 1 and
/// 3, winner notifications); `Fwd` units travel *forwards* (contender →
/// proxies: round 2, stop commitments, winner announcements).
///
/// The `Default` value is a reserved "void" message (tag 0) that only
/// fills recycled engine arena slots; it is never constructed by the
/// protocol and never transmitted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElectionMsg {
    origin: u64,
    /// Variant payload: proxy/winner id, or a single inlined set id.
    word: u64,
    /// Packed header: `tag(4) | epoch(6) | aux(32) | cnt(22)`.
    meta: u64,
    /// Interned id run for set fragments longer than one id.
    run: Option<Arc<Vec<u64>>>,
}

/// Borrowed decode of an [`ElectionMsg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgView<'a> {
    /// Aggregated walk token `⟨u, t_u⟩` with a multiplicity (Lemma 12's
    /// "one token and the count").
    Walk {
        /// Originating contender id.
        origin: u64,
        /// Guess-and-double epoch.
        epoch: u32,
        /// Steps left; the receiving holder is a proxy when this is 0.
        remaining: u32,
        /// Number of parallel walks bundled here.
        count: u32,
    },
    /// Reverse-routed unit; `step` is the walk step *at the receiver*.
    Rev {
        /// Walk origin whose trail is followed.
        origin: u64,
        /// Epoch of that trail.
        epoch: u32,
        /// Step index at the receiving node.
        step: u32,
        /// Payload.
        item: RevItem<'a>,
    },
    /// Forward-routed unit; `step` is the walk step *at the receiver*.
    Fwd {
        /// Walk origin whose trail is followed.
        origin: u64,
        /// Epoch of that trail.
        epoch: u32,
        /// Step index at the receiving node.
        step: u32,
        /// Payload.
        item: FwdItem<'a>,
    },
    /// The reserved default message filling recycled arena slots.
    Void,
}

/// Payloads travelling towards a contender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RevItem<'a> {
    /// Round-1 header: the proxy's id and how many of the origin's walks
    /// ended there (`count == 1` ⇔ the proxy is *distinct*).
    ProxyInfo {
        /// The proxy's own random id.
        proxy_id: u64,
        /// Multiplicity of the origin's walks at this proxy.
        count: u32,
    },
    /// Round-1 set fragment: ids from the proxy's `I1` (other contenders
    /// it serves).
    KnownContenders {
        /// Fragment of `I1` (one id in CONGEST mode).
        ids: &'a [u64],
    },
    /// Round-3 set fragment: ids from the proxy's `I3`.
    R3Contenders {
        /// Fragment of `I3`.
        ids: &'a [u64],
    },
    /// A winner notification relayed towards a contender.
    Winner {
        /// The leader's id.
        id: u64,
    },
}

/// Payloads travelling from a contender towards its proxies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FwdItem<'a> {
    /// Round-2 set fragment: ids from the contender's `I2`.
    I2Ids {
        /// Fragment of `I2`.
        ids: &'a [u64],
    },
    /// The contender committed to this epoch as its final guess
    /// (Fidelity note 5: proxies and trail nodes finalize their records).
    StopMark,
    /// Winner announcement flowing to proxies.
    Winner {
        /// The leader's id.
        id: u64,
    },
}

impl ElectionMsg {
    /// A walk token: `count` bundled walks of `origin` with `remaining`
    /// steps left in `epoch`.
    pub fn walk(origin: u64, epoch: u32, remaining: u32, count: u32) -> Self {
        ElectionMsg {
            origin,
            word: 0,
            meta: pack(TAG_WALK, epoch, remaining, u64::from(count)),
            run: None,
        }
    }

    /// A reverse-routed unit addressed at walk step `step`.
    pub fn rev(origin: u64, epoch: u32, step: u32, item: RevItem<'_>) -> Self {
        match item {
            RevItem::ProxyInfo { proxy_id, count } => ElectionMsg {
                origin,
                word: proxy_id,
                meta: pack(TAG_REV_PROXY, epoch, step, u64::from(count)),
                run: None,
            },
            RevItem::KnownContenders { ids } => {
                Self::with_ids(TAG_REV_KNOWN, origin, epoch, step, ids)
            }
            RevItem::R3Contenders { ids } => Self::with_ids(TAG_REV_R3, origin, epoch, step, ids),
            RevItem::Winner { id } => ElectionMsg {
                origin,
                word: id,
                meta: pack(TAG_REV_WINNER, epoch, step, 0),
                run: None,
            },
        }
    }

    /// A forward-routed unit (the protocol always originates these with
    /// `step == 0`; the parameter exists for size-accounting tests).
    pub fn fwd(origin: u64, epoch: u32, step: u32, item: FwdItem<'_>) -> Self {
        match item {
            FwdItem::I2Ids { ids } => Self::with_ids(TAG_FWD_I2, origin, epoch, step, ids),
            FwdItem::StopMark => ElectionMsg {
                origin,
                word: 0,
                meta: pack(TAG_FWD_STOP, epoch, step, 0),
                run: None,
            },
            FwdItem::Winner { id } => ElectionMsg {
                origin,
                word: id,
                meta: pack(TAG_FWD_WINNER, epoch, step, 0),
                run: None,
            },
        }
    }

    /// Canonical id-set encoding: empty sets carry nothing, single ids
    /// inline in `word`, longer runs intern once in an `Arc`. Derived
    /// equality is therefore structural *and* logical.
    fn with_ids(tag: u64, origin: u64, epoch: u32, aux: u32, ids: &[u64]) -> Self {
        match ids {
            [] => ElectionMsg {
                origin,
                word: 0,
                meta: pack(tag, epoch, aux, 0),
                run: None,
            },
            [id] => ElectionMsg {
                origin,
                word: *id,
                meta: pack(tag, epoch, aux, 1),
                run: None,
            },
            many => ElectionMsg {
                origin,
                word: 0,
                meta: pack(tag, epoch, aux, many.len() as u64),
                run: Some(Arc::new(many.to_vec())),
            },
        }
    }

    /// The walk origin whose trail this message follows.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// The guess-and-double epoch.
    pub fn epoch(&self) -> u32 {
        ((self.meta >> EPOCH_SHIFT) & EPOCH_MAX) as u32
    }

    /// The routing-step field (`remaining` for walk tokens).
    pub fn step(&self) -> u32 {
        ((self.meta >> AUX_SHIFT) & 0xFFFF_FFFF) as u32
    }

    /// Whether this is a reverse-routed unit.
    pub fn is_rev(&self) -> bool {
        matches!(self.tag(), TAG_REV_PROXY..=TAG_REV_WINNER)
    }

    /// A copy of this message re-addressed to `step`, sharing any
    /// interned id run with the original (no id cloning on relay hops).
    pub fn with_step(&self, step: u32) -> Self {
        let mut m = self.clone();
        m.meta = (m.meta & !AUX_MASK) | (u64::from(step) << AUX_SHIFT);
        m
    }

    fn tag(&self) -> u64 {
        self.meta >> TAG_SHIFT
    }

    fn cnt(&self) -> u64 {
        self.meta & CNT_MAX
    }

    /// The id-set payload (valid for the three set-fragment tags).
    fn ids(&self) -> &[u64] {
        match &self.run {
            Some(run) => run.as_slice(),
            None if self.cnt() == 0 => &[],
            None => std::slice::from_ref(&self.word),
        }
    }

    /// Decodes the packed fields into the logical message.
    pub fn view(&self) -> MsgView<'_> {
        let origin = self.origin;
        let epoch = self.epoch();
        let aux = self.step();
        match self.tag() {
            TAG_WALK => MsgView::Walk {
                origin,
                epoch,
                remaining: aux,
                count: self.cnt() as u32,
            },
            TAG_REV_PROXY => MsgView::Rev {
                origin,
                epoch,
                step: aux,
                item: RevItem::ProxyInfo {
                    proxy_id: self.word,
                    count: self.cnt() as u32,
                },
            },
            TAG_REV_KNOWN => MsgView::Rev {
                origin,
                epoch,
                step: aux,
                item: RevItem::KnownContenders { ids: self.ids() },
            },
            TAG_REV_R3 => MsgView::Rev {
                origin,
                epoch,
                step: aux,
                item: RevItem::R3Contenders { ids: self.ids() },
            },
            TAG_REV_WINNER => MsgView::Rev {
                origin,
                epoch,
                step: aux,
                item: RevItem::Winner { id: self.word },
            },
            TAG_FWD_I2 => MsgView::Fwd {
                origin,
                epoch,
                step: aux,
                item: FwdItem::I2Ids { ids: self.ids() },
            },
            TAG_FWD_STOP => MsgView::Fwd {
                origin,
                epoch,
                step: aux,
                item: FwdItem::StopMark,
            },
            TAG_FWD_WINNER => MsgView::Fwd {
                origin,
                epoch,
                step: aux,
                item: FwdItem::Winner { id: self.word },
            },
            _ => MsgView::Void,
        }
    }

    /// A collision-resistant-enough key identifying a forward item for
    /// the per-node "filtering and forwarding" dedup of Lemma 12.
    pub fn fwd_dedup_key(origin: u64, item: &FwdItem<'_>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ origin;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        match item {
            FwdItem::I2Ids { ids } => {
                mix(1);
                for &id in *ids {
                    mix(id);
                }
            }
            FwdItem::StopMark => mix(2),
            FwdItem::Winner { id } => {
                mix(3);
                mix(*id);
            }
        }
        h
    }
}

impl RevItem<'_> {
    fn payload_bits(&self) -> usize {
        match self {
            RevItem::ProxyInfo { proxy_id, count } => {
                bits_for(*proxy_id) + bits_for(u64::from(*count))
            }
            RevItem::KnownContenders { ids } | RevItem::R3Contenders { ids } => {
                ids.iter().map(|&id| bits_for(id)).sum()
            }
            RevItem::Winner { id } => bits_for(*id),
        }
    }
}

impl FwdItem<'_> {
    fn payload_bits(&self) -> usize {
        match self {
            FwdItem::I2Ids { ids } => ids.iter().map(|&id| bits_for(id)).sum(),
            FwdItem::StopMark => 1,
            FwdItem::Winner { id } => bits_for(*id),
        }
    }
}

impl Payload for ElectionMsg {
    fn bit_size(&self) -> usize {
        let head = TAG_BITS + bits_for(self.origin) + bits_for(u64::from(self.epoch()) + 1);
        let route = bits_for(u64::from(self.step()) + 1);
        match self.view() {
            MsgView::Walk { count, .. } => head + route + bits_for(u64::from(count)),
            MsgView::Rev { item, .. } => head + route + item.payload_bits(),
            MsgView::Fwd { item, .. } => head + route + item.payload_bits(),
            // Void messages only fill recycled arena slots; they are
            // never transmitted, so they occupy no wire budget.
            MsgView::Void => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_four_words() {
        assert_eq!(std::mem::size_of::<ElectionMsg>(), 32);
    }

    #[test]
    fn walk_token_is_logarithmic() {
        // id from [1, 1024⁴]
        let m = ElectionMsg::walk(1 << 39, 5, 32, 443);
        // 3 + 40 + 3 + 6 + 9 = 61 bits: O(log n) for n = 1024.
        assert_eq!(m.bit_size(), 3 + 40 + 3 + 6 + 9);
        assert_eq!(
            m.view(),
            MsgView::Walk {
                origin: 1 << 39,
                epoch: 5,
                remaining: 32,
                count: 443
            }
        );
    }

    #[test]
    fn congest_fragments_fit_small_budget() {
        let m = ElectionMsg::rev(
            u64::MAX,
            30,
            1 << 20,
            RevItem::KnownContenders { ids: &[u64::MAX] },
        );
        // Even with worst-case ids: 3 + 64 + 5 + 21 + 64 = 157 bits.
        assert!(m.bit_size() <= 4 * 64 + 96);
    }

    #[test]
    fn large_sets_scale_with_content() {
        let small = ElectionMsg::fwd(7, 0, 0, FwdItem::I2Ids { ids: &[1] });
        let big = ElectionMsg::fwd(
            7,
            0,
            0,
            FwdItem::I2Ids {
                ids: &[u64::MAX; 20],
            },
        );
        assert!(big.bit_size() > small.bit_size() + 19 * 32);
    }

    #[test]
    fn dedup_keys_separate_items() {
        let a = ElectionMsg::fwd_dedup_key(1, &FwdItem::StopMark);
        let b = ElectionMsg::fwd_dedup_key(2, &FwdItem::StopMark);
        let c = ElectionMsg::fwd_dedup_key(1, &FwdItem::Winner { id: 9 });
        let d = ElectionMsg::fwd_dedup_key(1, &FwdItem::I2Ids { ids: &[9] });
        let e = ElectionMsg::fwd_dedup_key(1, &FwdItem::I2Ids { ids: &[10] });
        let all = [a, b, c, d, e];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn stopmark_is_tiny() {
        let m = ElectionMsg::fwd(5, 1, 2, FwdItem::StopMark);
        assert!(m.bit_size() < 20);
    }

    #[test]
    fn fields_round_trip_through_the_packing() {
        let m = ElectionMsg::rev(
            0xDEAD_BEEF,
            33,
            u32::MAX,
            RevItem::ProxyInfo {
                proxy_id: 42,
                count: (CNT_MAX) as u32,
            },
        );
        assert_eq!(m.origin(), 0xDEAD_BEEF);
        assert_eq!(m.epoch(), 33);
        assert_eq!(m.step(), u32::MAX);
        assert!(m.is_rev());
        let MsgView::Rev { item, .. } = m.view() else {
            panic!("decoded as non-Rev");
        };
        assert_eq!(
            item,
            RevItem::ProxyInfo {
                proxy_id: 42,
                count: CNT_MAX as u32
            }
        );
    }

    #[test]
    fn single_ids_inline_and_runs_intern() {
        let one = ElectionMsg::rev(1, 0, 7, RevItem::R3Contenders { ids: &[99] });
        assert!(one.run.is_none(), "single id must not allocate");
        assert_eq!(
            one.view(),
            MsgView::Rev {
                origin: 1,
                epoch: 0,
                step: 7,
                item: RevItem::R3Contenders { ids: &[99] }
            }
        );
        let many = ElectionMsg::fwd(1, 0, 0, FwdItem::I2Ids { ids: &[5, 6, 7] });
        let MsgView::Fwd {
            item: FwdItem::I2Ids { ids },
            ..
        } = many.view()
        else {
            panic!("decoded as non-Fwd");
        };
        assert_eq!(ids, &[5, 6, 7]);
        // Re-addressing shares the interned run instead of cloning it.
        let relayed = many.with_step(3);
        assert_eq!(relayed.step(), 3);
        assert!(Arc::ptr_eq(
            many.run.as_ref().unwrap(),
            relayed.run.as_ref().unwrap()
        ));
        let none = ElectionMsg::rev(1, 0, 7, RevItem::KnownContenders { ids: &[] });
        assert!(none.run.is_none());
        assert_eq!(
            none.view(),
            MsgView::Rev {
                origin: 1,
                epoch: 0,
                step: 7,
                item: RevItem::KnownContenders { ids: &[] }
            }
        );
    }

    #[test]
    fn default_is_the_void_message() {
        let v = ElectionMsg::default();
        assert_eq!(v.view(), MsgView::Void);
        assert_eq!(v.bit_size(), 0);
        assert!(!v.is_rev());
    }

    #[test]
    #[should_panic(expected = "6-bit budget")]
    fn oversized_epoch_panics() {
        let _ = ElectionMsg::walk(1, 64, 0, 1);
    }

    #[test]
    #[should_panic(expected = "22-bit budget")]
    fn oversized_count_panics() {
        let _ = ElectionMsg::walk(1, 0, 0, 1 << 22);
    }
}
