//! Wire messages of the election protocol, with bit-exact size
//! accounting (Lemma 12's message taxonomy).

use welle_congest::{bits_for, Payload};

/// Tag bits distinguishing message variants on the wire.
const TAG_BITS: usize = 3;

/// A message of Algorithm 2.
///
/// Three routing classes: [`ElectionMsg::Walk`] tokens advance the random
/// walks; [`ElectionMsg::Rev`] units travel *backwards* along recorded
/// trails (proxy → contender: rounds 1 and 3, winner notifications);
/// [`ElectionMsg::Fwd`] units travel *forwards* (contender → proxies:
/// round 2, stop commitments, winner announcements).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElectionMsg {
    /// Aggregated walk token `⟨u, t_u⟩` with a multiplicity (Lemma 12's
    /// "one token and the count").
    Walk {
        /// Originating contender id.
        origin: u64,
        /// Guess-and-double epoch.
        epoch: u32,
        /// Steps left; the receiving holder is a proxy when this is 0.
        remaining: u32,
        /// Number of parallel walks bundled here.
        count: u32,
    },
    /// Reverse-routed unit; `step` is the walk step *at the receiver*.
    Rev {
        /// Walk origin whose trail is followed.
        origin: u64,
        /// Epoch of that trail.
        epoch: u32,
        /// Step index at the receiving node.
        step: u32,
        /// Payload.
        item: RevItem,
    },
    /// Forward-routed unit; `step` is the walk step *at the receiver*.
    Fwd {
        /// Walk origin whose trail is followed.
        origin: u64,
        /// Epoch of that trail.
        epoch: u32,
        /// Step index at the receiving node.
        step: u32,
        /// Payload.
        item: FwdItem,
    },
}

/// Payloads travelling towards a contender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RevItem {
    /// Round-1 header: the proxy's id and how many of the origin's walks
    /// ended there (`count == 1` ⇔ the proxy is *distinct*).
    ProxyInfo {
        /// The proxy's own random id.
        proxy_id: u64,
        /// Multiplicity of the origin's walks at this proxy.
        count: u32,
    },
    /// Round-1 set fragment: ids from the proxy's `I1` (other contenders
    /// it serves).
    KnownContenders {
        /// Fragment of `I1` (one id in CONGEST mode).
        ids: Vec<u64>,
    },
    /// Round-3 set fragment: ids from the proxy's `I3`.
    R3Contenders {
        /// Fragment of `I3`.
        ids: Vec<u64>,
    },
    /// A winner notification relayed towards a contender.
    Winner {
        /// The leader's id.
        id: u64,
    },
}

/// Payloads travelling from a contender towards its proxies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FwdItem {
    /// Round-2 set fragment: ids from the contender's `I2`.
    I2Ids {
        /// Fragment of `I2`.
        ids: Vec<u64>,
    },
    /// The contender committed to this epoch as its final guess
    /// (Fidelity note 5: proxies and trail nodes finalize their records).
    StopMark,
    /// Winner announcement flowing to proxies.
    Winner {
        /// The leader's id.
        id: u64,
    },
}

impl ElectionMsg {
    /// A collision-resistant-enough key identifying a forward item for
    /// the per-node "filtering and forwarding" dedup of Lemma 12.
    pub fn fwd_dedup_key(origin: u64, item: &FwdItem) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ origin;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        match item {
            FwdItem::I2Ids { ids } => {
                mix(1);
                for &id in ids {
                    mix(id);
                }
            }
            FwdItem::StopMark => mix(2),
            FwdItem::Winner { id } => {
                mix(3);
                mix(*id);
            }
        }
        h
    }
}

impl RevItem {
    fn payload_bits(&self) -> usize {
        match self {
            RevItem::ProxyInfo { proxy_id, count } => {
                bits_for(*proxy_id) + bits_for(*count as u64)
            }
            RevItem::KnownContenders { ids } | RevItem::R3Contenders { ids } => {
                ids.iter().map(|&id| bits_for(id)).sum()
            }
            RevItem::Winner { id } => bits_for(*id),
        }
    }
}

impl FwdItem {
    fn payload_bits(&self) -> usize {
        match self {
            FwdItem::I2Ids { ids } => ids.iter().map(|&id| bits_for(id)).sum(),
            FwdItem::StopMark => 1,
            FwdItem::Winner { id } => bits_for(*id),
        }
    }
}

impl Payload for ElectionMsg {
    fn bit_size(&self) -> usize {
        match self {
            ElectionMsg::Walk {
                origin,
                epoch,
                remaining,
                count,
            } => {
                TAG_BITS
                    + bits_for(*origin)
                    + bits_for(*epoch as u64 + 1)
                    + bits_for(*remaining as u64 + 1)
                    + bits_for(*count as u64)
            }
            ElectionMsg::Rev {
                origin,
                epoch,
                step,
                item,
            } => {
                TAG_BITS
                    + bits_for(*origin)
                    + bits_for(*epoch as u64 + 1)
                    + bits_for(*step as u64 + 1)
                    + item.payload_bits()
            }
            ElectionMsg::Fwd {
                origin,
                epoch,
                step,
                item,
            } => {
                TAG_BITS
                    + bits_for(*origin)
                    + bits_for(*epoch as u64 + 1)
                    + bits_for(*step as u64 + 1)
                    + item.payload_bits()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_token_is_logarithmic() {
        let m = ElectionMsg::Walk {
            origin: 1 << 39, // id from [1, 1024⁴]
            epoch: 5,
            remaining: 32,
            count: 443,
        };
        // 3 + 40 + 3 + 6 + 9 = 61 bits: O(log n) for n = 1024.
        assert_eq!(m.bit_size(), 3 + 40 + 3 + 6 + 9);
    }

    #[test]
    fn congest_fragments_fit_small_budget() {
        let m = ElectionMsg::Rev {
            origin: u64::MAX,
            epoch: 30,
            step: 1 << 20,
            item: RevItem::KnownContenders { ids: vec![u64::MAX] },
        };
        // Even with worst-case ids: 3 + 64 + 5 + 21 + 64 = 157 bits.
        assert!(m.bit_size() <= 4 * 64 + 96);
    }

    #[test]
    fn large_sets_scale_with_content() {
        let small = ElectionMsg::Fwd {
            origin: 7,
            epoch: 0,
            step: 0,
            item: FwdItem::I2Ids { ids: vec![1] },
        };
        let big = ElectionMsg::Fwd {
            origin: 7,
            epoch: 0,
            step: 0,
            item: FwdItem::I2Ids {
                ids: vec![u64::MAX; 20],
            },
        };
        assert!(big.bit_size() > small.bit_size() + 19 * 32);
    }

    #[test]
    fn dedup_keys_separate_items() {
        let a = ElectionMsg::fwd_dedup_key(1, &FwdItem::StopMark);
        let b = ElectionMsg::fwd_dedup_key(2, &FwdItem::StopMark);
        let c = ElectionMsg::fwd_dedup_key(1, &FwdItem::Winner { id: 9 });
        let d = ElectionMsg::fwd_dedup_key(1, &FwdItem::I2Ids { ids: vec![9] });
        let e = ElectionMsg::fwd_dedup_key(1, &FwdItem::I2Ids { ids: vec![10] });
        let all = [a, b, c, d, e];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn stopmark_is_tiny() {
        let m = ElectionMsg::Fwd {
            origin: 5,
            epoch: 1,
            step: 2,
            item: FwdItem::StopMark,
        };
        assert!(m.bit_size() < 20);
    }
}
