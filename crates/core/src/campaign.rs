//! The [`Campaign`] batch layer: one election prototype, many seeds and
//! graph families, aggregate statistics out.
//!
//! Every hand-rolled "for seed in … { run; tally }" loop in the
//! experiment binaries, examples, and the CLI is this type now:
//!
//! ```no_run
//! use std::sync::Arc;
//! use welle_core::{Campaign, Election, ElectionConfig};
//! use welle_graph::gen;
//!
//! let g = Arc::new(gen::hypercube(7).unwrap());
//! let cfg = ElectionConfig::tuned_for_simulation(g.n());
//! let outcome = Campaign::new(Election::on(&g).config(cfg))
//!     .label("hypercube")
//!     .seeds(0..20)
//!     .run()
//!     .unwrap();
//! let s = outcome.summary();
//! println!("{s}");
//! assert!(s.success_rate() > 0.9);
//! ```

use std::fmt;
use std::sync::Arc;

use welle_congest::{FaultPlan, NoopObserver, TransmitObserver};
use welle_graph::Graph;

use crate::config::{ElectionConfig, Params};
use crate::election::{Election, Exec};
use crate::error::ConfigError;
use crate::runner::{run_resolved, ElectionReport};

/// Per-trial streaming callback ([`Campaign::on_trial`]).
type TrialHook<'o> = Box<dyn FnMut(&Trial) + 'o>;

/// One (graph, config) pair swept by a campaign.
struct Scenario {
    label: String,
    graph: Arc<Graph>,
    cfg: ElectionConfig,
    /// Parameter-derivation override ([`Election::believing_n`]),
    /// carried over from the prototype only.
    believed_n: Option<usize>,
    /// Adversarial network conditions for this scenario's trials
    /// ([`Election::faults`] / [`Campaign::faults`]); fault-rate sweeps
    /// are scenarios differing only in this field.
    faults: Option<FaultPlan>,
}

/// One completed election within a campaign.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Label of the scenario this trial belongs to.
    pub scenario: String,
    /// The seed the election ran with.
    pub seed: u64,
    /// The full per-run report.
    pub report: ElectionReport,
}

/// `min`/`median`/`max`/`mean` of one metric across a scenario's trials.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Smallest observed value.
    pub min: u64,
    /// Median (mean of the two middle values, rounded down, for even
    /// counts).
    pub median: u64,
    /// Largest observed value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Stats {
    fn of(values: &mut [u64]) -> Stats {
        if values.is_empty() {
            return Stats {
                min: 0,
                median: 0,
                max: 0,
                mean: 0.0,
            };
        }
        values.sort_unstable();
        let mid = values.len() / 2;
        let median = if values.len() % 2 == 1 {
            values[mid]
        } else {
            values[mid - 1] / 2 + values[mid] / 2 + (values[mid - 1] % 2 + values[mid] % 2) / 2
        };
        Stats {
            min: values[0],
            median,
            max: values[values.len() - 1],
            mean: values.iter().sum::<u64>() as f64 / values.len() as f64,
        }
    }
}

/// Aggregate statistics for one scenario of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// The scenario label.
    pub scenario: String,
    /// Nodes in the scenario's graph.
    pub n: usize,
    /// Edges in the scenario's graph.
    pub m: usize,
    /// Trials run (seeds).
    pub trials: usize,
    /// Trials that elected exactly one leader.
    pub successes: usize,
    /// Trials that elected no leader.
    pub no_leader: usize,
    /// Trials that elected more than one leader (must be ~never).
    pub multi_leader: usize,
    /// Total contenders that hit the walk cap unsatisfied, across trials.
    pub gave_up: usize,
    /// Message-count statistics across trials.
    pub messages: Stats,
    /// Engine-round statistics across trials.
    pub rounds: Stats,
}

impl CampaignSummary {
    /// Fraction of trials that elected exactly one leader.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The CSV column names matching [`CampaignSummary::csv_row`].
    pub fn csv_header() -> &'static str {
        "scenario,n,m,trials,successes,no_leader,multi_leader,gave_up,\
         msgs_min,msgs_median,msgs_max,rounds_min,rounds_median,rounds_max"
    }

    /// This summary as one CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.scenario,
            self.n,
            self.m,
            self.trials,
            self.successes,
            self.no_leader,
            self.multi_leader,
            self.gave_up,
            self.messages.min,
            self.messages.median,
            self.messages.max,
            self.rounds.min,
            self.rounds.median,
            self.rounds.max,
        )
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} m={} | {}/{} unique leader ({} zero, {} multi, {} gave up) | \
             msgs {}/{}/{} | rounds {}/{}/{} (min/median/max)",
            self.scenario,
            self.n,
            self.m,
            self.successes,
            self.trials,
            self.no_leader,
            self.multi_leader,
            self.gave_up,
            self.messages.min,
            self.messages.median,
            self.messages.max,
            self.rounds.min,
            self.rounds.median,
            self.rounds.max,
        )
    }
}

/// Everything a campaign produced: the per-trial reports in run order
/// (scenario-major, then seed), and one [`CampaignSummary`] per scenario.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Every trial, in run order.
    pub trials: Vec<Trial>,
    /// One aggregate per scenario, in scenario order.
    pub summaries: Vec<CampaignSummary>,
}

impl CampaignReport {
    /// The first scenario's summary — the campaign's headline when it
    /// swept a single scenario.
    ///
    /// # Panics
    ///
    /// Panics if the campaign had no scenarios (impossible via
    /// [`Campaign::new`]).
    pub fn summary(&self) -> &CampaignSummary {
        &self.summaries[0]
    }

    /// Iterates the trials of one scenario.
    pub fn trials_of<'a>(&'a self, scenario: &'a str) -> impl Iterator<Item = &'a Trial> {
        self.trials.iter().filter(move |t| t.scenario == scenario)
    }
}

/// Batch runner: a prototype [`Election`] swept over seeds and graph
/// families.
///
/// The prototype's graph and config become the first scenario; more
/// scenarios join via [`Campaign::scenario`] / [`Campaign::families`].
/// Every trial funnels through the same single code path as
/// [`Election::run`], so campaign results are bit-identical to the
/// corresponding individual runs.
#[must_use = "a Campaign does nothing until .run() is called"]
pub struct Campaign<'o> {
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    exec: Exec,
    obs: Option<&'o mut dyn TransmitObserver>,
    on_trial: Option<TrialHook<'o>>,
}

impl<'o> Campaign<'o> {
    /// Builds a campaign from a prototype election. The prototype's seed
    /// becomes the default (single) seed until [`Campaign::seeds`]
    /// replaces it; its executor choice applies to every trial, and a
    /// [`Election::believing_n`] override applies to the prototype's
    /// scenario (later scenarios derive from their own graphs).
    pub fn new(proto: Election<'_, 'o>) -> Self {
        let Election {
            graph,
            cfg,
            seed,
            exec,
            believed_n,
            faults,
            obs,
        } = proto;
        Campaign {
            scenarios: vec![Scenario {
                label: "base".into(),
                graph: Arc::clone(graph),
                cfg,
                believed_n,
                faults,
            }],
            seeds: vec![seed],
            exec,
            obs,
            on_trial: None,
        }
    }

    /// Streams each completed [`Trial`] to `f` as the sweep runs —
    /// progress lines for long campaigns, instead of silence until the
    /// whole batch returns.
    pub fn on_trial(mut self, f: impl FnMut(&Trial) + 'o) -> Self {
        self.on_trial = Some(Box::new(f));
        self
    }

    /// Renames the most recently added scenario (the prototype's, unless
    /// [`Campaign::scenario`] was called since).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        if let Some(s) = self.scenarios.last_mut() {
            s.label = label.into();
        }
        self
    }

    /// Attaches adversarial network conditions to the most recently
    /// added scenario (like [`Campaign::label`]). Sweeping a fault
    /// parameter is adding the same graph several times with different
    /// plans:
    ///
    /// ```no_run
    /// # use std::sync::Arc;
    /// # use welle_core::{Campaign, Election, ElectionConfig, FaultPlan};
    /// # use welle_graph::gen;
    /// let g = Arc::new(gen::hypercube(7).unwrap());
    /// let cfg = ElectionConfig::tuned_for_simulation(g.n());
    /// let mut campaign = Campaign::new(Election::on(&g).config(cfg)).label("p=0");
    /// for p in [0.01, 0.05, 0.1] {
    ///     campaign = campaign
    ///         .scenario(format!("p={p}"), &g, cfg)
    ///         .faults(FaultPlan::new(1).drop_rate(p));
    /// }
    /// let outcome = campaign.seeds(0..20).run().unwrap();
    /// for s in &outcome.summaries {
    ///     println!("{} -> {:.2}", s.scenario, s.success_rate());
    /// }
    /// ```
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        if let Some(s) = self.scenarios.last_mut() {
            s.faults = Some(plan);
        }
        self
    }

    /// Replaces the seed set. Each scenario runs once per seed.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Overrides the executor choice for every trial.
    pub fn executor(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Appends one more scenario.
    pub fn scenario(
        mut self,
        label: impl Into<String>,
        graph: &Arc<Graph>,
        cfg: ElectionConfig,
    ) -> Self {
        self.scenarios.push(Scenario {
            label: label.into(),
            graph: Arc::clone(graph),
            cfg,
            believed_n: None,
            faults: None,
        });
        self
    }

    /// Appends a whole family sweep: one scenario per `(label, graph,
    /// config)` triple.
    pub fn families(
        mut self,
        families: impl IntoIterator<Item = (String, Arc<Graph>, ElectionConfig)>,
    ) -> Self {
        for (label, graph, cfg) in families {
            self.scenarios.push(Scenario {
                label,
                graph,
                cfg,
                believed_n: None,
                faults: None,
            });
        }
        self
    }

    /// Drops the prototype scenario, keeping only scenarios added via
    /// [`Campaign::scenario`] / [`Campaign::families`] — for sweeps
    /// where the prototype graph was only a seed-carrier.
    pub fn without_base(mut self) -> Self {
        if self.scenarios.len() > 1 {
            self.scenarios.remove(0);
        }
        self
    }

    /// Validates every scenario up front, then runs the full sweep
    /// (scenario-major, then seed order).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] among the scenarios — checked
    /// before anything is simulated — or [`ConfigError::NoSeeds`] for an
    /// empty seed set.
    pub fn run(mut self) -> Result<CampaignReport, ConfigError> {
        if self.seeds.is_empty() {
            return Err(ConfigError::NoSeeds);
        }
        // Validate everything before simulating anything: a campaign
        // must not die half-way through on a typo in scenario 7.
        let mut prepared = Vec::with_capacity(self.scenarios.len());
        for s in &self.scenarios {
            let n = s.believed_n.unwrap_or_else(|| s.graph.n());
            let params = Arc::new(Params::try_derive(n, s.cfg)?);
            let threads = self.exec.threads(&s.graph)?;
            // Fault plans compile once per scenario (O(n + m)) and are
            // shared by every seed's trial.
            let faults = match &s.faults {
                Some(plan) => Some(plan.compile_for(&s.graph)?),
                None => None,
            };
            prepared.push((params, threads, faults));
        }

        let mut noop = NoopObserver;
        let mut trials = Vec::with_capacity(self.scenarios.len() * self.seeds.len());
        let mut summaries = Vec::with_capacity(self.scenarios.len());
        for (s, (params, threads, faults)) in self.scenarios.iter().zip(prepared) {
            let mut messages = Vec::with_capacity(self.seeds.len());
            let mut rounds = Vec::with_capacity(self.seeds.len());
            let mut summary = CampaignSummary {
                scenario: s.label.clone(),
                n: s.graph.n(),
                m: s.graph.m(),
                trials: self.seeds.len(),
                successes: 0,
                no_leader: 0,
                multi_leader: 0,
                gave_up: 0,
                messages: Stats::of(&mut []),
                rounds: Stats::of(&mut []),
            };
            for &seed in &self.seeds {
                let obs: &mut dyn TransmitObserver = match self.obs.as_deref_mut() {
                    Some(o) => o,
                    None => &mut noop,
                };
                let report = run_resolved(
                    &s.graph,
                    Arc::clone(&params),
                    threads,
                    seed,
                    faults.as_ref(),
                    obs,
                );
                match report.leaders.len() {
                    0 => summary.no_leader += 1,
                    1 => summary.successes += 1,
                    _ => summary.multi_leader += 1,
                }
                summary.gave_up += report.gave_up;
                messages.push(report.messages);
                rounds.push(report.engine_rounds);
                let trial = Trial {
                    scenario: s.label.clone(),
                    seed,
                    report,
                };
                if let Some(f) = self.on_trial.as_mut() {
                    f(&trial);
                }
                trials.push(trial);
            }
            summary.messages = Stats::of(&mut messages);
            summary.rounds = Stats::of(&mut rounds);
            summaries.push(summary);
        }
        Ok(CampaignReport { trials, summaries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::gen;

    fn graph() -> Arc<Graph> {
        Arc::new(gen::hypercube(6).unwrap())
    }

    #[test]
    fn campaign_matches_individual_elections() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .seeds(0..4)
            .run()
            .unwrap();
        assert_eq!(outcome.trials.len(), 4);
        for t in &outcome.trials {
            let solo = Election::on(&g).config(cfg).seed(t.seed).run().unwrap();
            assert_eq!(solo.leaders, t.report.leaders);
            assert_eq!(solo.messages, t.report.messages);
            assert_eq!(solo.engine_rounds, t.report.engine_rounds);
        }
    }

    #[test]
    fn summary_aggregates_correctly() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .label("q6")
            .seeds(0..5)
            .run()
            .unwrap();
        let s = outcome.summary();
        assert_eq!(s.scenario, "q6");
        assert_eq!(s.trials, 5);
        assert_eq!(s.successes + s.no_leader + s.multi_leader, 5);
        let mut msgs: Vec<u64> = outcome.trials.iter().map(|t| t.report.messages).collect();
        msgs.sort_unstable();
        assert_eq!(s.messages.min, msgs[0]);
        assert_eq!(s.messages.max, msgs[4]);
        assert_eq!(s.messages.median, msgs[2]);
        assert!(s.messages.min <= s.messages.median && s.messages.median <= s.messages.max);
        assert!((s.success_rate() - s.successes as f64 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn families_sweep_multiple_scenarios() {
        let g = graph();
        let clique = Arc::new(gen::clique(32).unwrap());
        let cfg_g = ElectionConfig::tuned_for_simulation(64);
        let cfg_c = ElectionConfig::tuned_for_simulation(32);
        let outcome = Campaign::new(Election::on(&g).config(cfg_g))
            .label("hypercube")
            .families([("clique".to_string(), Arc::clone(&clique), cfg_c)])
            .seeds([1, 2])
            .run()
            .unwrap();
        assert_eq!(outcome.summaries.len(), 2);
        assert_eq!(outcome.trials.len(), 4);
        assert_eq!(outcome.trials_of("clique").count(), 2);
        assert_eq!(outcome.summaries[1].n, 32);
    }

    #[test]
    fn without_base_drops_the_prototype_scenario() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .families([("only".to_string(), Arc::clone(&g), cfg)])
            .without_base()
            .seeds([3])
            .run()
            .unwrap();
        assert_eq!(outcome.summaries.len(), 1);
        assert_eq!(outcome.summary().scenario, "only");
    }

    #[test]
    fn invalid_scenario_fails_before_running() {
        let g = graph();
        let bad = ElectionConfig {
            c2: -1.0,
            ..ElectionConfig::default()
        };
        let err = Campaign::new(Election::on(&g))
            .scenario("bad", &g, bad)
            .seeds(0..1000) // would be expensive if it ran anything
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadConstant { name: "c2", .. }));
        let err = Campaign::new(Election::on(&g)).seeds([]).run().unwrap_err();
        assert_eq!(err, ConfigError::NoSeeds);
    }

    #[test]
    fn display_and_csv_are_consistent() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .label("disp")
            .seeds(0..3)
            .run()
            .unwrap();
        let s = outcome.summary();
        let line = s.to_string();
        assert!(line.starts_with("disp: "));
        assert!(line.contains(&format!("{}/{} unique leader", s.successes, s.trials)));
        assert_eq!(
            s.csv_row().split(',').count(),
            CampaignSummary::csv_header().split(',').count()
        );
    }

    #[test]
    fn on_trial_streams_every_completed_run_in_order() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let mut seen = Vec::new();
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .seeds(0..3)
            .on_trial(|t| seen.push((t.seed, t.report.messages)))
            .run()
            .unwrap();
        let expected: Vec<_> = outcome
            .trials
            .iter()
            .map(|t| (t.seed, t.report.messages))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn prototype_believing_n_is_honored() {
        let g = graph(); // 64 nodes
        let cfg = ElectionConfig::tuned_for_simulation(32);
        let solo = Election::on(&g)
            .config(cfg)
            .believing_n(32)
            .seed(5)
            .run()
            .unwrap();
        let outcome = Campaign::new(Election::on(&g).config(cfg).believing_n(32).seed(5))
            .run()
            .unwrap();
        assert_eq!(outcome.trials[0].report.messages, solo.messages);
        assert_eq!(outcome.trials[0].report.leaders, solo.leaders);
        // And without the override, the same seed derives different
        // parameters (actual n = 64) and a different execution.
        let plain = Campaign::new(Election::on(&g).config(cfg).seed(5))
            .run()
            .unwrap();
        assert_ne!(plain.trials[0].report.messages, solo.messages);
    }

    #[test]
    fn stats_median_of_even_counts_averages_the_middles() {
        let mut v = [4u64, 1, 3, 2];
        let s = Stats::of(&mut v);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 2); // (2 + 3) / 2 rounded down
        assert_eq!(s.max, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        let mut odd = [5u64, 1, 9];
        assert_eq!(Stats::of(&mut odd).median, 5);
    }
}
