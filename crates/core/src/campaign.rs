//! The [`Campaign`] batch layer: one election prototype, many seeds and
//! graph families, aggregate statistics out.
//!
//! Every hand-rolled "for seed in … { run; tally }" loop in the
//! experiment binaries, examples, and the CLI is this type now:
//!
//! ```no_run
//! use std::sync::Arc;
//! use welle_core::{Campaign, Election, ElectionConfig};
//! use welle_graph::gen;
//!
//! let g = Arc::new(gen::hypercube(7).unwrap());
//! let cfg = ElectionConfig::tuned_for_simulation(g.n());
//! let outcome = Campaign::new(Election::on(&g).config(cfg))
//!     .label("hypercube")
//!     .seeds(0..20)
//!     .run()
//!     .unwrap();
//! let s = outcome.summary();
//! println!("{s}");
//! assert!(s.success_rate() > 0.9);
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use welle_congest::{FaultPlan, NoopObserver, TelemetryConfig, TransmitObserver};
use welle_graph::Graph;

use crate::config::{ElectionConfig, Params};
use crate::election::{Election, Exec};
use crate::error::ConfigError;
use crate::runner::{plan_for, run_resolved, ElectionReport, ExecPlan, PooledEngine};
use crate::scheduler::run_pool;
use crate::sink::{ParsedTrial, StreamSink};

/// Process-wide default for [`Campaign::trial_threads`], settable once
/// by batch drivers (see [`set_default_trial_threads`]).
static DEFAULT_TRIAL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the default worker-thread count for campaigns that do not call
/// [`Campaign::trial_threads`] themselves (clamped to ≥ 1). The
/// `all_experiments` batch binary uses this to thread every
/// experiment's campaigns from a single `--trial-threads` flag without
/// threading the option through each experiment's code.
pub fn set_default_trial_threads(k: usize) {
    DEFAULT_TRIAL_THREADS.store(k.max(1), Ordering::SeqCst);
}

/// The current process-wide default campaign worker count (see
/// [`set_default_trial_threads`]); 1 unless a batch driver raised it.
pub fn default_trial_threads() -> usize {
    DEFAULT_TRIAL_THREADS.load(Ordering::SeqCst)
}

/// Per-trial streaming callback ([`Campaign::on_trial`]).
type TrialHook<'o> = Box<dyn FnMut(&Trial) + 'o>;

/// One (graph, config) pair swept by a campaign.
struct Scenario {
    label: String,
    graph: Arc<Graph>,
    cfg: ElectionConfig,
    /// Parameter-derivation override ([`Election::believing_n`]),
    /// carried over from the prototype only.
    believed_n: Option<usize>,
    /// Adversarial network conditions for this scenario's trials
    /// ([`Election::faults`] / [`Campaign::faults`]); fault-rate sweeps
    /// are scenarios differing only in this field.
    faults: Option<FaultPlan>,
}

/// One completed election within a campaign.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Label of the scenario this trial belongs to.
    pub scenario: String,
    /// The seed the election ran with.
    pub seed: u64,
    /// The full per-run report.
    pub report: ElectionReport,
}

impl Trial {
    /// The CSV column names matching [`Trial::csv_row`]: the scenario
    /// label and seed identifying the trial, then every
    /// [`ElectionReport::csv_header`] column. Also the header of the
    /// [`Campaign::stream_csv`] sink / resume manifest.
    pub fn csv_header() -> String {
        format!("scenario,seed,{}", ElectionReport::csv_header())
    }

    /// This trial as one CSV row. The scenario label is a free-form
    /// string and is RFC-4180-quoted via [`crate::csv::escape`], so
    /// labels containing commas or quotes survive a round-trip intact.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{}",
            crate::csv::escape(&self.scenario),
            self.seed,
            self.report.csv_row()
        )
    }
}

/// `min`/`median`/`max`/`mean` of one metric across a scenario's trials.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Smallest observed value.
    pub min: u64,
    /// Median (mean of the two middle values, rounded down, for even
    /// counts).
    pub median: u64,
    /// Largest observed value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Stats {
    fn of(values: &mut [u64]) -> Stats {
        if values.is_empty() {
            return Stats {
                min: 0,
                median: 0,
                max: 0,
                mean: 0.0,
            };
        }
        values.sort_unstable();
        let mid = values.len() / 2;
        let median = if values.len() % 2 == 1 {
            values[mid]
        } else {
            values[mid - 1] / 2 + values[mid] / 2 + (values[mid - 1] % 2 + values[mid] % 2) / 2
        };
        Stats {
            min: values[0],
            median,
            max: values[values.len() - 1],
            mean: values.iter().sum::<u64>() as f64 / values.len() as f64,
        }
    }
}

/// Aggregate statistics for one scenario of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// The scenario label.
    pub scenario: String,
    /// Nodes in the scenario's graph.
    pub n: usize,
    /// Edges in the scenario's graph.
    pub m: usize,
    /// Trials run (seeds).
    pub trials: usize,
    /// Trials that elected exactly one leader.
    pub successes: usize,
    /// Trials that elected no leader.
    pub no_leader: usize,
    /// Trials that elected more than one leader (must be ~never).
    pub multi_leader: usize,
    /// Total contenders that hit the walk cap unsatisfied, across trials.
    pub gave_up: usize,
    /// Message-count statistics across trials.
    pub messages: Stats,
    /// Engine-round statistics across trials.
    pub rounds: Stats,
    /// Mean per-phase engine rounds across trials, indexed by
    /// [`Phase::tag`](crate::config::Phase::tag) order (walk, r1, r2,
    /// r3, wait). All zero unless
    /// the campaign ran with [`Campaign::telemetry`] (or resumed from a
    /// manifest written by one).
    pub phase_rounds_mean: [f64; 5],
    /// Max per-phase engine rounds across trials, same indexing as
    /// [`CampaignSummary::phase_rounds_mean`].
    pub phase_rounds_max: [u64; 5],
}

impl CampaignSummary {
    /// Fraction of trials that elected exactly one leader.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The CSV column names matching [`CampaignSummary::csv_row`].
    pub fn csv_header() -> &'static str {
        "scenario,n,m,trials,successes,no_leader,multi_leader,gave_up,\
         msgs_min,msgs_median,msgs_max,rounds_min,rounds_median,rounds_max,\
         walk_rounds_mean,r1_rounds_mean,r2_rounds_mean,r3_rounds_mean,wait_rounds_mean,\
         walk_rounds_max,r1_rounds_max,r2_rounds_max,r3_rounds_max,wait_rounds_max"
    }

    /// This summary as one CSV row. The scenario label is
    /// RFC-4180-quoted (see [`crate::csv::escape`]), so comma-bearing
    /// labels cannot corrupt the column structure.
    pub fn csv_row(&self) -> String {
        use std::fmt::Write as _;
        let mut row = format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            crate::csv::escape(&self.scenario),
            self.n,
            self.m,
            self.trials,
            self.successes,
            self.no_leader,
            self.multi_leader,
            self.gave_up,
            self.messages.min,
            self.messages.median,
            self.messages.max,
            self.rounds.min,
            self.rounds.median,
            self.rounds.max,
        );
        for v in self.phase_rounds_mean {
            let _ = write!(row, ",{v}");
        }
        for v in self.phase_rounds_max {
            let _ = write!(row, ",{v}");
        }
        row
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} m={} | {}/{} unique leader ({} zero, {} multi, {} gave up) | \
             msgs {}/{}/{} | rounds {}/{}/{} (min/median/max)",
            self.scenario,
            self.n,
            self.m,
            self.successes,
            self.trials,
            self.no_leader,
            self.multi_leader,
            self.gave_up,
            self.messages.min,
            self.messages.median,
            self.messages.max,
            self.rounds.min,
            self.rounds.median,
            self.rounds.max,
        )
    }
}

/// Everything a campaign produced: the per-trial reports in run order
/// (scenario-major, then seed), and one [`CampaignSummary`] per scenario.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Every freshly-run trial, in run order. Trials recovered from a
    /// resume manifest are *not* re-materialized here (their full
    /// reports were never persisted); they are counted in
    /// [`CampaignReport::resumed_trials`] and contribute to the
    /// summaries.
    pub trials: Vec<Trial>,
    /// One aggregate per scenario, in scenario order.
    pub summaries: Vec<CampaignSummary>,
    /// Serial engines constructed while running the trials. With the
    /// pooled trial scheduler this stays at (at most) one per worker
    /// thread — not one per trial — because workers reset and reuse
    /// their engine's arenas between trials. Reuse is also bounded: a
    /// reset sheds any message arena left far oversized for the next
    /// trial's graph (the high-water shrink rule on
    /// [`welle_congest::Engine::reset_with`]), so a campaign mixing a
    /// giant scenario with small ones does not hold the giant's memory
    /// for the rest of the sweep — still without raising this count.
    /// Trials forced onto an explicit [`Exec::Threaded`] engine are not
    /// pooled and not counted.
    pub engines_built: usize,
    /// Trials recovered from the resume manifest instead of re-run
    /// (always a prefix of the campaign's trial order).
    pub resumed_trials: usize,
}

impl CampaignReport {
    /// The first scenario's summary — the campaign's headline when it
    /// swept a single scenario.
    ///
    /// # Panics
    ///
    /// Panics if the campaign had no scenarios (impossible via
    /// [`Campaign::new`]).
    pub fn summary(&self) -> &CampaignSummary {
        &self.summaries[0]
    }

    /// Iterates the trials of one scenario.
    pub fn trials_of<'a>(&'a self, scenario: &'a str) -> impl Iterator<Item = &'a Trial> {
        self.trials.iter().filter(move |t| t.scenario == scenario)
    }
}

/// Batch runner: a prototype [`Election`] swept over seeds and graph
/// families.
///
/// The prototype's graph and config become the first scenario; more
/// scenarios join via [`Campaign::scenario`] / [`Campaign::families`].
/// Every trial funnels through the same single code path as
/// [`Election::run`], so campaign results are bit-identical to the
/// corresponding individual runs.
#[must_use = "a Campaign does nothing until .run() is called"]
pub struct Campaign<'o> {
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    exec: Exec,
    trial_threads: Option<usize>,
    budget: Option<usize>,
    sink_path: Option<PathBuf>,
    resume: bool,
    telem: Option<TelemetryConfig>,
    obs: Option<&'o mut dyn TransmitObserver>,
    on_trial: Option<TrialHook<'o>>,
}

/// Per-scenario aggregation state, fed one trial at a time in
/// deterministic order (resumed trials first, then fresh ones).
#[derive(Default)]
struct Acc {
    successes: usize,
    no_leader: usize,
    multi_leader: usize,
    gave_up: usize,
    messages: Vec<u64>,
    rounds: Vec<u64>,
    phase_rounds_sum: [u64; 5],
    phase_rounds_max: [u64; 5],
}

impl Acc {
    fn absorb(
        &mut self,
        leaders: usize,
        gave_up: usize,
        messages: u64,
        rounds: u64,
        phase_rounds: [u64; 5],
    ) {
        match leaders {
            0 => self.no_leader += 1,
            1 => self.successes += 1,
            _ => self.multi_leader += 1,
        }
        self.gave_up += gave_up;
        self.messages.push(messages);
        self.rounds.push(rounds);
        for (i, &r) in phase_rounds.iter().enumerate() {
            self.phase_rounds_sum[i] += r;
            self.phase_rounds_max[i] = self.phase_rounds_max[i].max(r);
        }
    }

    fn into_summary(mut self, s: &Scenario) -> CampaignSummary {
        let trials = self.messages.len();
        let mut phase_rounds_mean = [0.0f64; 5];
        if trials > 0 {
            for (mean, &sum) in phase_rounds_mean.iter_mut().zip(&self.phase_rounds_sum) {
                *mean = sum as f64 / trials as f64;
            }
        }
        CampaignSummary {
            scenario: s.label.clone(),
            n: s.graph.n(),
            m: s.graph.m(),
            trials,
            successes: self.successes,
            no_leader: self.no_leader,
            multi_leader: self.multi_leader,
            gave_up: self.gave_up,
            messages: Stats::of(&mut self.messages),
            rounds: Stats::of(&mut self.rounds),
            phase_rounds_mean,
            phase_rounds_max: self.phase_rounds_max,
        }
    }
}

impl<'o> Campaign<'o> {
    /// Builds a campaign from a prototype election. The prototype's seed
    /// becomes the default (single) seed until [`Campaign::seeds`]
    /// replaces it; its executor choice applies to every trial, and a
    /// [`Election::believing_n`] override applies to the prototype's
    /// scenario (later scenarios derive from their own graphs).
    pub fn new(proto: Election<'_, 'o>) -> Self {
        let Election {
            graph,
            cfg,
            seed,
            exec,
            believed_n,
            faults,
            telem,
            obs,
        } = proto;
        Campaign {
            scenarios: vec![Scenario {
                label: "base".into(),
                graph: Arc::clone(graph),
                cfg,
                believed_n,
                faults,
            }],
            seeds: vec![seed],
            exec,
            trial_threads: None,
            budget: None,
            sink_path: None,
            resume: false,
            telem,
            obs,
            on_trial: None,
        }
    }

    /// Records per-round telemetry for every trial (see
    /// [`Election::telemetry`]). Each trial's [`ElectionReport`] carries
    /// its phase tables, the per-scenario summaries aggregate mean/max
    /// per-phase rounds, and the streamed CSV's phase columns become
    /// non-zero. [`Retention::Ring`](welle_congest::Retention)`(0)`
    /// keeps the aggregates without retaining any per-round samples —
    /// the usual choice for large sweeps.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telem = Some(cfg);
        self
    }

    /// Runs the campaign's trials on a work-stealing pool of `k`
    /// persistent worker threads (`1` = the classic in-place serial
    /// loop). Trials are seeded and independent, and completions are
    /// reassembled into the serial (scenario, seed) order before
    /// anything observable happens — summaries, [`Campaign::on_trial`]
    /// calls, and streamed CSV rows are **bit-identical at any worker
    /// count**. Each worker keeps one pooled engine and reuses its
    /// arenas across trials (see [`CampaignReport::engines_built`]).
    ///
    /// Campaigns that never call this use the process-wide
    /// [`default_trial_threads`]. A prototype observer
    /// ([`Election::observer`]) forces the serial loop regardless, since
    /// its event stream interleaves across trials. When `k > 1` the
    /// pool owns the host's cores, so [`Exec::Auto`] resolves to
    /// [`Exec::Serial`] for every trial — engines are never nested
    /// inside trial workers (an explicit [`Exec::Threaded`] is still
    /// honored, unpooled).
    pub fn trial_threads(mut self, k: usize) -> Self {
        self.trial_threads = Some(k);
        self
    }

    /// Streams every completed trial as one CSV row (header
    /// [`Trial::csv_header`], rows [`Trial::csv_row`]) to `path`,
    /// flushed per trial in deterministic order. An interrupted run
    /// therefore leaves a valid prefix of the full output on disk, and
    /// the same file doubles as the [`Campaign::resume`] manifest.
    pub fn stream_csv(mut self, path: impl Into<PathBuf>) -> Self {
        self.sink_path = Some(path.into());
        self
    }

    /// With [`Campaign::stream_csv`]: when the sink file already holds
    /// a valid prefix of this campaign's trials, skip re-running them
    /// and restart at the first missing trial — the interrupted-sweep
    /// recovery path. Recovered trials contribute to the summaries and
    /// to [`CampaignReport::resumed_trials`], but their full
    /// [`ElectionReport`]s are gone, so they do not reappear in
    /// [`CampaignReport::trials`]. A missing sink file resumes as a
    /// fresh run; a file from a *different* campaign is a
    /// [`ConfigError::ResumeMismatch`]. Without `stream_csv` this
    /// setting has no effect.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Stops after the campaign's first `max` trials in deterministic
    /// order (counting trials recovered via [`Campaign::resume`]) —
    /// deterministic interruption for budgeted batch jobs and for
    /// testing the resume path. Scenarios past the cut-off simply
    /// report fewer (possibly zero) trials in their summaries.
    pub fn budget_trials(mut self, max: usize) -> Self {
        self.budget = Some(max);
        self
    }

    /// Streams each completed [`Trial`] to `f` as the sweep runs —
    /// progress lines for long campaigns, instead of silence until the
    /// whole batch returns.
    pub fn on_trial(mut self, f: impl FnMut(&Trial) + 'o) -> Self {
        self.on_trial = Some(Box::new(f));
        self
    }

    /// Renames the most recently added scenario (the prototype's, unless
    /// [`Campaign::scenario`] was called since).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        if let Some(s) = self.scenarios.last_mut() {
            s.label = label.into();
        }
        self
    }

    /// Attaches adversarial network conditions to the most recently
    /// added scenario (like [`Campaign::label`]). Sweeping a fault
    /// parameter is adding the same graph several times with different
    /// plans:
    ///
    /// ```no_run
    /// # use std::sync::Arc;
    /// # use welle_core::{Campaign, Election, ElectionConfig, FaultPlan};
    /// # use welle_graph::gen;
    /// let g = Arc::new(gen::hypercube(7).unwrap());
    /// let cfg = ElectionConfig::tuned_for_simulation(g.n());
    /// let mut campaign = Campaign::new(Election::on(&g).config(cfg)).label("p=0");
    /// for p in [0.01, 0.05, 0.1] {
    ///     campaign = campaign
    ///         .scenario(format!("p={p}"), &g, cfg)
    ///         .faults(FaultPlan::new(1).drop_rate(p));
    /// }
    /// let outcome = campaign.seeds(0..20).run().unwrap();
    /// for s in &outcome.summaries {
    ///     println!("{} -> {:.2}", s.scenario, s.success_rate());
    /// }
    /// ```
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        if let Some(s) = self.scenarios.last_mut() {
            s.faults = Some(plan);
        }
        self
    }

    /// Replaces the seed set. Each scenario runs once per seed.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Overrides the executor choice for every trial.
    pub fn executor(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Appends one more scenario.
    pub fn scenario(
        mut self,
        label: impl Into<String>,
        graph: &Arc<Graph>,
        cfg: ElectionConfig,
    ) -> Self {
        self.scenarios.push(Scenario {
            label: label.into(),
            graph: Arc::clone(graph),
            cfg,
            believed_n: None,
            faults: None,
        });
        self
    }

    /// Appends a whole family sweep: one scenario per `(label, graph,
    /// config)` triple.
    pub fn families(
        mut self,
        families: impl IntoIterator<Item = (String, Arc<Graph>, ElectionConfig)>,
    ) -> Self {
        for (label, graph, cfg) in families {
            self.scenarios.push(Scenario {
                label,
                graph,
                cfg,
                believed_n: None,
                faults: None,
            });
        }
        self
    }

    /// Drops the prototype scenario, keeping only scenarios added via
    /// [`Campaign::scenario`] / [`Campaign::families`] — for sweeps
    /// where the prototype graph was only a seed-carrier.
    pub fn without_base(mut self) -> Self {
        if self.scenarios.len() > 1 {
            self.scenarios.remove(0);
        }
        self
    }

    /// Validates every scenario up front, then runs the full sweep in
    /// deterministic (scenario-major, then seed) order — on the trial
    /// scheduler when [`Campaign::trial_threads`] asked for more than
    /// one worker, as the classic serial loop otherwise. Either way the
    /// outcome is bit-identical.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] among the scenarios — checked
    /// before anything is simulated — [`ConfigError::NoSeeds`] for an
    /// empty seed set, [`ConfigError::ZeroThreads`] for
    /// `trial_threads(0)`, and sink/manifest failures as
    /// [`ConfigError::SinkIo`] / [`ConfigError::ResumeMismatch`].
    pub fn run(self) -> Result<CampaignReport, ConfigError> {
        let Campaign {
            scenarios,
            seeds,
            exec,
            trial_threads,
            budget,
            sink_path,
            resume,
            telem,
            mut obs,
            mut on_trial,
        } = self;
        if seeds.is_empty() {
            return Err(ConfigError::NoSeeds);
        }
        let workers = match trial_threads {
            Some(0) => return Err(ConfigError::ZeroThreads),
            Some(k) => k,
            None => default_trial_threads(),
        };
        // When the trial pool owns the cores (workers > 1), Auto must
        // see a spare-core budget of 1 so it resolves to Serial —
        // threaded engines are never nested inside trial workers.
        let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let engine_cores = if workers > 1 { 1 } else { host_cores };

        // Validate everything before simulating anything: a campaign
        // must not die half-way through on a typo in scenario 7.
        let mut prepared = Vec::with_capacity(scenarios.len());
        for s in &scenarios {
            let n = s.believed_n.unwrap_or_else(|| s.graph.n());
            let params = Arc::new(Params::try_derive(n, s.cfg)?);
            let plan = plan_for(exec, &s.graph, engine_cores)?;
            // Fault plans compile once per scenario (O(n + m)) and are
            // shared by every seed's trial.
            let faults = match &s.faults {
                Some(plan) => Some(plan.compile_for(&s.graph)?),
                None => None,
            };
            prepared.push((params, plan, faults));
        }

        // The deterministic trial order every execution mode reproduces.
        let order: Vec<(usize, u64)> = scenarios
            .iter()
            .enumerate()
            .flat_map(|(si, _)| seeds.iter().map(move |&seed| (si, seed)))
            .collect();
        let total = order.len();
        let stop_at = budget.map_or(total, |b| b.min(total));

        // Open the streaming sink; under `resume`, recover the
        // completed prefix from it first.
        let header = Trial::csv_header();
        let mut resumed: Vec<ParsedTrial> = Vec::new();
        let mut sink = match (&sink_path, resume) {
            (Some(path), true) => {
                let expected: Vec<(&str, u64)> = order
                    .iter()
                    .map(|&(si, seed)| (scenarios[si].label.as_str(), seed))
                    .collect();
                let (sink, parsed) = StreamSink::resume(path, &header, &expected)?;
                resumed = parsed;
                Some(sink)
            }
            (Some(path), false) => Some(StreamSink::create(path, &header)?),
            (None, _) => None,
        };
        let start = resumed.len().min(stop_at);

        let mut accs: Vec<Acc> = scenarios.iter().map(|_| Acc::default()).collect();
        for (i, p) in resumed.iter().enumerate() {
            let (si, _) = order[i];
            accs[si].absorb(p.leaders, p.gave_up, p.messages, p.rounds, p.phase_rounds);
        }

        let mut trials: Vec<Trial> = Vec::with_capacity(stop_at - start);
        let mut sink_err: Option<ConfigError> = None;
        // The single completion path: called in deterministic trial
        // order by both execution modes, it aggregates, streams, and
        // fires the hook. Sink failures are latched and reported after
        // the in-flight trials drain.
        let mut record = |i: usize, report: ElectionReport| {
            let (si, seed) = order[i];
            let trial = Trial {
                scenario: scenarios[si].label.clone(),
                seed,
                report,
            };
            accs[si].absorb(
                trial.report.leaders.len(),
                trial.report.gave_up,
                trial.report.messages,
                trial.report.engine_rounds,
                trial.report.phase_rounds,
            );
            if sink_err.is_none() {
                if let Some(s) = sink.as_mut() {
                    if let Err(e) = s.write_row(&trial.csv_row()) {
                        sink_err = Some(e);
                    }
                }
            }
            if let Some(f) = on_trial.as_mut() {
                f(&trial);
            }
            trials.push(trial);
        };

        let engines_built = if workers > 1 && obs.is_none() {
            let run_one = |pool: &mut PooledEngine, u: usize| {
                let (si, seed) = order[start + u];
                let (params, plan, faults) = &prepared[si];
                match plan {
                    ExecPlan::Serial => pool.run(
                        &scenarios[si].graph,
                        params,
                        seed,
                        faults.as_ref(),
                        telem,
                        &mut NoopObserver,
                    ),
                    other => run_resolved(
                        &scenarios[si].graph,
                        Arc::clone(params),
                        *other,
                        seed,
                        faults.as_ref(),
                        telem,
                        &mut NoopObserver,
                    ),
                }
            };
            run_pool(stop_at - start, workers, run_one, |u, report| {
                record(start + u, report)
            })
        } else {
            let mut pool = PooledEngine::new();
            let mut noop = NoopObserver;
            for (i, &(si, seed)) in order.iter().enumerate().take(stop_at).skip(start) {
                let (params, plan, faults) = &prepared[si];
                let o: &mut dyn TransmitObserver = match obs.as_deref_mut() {
                    Some(o) => o,
                    None => &mut noop,
                };
                let report = match plan {
                    ExecPlan::Serial => {
                        pool.run(&scenarios[si].graph, params, seed, faults.as_ref(), telem, o)
                    }
                    other => run_resolved(
                        &scenarios[si].graph,
                        Arc::clone(params),
                        *other,
                        seed,
                        faults.as_ref(),
                        telem,
                        o,
                    ),
                };
                record(i, report);
            }
            pool.built
        };
        if let Some(e) = sink_err {
            return Err(e);
        }

        let summaries = scenarios
            .iter()
            .zip(accs)
            .map(|(s, acc)| acc.into_summary(s))
            .collect();
        Ok(CampaignReport {
            trials,
            summaries,
            engines_built,
            resumed_trials: resumed.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use welle_graph::gen;

    fn graph() -> Arc<Graph> {
        Arc::new(gen::hypercube(6).unwrap())
    }

    #[test]
    fn campaign_matches_individual_elections() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .seeds(0..4)
            .run()
            .unwrap();
        assert_eq!(outcome.trials.len(), 4);
        for t in &outcome.trials {
            let solo = Election::on(&g).config(cfg).seed(t.seed).run().unwrap();
            assert_eq!(solo.leaders, t.report.leaders);
            assert_eq!(solo.messages, t.report.messages);
            assert_eq!(solo.engine_rounds, t.report.engine_rounds);
        }
    }

    #[test]
    fn summary_aggregates_correctly() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .label("q6")
            .seeds(0..5)
            .run()
            .unwrap();
        let s = outcome.summary();
        assert_eq!(s.scenario, "q6");
        assert_eq!(s.trials, 5);
        assert_eq!(s.successes + s.no_leader + s.multi_leader, 5);
        let mut msgs: Vec<u64> = outcome.trials.iter().map(|t| t.report.messages).collect();
        msgs.sort_unstable();
        assert_eq!(s.messages.min, msgs[0]);
        assert_eq!(s.messages.max, msgs[4]);
        assert_eq!(s.messages.median, msgs[2]);
        assert!(s.messages.min <= s.messages.median && s.messages.median <= s.messages.max);
        assert!((s.success_rate() - s.successes as f64 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn families_sweep_multiple_scenarios() {
        let g = graph();
        let clique = Arc::new(gen::clique(32).unwrap());
        let cfg_g = ElectionConfig::tuned_for_simulation(64);
        let cfg_c = ElectionConfig::tuned_for_simulation(32);
        let outcome = Campaign::new(Election::on(&g).config(cfg_g))
            .label("hypercube")
            .families([("clique".to_string(), Arc::clone(&clique), cfg_c)])
            .seeds([1, 2])
            .run()
            .unwrap();
        assert_eq!(outcome.summaries.len(), 2);
        assert_eq!(outcome.trials.len(), 4);
        assert_eq!(outcome.trials_of("clique").count(), 2);
        assert_eq!(outcome.summaries[1].n, 32);
    }

    #[test]
    fn without_base_drops_the_prototype_scenario() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .families([("only".to_string(), Arc::clone(&g), cfg)])
            .without_base()
            .seeds([3])
            .run()
            .unwrap();
        assert_eq!(outcome.summaries.len(), 1);
        assert_eq!(outcome.summary().scenario, "only");
    }

    #[test]
    fn invalid_scenario_fails_before_running() {
        let g = graph();
        let bad = ElectionConfig {
            c2: -1.0,
            ..ElectionConfig::default()
        };
        let err = Campaign::new(Election::on(&g))
            .scenario("bad", &g, bad)
            .seeds(0..1000) // would be expensive if it ran anything
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadConstant { name: "c2", .. }));
        let err = Campaign::new(Election::on(&g)).seeds([]).run().unwrap_err();
        assert_eq!(err, ConfigError::NoSeeds);
    }

    #[test]
    fn display_and_csv_are_consistent() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .label("disp")
            .seeds(0..3)
            .run()
            .unwrap();
        let s = outcome.summary();
        let line = s.to_string();
        assert!(line.starts_with("disp: "));
        assert!(line.contains(&format!("{}/{} unique leader", s.successes, s.trials)));
        assert_eq!(
            s.csv_row().split(',').count(),
            CampaignSummary::csv_header().split(',').count()
        );
    }

    #[test]
    fn on_trial_streams_every_completed_run_in_order() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let mut seen = Vec::new();
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .seeds(0..3)
            .on_trial(|t| seen.push((t.seed, t.report.messages)))
            .run()
            .unwrap();
        let expected: Vec<_> = outcome
            .trials
            .iter()
            .map(|t| (t.seed, t.report.messages))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn prototype_believing_n_is_honored() {
        let g = graph(); // 64 nodes
        let cfg = ElectionConfig::tuned_for_simulation(32);
        let solo = Election::on(&g)
            .config(cfg)
            .believing_n(32)
            .seed(5)
            .run()
            .unwrap();
        let outcome = Campaign::new(Election::on(&g).config(cfg).believing_n(32).seed(5))
            .run()
            .unwrap();
        assert_eq!(outcome.trials[0].report.messages, solo.messages);
        assert_eq!(outcome.trials[0].report.leaders, solo.leaders);
        // And without the override, the same seed derives different
        // parameters (actual n = 64) and a different execution.
        let plain = Campaign::new(Election::on(&g).config(cfg).seed(5))
            .run()
            .unwrap();
        assert_ne!(plain.trials[0].report.messages, solo.messages);
    }

    fn temp_path(name: &str) -> PathBuf {
        // Keep test artifacts inside the workspace target directory.
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/test-tmp");
        std::fs::create_dir_all(&p).unwrap();
        p.push(format!("{}_{name}.csv", std::process::id()));
        p
    }

    /// A three-scenario campaign (fault-free, dropping, comma-labelled)
    /// exercising every row the sink can produce.
    fn sweep(g: &Arc<Graph>, cfg: ElectionConfig) -> Campaign<'static> {
        Campaign::new(Election::on(g).config(cfg))
            .label("clean")
            .scenario("p=0.3, drops", g, cfg)
            .faults(FaultPlan::new(2).drop_rate(0.3))
            .scenario("say \"hi\"", g, cfg)
            .seeds(0..4)
    }

    fn outcome_fingerprint(outcome: &CampaignReport) -> (Vec<String>, Vec<String>) {
        (
            outcome.trials.iter().map(Trial::csv_row).collect(),
            outcome
                .summaries
                .iter()
                .map(CampaignSummary::csv_row)
                .collect(),
        )
    }

    #[test]
    fn trial_threads_are_bit_identical_to_the_serial_loop() {
        let g = graph();
        let cfg = ElectionConfig {
            max_walk_len: Some(64), // keep faulted give-ups cheap
            ..ElectionConfig::tuned_for_simulation(64)
        };
        let serial = sweep(&g, cfg).run().unwrap();
        let serial_fp = outcome_fingerprint(&serial);
        assert_eq!(serial.trials.len(), 12);
        for workers in [2usize, 3, 8] {
            let pooled = sweep(&g, cfg).trial_threads(workers).run().unwrap();
            assert_eq!(
                outcome_fingerprint(&pooled),
                serial_fp,
                "workers = {workers}"
            );
            assert!(
                pooled.engines_built <= workers,
                "pooling must reuse engines: built {} with {workers} workers",
                pooled.engines_built
            );
        }
    }

    #[test]
    fn on_trial_order_is_deterministic_under_threads() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let mut seen = Vec::new();
        Campaign::new(Election::on(&g).config(cfg))
            .seeds(0..6)
            .trial_threads(3)
            .on_trial(|t| seen.push(t.seed))
            .run()
            .unwrap();
        assert_eq!(seen, (0..6).collect::<Vec<u64>>());
    }

    #[test]
    fn comma_and_quote_labels_survive_a_csv_round_trip() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let label = "p=0.05, \"dumbbell\"";
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .label(label)
            .seeds([1])
            .run()
            .unwrap();
        let header_cols = CampaignSummary::csv_header().split(',').count();
        let srow = outcome.summary().csv_row();
        let sfields = crate::csv::split_row(&srow).unwrap();
        assert_eq!(sfields.len(), header_cols, "row: {srow}");
        assert_eq!(sfields[0], label, "label must round-trip exactly");

        let trow = outcome.trials[0].csv_row();
        let tfields = crate::csv::split_row(&trow).unwrap();
        assert_eq!(tfields.len(), Trial::csv_header().split(',').count());
        assert_eq!(tfields[0], label);
        assert_eq!(tfields[1], "1");
    }

    #[test]
    fn streamed_csv_matches_the_trials() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let path = temp_path("stream");
        let outcome = Campaign::new(Election::on(&g).config(cfg))
            .label("with, comma")
            .seeds(0..3)
            .stream_csv(&path)
            .run()
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), Trial::csv_header());
        let rows: Vec<&str> = lines.collect();
        let expect: Vec<String> = outcome.trials.iter().map(Trial::csv_row).collect();
        assert_eq!(rows, expect);
    }

    #[test]
    fn interrupted_campaign_resumes_at_the_first_missing_trial() {
        let g = graph();
        let cfg = ElectionConfig {
            max_walk_len: Some(64),
            ..ElectionConfig::tuned_for_simulation(64)
        };
        // Uninterrupted reference.
        let full_path = temp_path("resume_full");
        let full = sweep(&g, cfg).stream_csv(&full_path).run().unwrap();
        let full_text = std::fs::read_to_string(&full_path).unwrap();
        std::fs::remove_file(&full_path).unwrap();

        // Interrupted after 5 of 12 trials, then resumed (threaded, for
        // good measure) — the file must come out byte-identical and the
        // summaries must match the uninterrupted run.
        let path = temp_path("resume_part");
        let partial = sweep(&g, cfg)
            .stream_csv(&path)
            .budget_trials(5)
            .run()
            .unwrap();
        assert_eq!(partial.trials.len(), 5);
        assert_eq!(partial.summaries[2].trials, 0, "third scenario untouched");
        let resumed = sweep(&g, cfg)
            .stream_csv(&path)
            .resume(true)
            .trial_threads(4)
            .run()
            .unwrap();
        let resumed_text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(resumed.resumed_trials, 5);
        assert_eq!(resumed.trials.len(), 7, "only the missing trials re-ran");
        assert_eq!(resumed_text, full_text, "file must be byte-identical");
        let full_rows: Vec<String> = full.summaries.iter().map(CampaignSummary::csv_row).collect();
        let res_rows: Vec<String> =
            resumed.summaries.iter().map(CampaignSummary::csv_row).collect();
        assert_eq!(res_rows, full_rows, "summaries must absorb resumed trials");
    }

    #[test]
    fn torn_trailing_line_is_discarded_on_resume() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let path = temp_path("torn");
        let campaign = || {
            Campaign::new(Election::on(&g).config(cfg))
                .label("torn")
                .seeds(0..3)
        };
        let full = campaign().stream_csv(&path).run().unwrap();
        let full_text = std::fs::read_to_string(&path).unwrap();
        // Tear the file mid-row: drop the final newline and half the row.
        let torn = &full_text[..full_text.len() - 9];
        assert!(!torn.ends_with('\n'));
        std::fs::write(&path, torn).unwrap();
        let resumed = campaign().stream_csv(&path).resume(true).run().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(resumed.resumed_trials, 2, "the torn trial must re-run");
        assert_eq!(text, full_text);
        assert_eq!(
            outcome_fingerprint(&resumed).1,
            outcome_fingerprint(&full).1
        );
    }

    #[test]
    fn quoted_label_with_embedded_newline_survives_resume() {
        // A scenario label with an embedded newline makes every trial
        // row span two physical lines once escaped. Resume must parse
        // those as single RFC 4180 logical rows — not reject the
        // manifest as corrupt — and a tear right after the label's
        // interior newline (so the fragment still ends in '\n') must
        // read as a torn row, not a complete one.
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let path = temp_path("newline_label");
        let label = "line one\nline \"two\", quoted";
        let campaign = || {
            Campaign::new(Election::on(&g).config(cfg))
                .label(label)
                .seeds(0..3)
        };
        let full = campaign().stream_csv(&path).run().unwrap();
        let full_text = std::fs::read_to_string(&path).unwrap();

        // Resuming the complete manifest recovers every trial.
        let resumed = campaign().stream_csv(&path).resume(true).run().unwrap();
        assert_eq!(resumed.resumed_trials, 3, "all three rows must parse");
        assert_eq!(resumed.trials.len(), 0, "nothing should re-run");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), full_text);

        // Tear inside the last row's quoted label, just past its
        // embedded newline: quote parity is odd, so the trailing
        // newline must not terminate the row.
        let marker = "\"line one\n";
        let tear = full_text.rfind(marker).unwrap() + marker.len();
        assert!(full_text[..tear].ends_with('\n'));
        std::fs::write(&path, &full_text[..tear]).unwrap();
        let resumed = campaign().stream_csv(&path).resume(true).run().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(resumed.resumed_trials, 2, "the torn trial must re-run");
        assert_eq!(text, full_text, "file must be byte-identical");
        assert_eq!(
            outcome_fingerprint(&resumed).1,
            outcome_fingerprint(&full).1,
            "resumed summaries must absorb the recovered trials"
        );
    }

    #[test]
    fn foreign_manifest_is_a_resume_mismatch() {
        let g = graph();
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let path = temp_path("foreign");
        // A manifest from a different campaign (other label / seeds).
        Campaign::new(Election::on(&g).config(cfg))
            .label("other")
            .seeds(10..13)
            .stream_csv(&path)
            .run()
            .unwrap();
        let err = Campaign::new(Election::on(&g).config(cfg))
            .label("mine")
            .seeds(0..3)
            .stream_csv(&path)
            .resume(true)
            .run()
            .unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, ConfigError::ResumeMismatch { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn auto_resolves_serial_inside_a_threaded_campaign() {
        // The campaign hands Exec::Auto a spare-core budget of 1 when
        // the trial pool owns the cores; on a graph that would
        // otherwise qualify for sharding, Auto must still pick Serial.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let big = Arc::new(welle_graph::gen::random_regular(10_000, 4, &mut rng).unwrap());
        assert!(matches!(
            Exec::Auto.resolve_with(&big, 8),
            Exec::Threaded(_)
        ));
        assert_eq!(Exec::Auto.resolve_with(&big, 1), Exec::Serial);
        assert_eq!(plan_for(Exec::Auto, &big, 1).unwrap(), ExecPlan::Serial);
        // Explicit Threaded(k) stays honored even inside a pool.
        assert_eq!(
            plan_for(Exec::Threaded(3), &big, 1).unwrap(),
            ExecPlan::Threaded(3)
        );
    }

    #[test]
    fn zero_trial_threads_is_a_config_error() {
        let g = graph();
        let err = Campaign::new(Election::on(&g))
            .trial_threads(0)
            .seeds(0..1000) // would be expensive if it ran anything
            .run()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroThreads);
    }

    #[test]
    fn default_trial_threads_starts_serial() {
        assert!(default_trial_threads() >= 1);
    }

    #[test]
    fn stats_median_of_even_counts_averages_the_middles() {
        let mut v = [4u64, 1, 3, 2];
        let s = Stats::of(&mut v);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 2); // (2 + 3) / 2 rounded down
        assert_eq!(s.max, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        let mut odd = [5u64, 1, 9];
        assert_eq!(Stats::of(&mut odd).median, 5);
    }
}
