//! The single engine-driving path behind [`Election`](crate::Election)
//! and [`Campaign`](crate::Campaign), and the [`ElectionReport`] summary.

use std::sync::Arc;

use welle_congest::{
    AsyncEngine, CompiledFaultPlan, Engine, EngineConfig, Exec, Executor, LatencyModel,
    RunOutcome, TelemetryConfig, TelemetryReport, ThreadedEngine, TransmitObserver,
};
use welle_graph::Graph;

use crate::config::{ElectionConfig, Params, Phase, SyncMode};
use crate::error::ConfigError;
use crate::protocol::{ElectionNode, SIGNAL_ADVANCE};
use crate::state::Decision;

/// An [`Exec`] choice resolved and validated against a concrete graph
/// and core budget: `Auto` is gone, thread counts are positive, latency
/// models are well-formed. What [`run_resolved`] actually builds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum ExecPlan {
    /// The serial event-driven engine.
    Serial,
    /// The sharded engine with this many workers (≥ 1).
    Threaded(usize),
    /// The async engine under this (validated) latency model.
    Async(LatencyModel),
}

/// Resolves and validates `exec` against `graph` and a spare-core
/// budget (see [`Exec::resolve_with`] for the budget's meaning).
///
/// # Errors
///
/// [`ConfigError::ZeroThreads`] for `Threaded(0)`;
/// [`ConfigError::Latency`] for an async model with bad parameters.
pub(crate) fn plan_for(
    exec: Exec,
    graph: &Graph,
    cores: usize,
) -> Result<ExecPlan, ConfigError> {
    match exec.resolve_with(graph, cores) {
        Exec::Serial => Ok(ExecPlan::Serial),
        Exec::Threaded(0) => Err(ConfigError::ZeroThreads),
        Exec::Threaded(k) => Ok(ExecPlan::Threaded(k)),
        Exec::Async(model) => {
            model.validate()?;
            Ok(ExecPlan::Async(model))
        }
        Exec::Auto => unreachable!("resolve never returns Auto"),
    }
}

/// Summary of one election run (one graph, one seed).
#[derive(Clone, Debug)]
pub struct ElectionReport {
    /// Nodes in the network.
    pub n: usize,
    /// Edges in the network.
    pub m: usize,
    /// How many nodes designated themselves contenders (Lemma 1 predicts
    /// `[¾·c1·ln n, 5/4·c1·ln n]` w.h.p.).
    pub contenders: usize,
    /// Simulator indices of nodes that declared leadership (the paper's
    /// guarantee: exactly one, w.h.p.).
    pub leaders: Vec<usize>,
    /// The elected leader's random id, when unique.
    pub leader_id: Option<u64>,
    /// Total CONGEST messages transmitted (the paper's message measure).
    pub messages: u64,
    /// Total bits transmitted.
    pub bits: u64,
    /// Round by which every contender had decided — the election time
    /// (Theorem 13's `O(t_mix log² n)` in `FixedT` mode).
    pub decided_round: u64,
    /// Rounds simulated in total, including the final drain.
    pub engine_rounds: u64,
    /// Largest final walk-length guess `t_u` among contenders (Lemma 3
    /// predicts `O(t_mix)`).
    pub final_walk_len: u32,
    /// Number of epochs the slowest contender used.
    pub epochs_used: u32,
    /// Contenders that hit the walk-length cap unsatisfied (tail events).
    pub gave_up: usize,
    /// Messages removed by the run's [`FaultPlan`](crate::FaultPlan) —
    /// dropped in transit, suppressed by crashed endpoints, or sent into
    /// cut edges. Zero in fault-free runs.
    pub dropped_messages: u64,
    /// Nodes the run's [`FaultPlan`](crate::FaultPlan) scheduled to
    /// crash (zero without a plan) — failures stay visible in the report
    /// instead of masquerading as ordinary tail events.
    pub crashed: u64,
    /// Diagnostic: walk tokens dropped on stale trails.
    pub dropped_tokens: u64,
    /// Diagnostic: routing lookups that found no trail.
    pub broken_routes: u64,
    /// Virtual time spanned, in rounds (see
    /// [`Executor::virtual_time`]): equal to `engine_rounds` on the
    /// synchronous executors and under the zero-latency async model;
    /// stretched past it when deliveries complete late.
    pub virtual_time: f64,
    /// High-water mark of simultaneously queued messages in the
    /// engine's recycling message arena — the run's peak memory
    /// footprint in messages (see
    /// [`Executor::peak_arena_slots`]). Not a CSV column: the
    /// on-disk row format is pinned by resume manifests.
    pub peak_arena_slots: u64,
    /// Active rounds attributed to each election phase (indexed by
    /// [`Phase::tag`]: walk, r1, r2, r3, wait), from the run's
    /// telemetry layer. All zeros unless the run enabled telemetry
    /// ([`Election::telemetry`](crate::Election::telemetry)) — phase
    /// attribution costs one branch per round, so it stays opt-in.
    pub phase_rounds: [u64; 5],
    /// Messages attributed to each election phase (same indexing and
    /// opt-in as [`ElectionReport::phase_rounds`]).
    pub phase_messages: [u64; 5],
    /// The full telemetry report (per-round samples, phase table, span
    /// profile) when the run enabled telemetry; `None` otherwise. The
    /// stream is bit-identical across executors — only
    /// [`SpanStats::wall_ns`](welle_congest::SpanStats) varies.
    pub telemetry: Option<TelemetryReport>,
    /// Why the engine stopped.
    pub outcome: RunOutcome,
}

impl ElectionReport {
    /// The headline correctness criterion: exactly one leader.
    pub fn is_success(&self) -> bool {
        self.leaders.len() == 1
    }

    /// The CSV column names matching [`ElectionReport::csv_row`]. The
    /// ten `*_rounds`/`*_msgs` columns carry the per-phase breakdown
    /// ([`ElectionReport::phase_rounds`] / `phase_messages`) and are
    /// zero when the run did not enable telemetry.
    pub fn csv_header() -> &'static str {
        "n,m,contenders,leaders,leader_id,messages,bits,decided_round,\
         engine_rounds,final_walk_len,epochs_used,gave_up,dropped,crashed,\
         virtual_time,walk_rounds,r1_rounds,r2_rounds,r3_rounds,wait_rounds,\
         walk_msgs,r1_msgs,r2_msgs,r3_msgs,wait_msgs,success"
    }

    /// This report as one CSV row (columns per
    /// [`ElectionReport::csv_header`]; `leaders` is the leader *count*,
    /// `leader_id` is empty unless the leader is unique).
    ///
    /// Every column is numeric or boolean today; any future free-form
    /// string column must be routed through [`crate::csv::escape`] like
    /// the scenario labels in [`Trial::csv_row`](crate::Trial::csv_row).
    pub fn csv_row(&self) -> String {
        use std::fmt::Write as _;
        let mut row = format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.n,
            self.m,
            self.contenders,
            self.leaders.len(),
            self.leader_id.map_or_else(String::new, |id| id.to_string()),
            self.messages,
            self.bits,
            self.decided_round,
            self.engine_rounds,
            self.final_walk_len,
            self.epochs_used,
            self.gave_up,
            self.dropped_messages,
            self.crashed,
            self.virtual_time,
        );
        for v in self.phase_rounds.iter().chain(self.phase_messages.iter()) {
            // Writing to a String cannot fail.
            let _ = write!(row, ",{v}");
        }
        let _ = write!(row, ",{}", self.is_success());
        row
    }
}

/// Builds the engine named by `plan` (see [`plan_for`]), installs the
/// pre-compiled fault plan when one is set (compiled once per scenario
/// by the callers — see [`welle_congest::FaultPlan::compile_for`] —
/// not once per trial), drives the election to completion, and
/// summarizes. The one
/// code path from validated parameters to [`ElectionReport`];
/// everything above — builder and campaign — funnels through here.
pub(crate) fn run_resolved(
    graph: &Arc<Graph>,
    params: Arc<Params>,
    plan: ExecPlan,
    seed: u64,
    faults: Option<&CompiledFaultPlan>,
    telem: Option<TelemetryConfig>,
    obs: &mut dyn TransmitObserver,
) -> ElectionReport {
    let engine_cfg = EngineConfig {
        seed,
        bandwidth_bits: params.bandwidth_bits,
    };
    let cfg = params.cfg;
    match plan {
        ExecPlan::Serial => {
            let mut engine = Engine::from_fn(Arc::clone(graph), engine_cfg, |_| {
                ElectionNode::new(Arc::clone(&params))
            });
            if let Some(plan) = faults {
                engine.set_compiled_faults(plan);
            }
            if let Some(tcfg) = telem {
                engine.set_telemetry(tcfg);
            }
            let outcome = drive(&mut engine, &params, &cfg, obs);
            let recorded = engine.take_telemetry();
            summarize(&engine, outcome, recorded)
        }
        ExecPlan::Threaded(k) => {
            let mut engine = ThreadedEngine::from_fn(Arc::clone(graph), engine_cfg, k, |_| {
                ElectionNode::new(Arc::clone(&params))
            });
            if let Some(plan) = faults {
                engine.set_compiled_faults(plan);
            }
            if let Some(tcfg) = telem {
                engine.set_telemetry(tcfg);
            }
            let outcome = drive(&mut engine, &params, &cfg, obs);
            let recorded = engine.take_telemetry();
            summarize(&engine, outcome, recorded)
        }
        ExecPlan::Async(model) => {
            let mut engine =
                AsyncEngine::from_fn(Arc::clone(graph), engine_cfg, model, |_| {
                    ElectionNode::new(Arc::clone(&params))
                });
            if let Some(plan) = faults {
                engine.set_compiled_faults(plan);
            }
            if let Some(tcfg) = telem {
                engine.set_telemetry(tcfg);
            }
            let outcome = drive(&mut engine, &params, &cfg, obs);
            let recorded = engine.take_telemetry();
            summarize(&engine, outcome, recorded)
        }
    }
}

/// A serial engine recycled across trials: the campaign scheduler keeps
/// one of these per worker, so a thousand-trial sweep builds (at most)
/// one engine per worker thread and every later trial reuses its arenas
/// via [`Engine::reset_with`] instead of re-allocating. Reuse also
/// bounds memory in mixed-scale campaigns: a reset sheds any message
/// arena left far oversized for the next trial's graph (see the
/// high-water shrink rule on [`Engine::reset_with`]).
pub(crate) struct PooledEngine {
    engine: Option<Engine<ElectionNode>>,
    /// Engines actually constructed (0 or 1) — summed across workers
    /// into [`CampaignReport::engines_built`](crate::CampaignReport::engines_built).
    pub(crate) built: usize,
}

impl PooledEngine {
    pub(crate) fn new() -> Self {
        PooledEngine {
            engine: None,
            built: 0,
        }
    }

    /// Runs one serial trial on the pooled engine, building it on first
    /// use and resetting it afterwards. Bit-identical to
    /// [`run_resolved`] with `threads = None` — both construct the same
    /// initial engine state.
    pub(crate) fn run(
        &mut self,
        graph: &Arc<Graph>,
        params: &Arc<Params>,
        seed: u64,
        faults: Option<&CompiledFaultPlan>,
        telem: Option<TelemetryConfig>,
        obs: &mut dyn TransmitObserver,
    ) -> ElectionReport {
        let engine_cfg = EngineConfig {
            seed,
            bandwidth_bits: params.bandwidth_bits,
        };
        let make = |_| ElectionNode::new(Arc::clone(params));
        let engine = match self.engine.as_mut() {
            Some(e) => {
                e.reset_with(Arc::clone(graph), engine_cfg, make);
                e
            }
            None => {
                self.built += 1;
                self.engine
                    .insert(Engine::from_fn(Arc::clone(graph), engine_cfg, make))
            }
        };
        if let Some(plan) = faults {
            engine.set_compiled_faults(plan);
        }
        if let Some(tcfg) = telem {
            engine.set_telemetry(tcfg);
        }
        let cfg = params.cfg;
        let outcome = drive(engine, params, &cfg, obs);
        // Taken unconditionally: a reused engine must never leak one
        // trial's telemetry into the next.
        let recorded = engine.take_telemetry();
        summarize(engine, outcome, recorded)
    }

    /// See [`Engine::arena_capacity`].
    #[cfg(test)]
    pub(crate) fn arena_capacity(&self) -> usize {
        self.engine.as_ref().map_or(0, Engine::arena_capacity)
    }
}

/// The sync-mode-aware run loop, written once against
/// [`welle_congest::Executor`] so both engines serve it.
fn drive<E: Executor<ElectionNode>>(
    engine: &mut E,
    params: &Params,
    cfg: &ElectionConfig,
    obs: &mut dyn TransmitObserver,
) -> RunOutcome {
    match cfg.sync {
        SyncMode::FixedT => engine.run_observed(params.round_limit(), obs),
        SyncMode::Adaptive => {
            let mut signals = 0u64;
            loop {
                let out = engine.run_observed(u64::MAX / 4, obs);
                match out {
                    RunOutcome::Quiescent { .. } if signals < params.total_segments() => {
                        engine.signal(SIGNAL_ADVANCE);
                        signals += 1;
                    }
                    other => break other,
                }
            }
        }
    }
}

fn summarize<E: Executor<ElectionNode>>(
    engine: &E,
    outcome: RunOutcome,
    telemetry: Option<TelemetryReport>,
) -> ElectionReport {
    let graph = engine.graph();
    let mut contenders = 0usize;
    let mut leaders = Vec::new();
    let mut leader_id = None;
    let mut decided_round = 0u64;
    let mut final_walk_len = 0u32;
    let mut epochs_used = 0u32;
    let mut gave_up = 0usize;
    let mut dropped_tokens = 0u64;
    let mut broken_routes = 0u64;

    for (i, node) in engine.nodes().iter().enumerate() {
        let stats = node.stats();
        dropped_tokens += stats.dropped_tokens;
        broken_routes += stats.broken_routes;
        let Some(c) = node.contender_state() else {
            continue;
        };
        contenders += 1;
        if node.decision() == Some(Decision::Leader) {
            leaders.push(i);
            leader_id = Some(node.id());
        }
        if let Some(r) = node.decided_round() {
            decided_round = decided_round.max(r);
        }
        if let Some(e) = c.stopped_epoch {
            epochs_used = epochs_used.max(e + 1);
            final_walk_len = final_walk_len.max(
                c.history
                    .iter()
                    .find(|h| h.epoch == e)
                    .map(|h| h.walk_len)
                    .unwrap_or(0),
            );
        }
        if c.gave_up {
            gave_up += 1;
        }
    }
    if leaders.len() != 1 {
        leader_id = None;
    }

    // Bucket the telemetry phase table into the report's fixed arrays.
    // ElectionNode publishes a phase from round 0 on, so every sample
    // lands in a `Some(tag)` bucket with `tag < 5`.
    let mut phase_rounds = [0u64; 5];
    let mut phase_messages = [0u64; 5];
    if let Some(t) = &telemetry {
        for &(tag, totals) in &t.phases {
            if let Some(p) = tag.and_then(Phase::from_tag) {
                phase_rounds[p.tag() as usize] += totals.rounds;
                phase_messages[p.tag() as usize] += totals.messages;
            }
        }
    }

    ElectionReport {
        n: graph.n(),
        m: graph.m(),
        contenders,
        leaders,
        leader_id,
        messages: engine.metrics().messages,
        bits: engine.metrics().bits,
        decided_round,
        engine_rounds: engine.round(),
        final_walk_len,
        epochs_used,
        gave_up,
        dropped_messages: engine.metrics().dropped_messages,
        crashed: engine.metrics().crashed_nodes,
        dropped_tokens,
        broken_routes,
        virtual_time: engine.virtual_time(),
        peak_arena_slots: engine.peak_arena_slots(),
        phase_rounds,
        phase_messages,
        telemetry,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MsgSizeMode;
    use crate::election::Election;
    use welle_graph::gen;

    fn expander(n: usize, seed: u64) -> Arc<Graph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Arc::new(gen::random_regular(n, 4, &mut rng).unwrap())
    }

    fn elect(g: &Arc<Graph>, cfg: &ElectionConfig, seed: u64) -> ElectionReport {
        Election::on(g).config(*cfg).seed(seed).run().unwrap()
    }

    #[test]
    fn elects_unique_leader_on_expander_adaptive() {
        let g = expander(128, 1);
        let cfg = ElectionConfig::tuned_for_simulation(128);
        for seed in [2u64, 3, 4] {
            let report = elect(&g, &cfg, seed);
            assert!(
                report.is_success(),
                "seed {seed}: leaders = {:?}, contenders = {}, gave_up = {}",
                report.leaders,
                report.contenders,
                report.gave_up
            );
            assert_eq!(report.broken_routes, 0, "routing must never break");
            assert!(report.contenders > 0);
        }
    }

    #[test]
    fn elects_unique_leader_fixed_t() {
        let g = expander(128, 5);
        let cfg = ElectionConfig {
            sync: SyncMode::FixedT,
            ..ElectionConfig::tuned_for_simulation(128)
        };
        let report = elect(&g, &cfg, 11);
        assert!(
            report.is_success(),
            "leaders = {:?}, gave_up = {}",
            report.leaders,
            report.gave_up
        );
        assert!(report.decided_round > 0);
        assert!(report.engine_rounds >= report.decided_round);
    }

    #[test]
    fn clique_elects_quickly() {
        let g = Arc::new(gen::clique(128).unwrap());
        let cfg = ElectionConfig::tuned_for_simulation(128);
        let report = elect(&g, &cfg, 3);
        assert!(report.is_success(), "leaders = {:?}", report.leaders);
        // Cliques mix in O(1): the final guess must stay small.
        assert!(
            report.final_walk_len <= 16,
            "final walk len {} too large for a clique",
            report.final_walk_len
        );
    }

    #[test]
    fn large_messages_reduce_message_count() {
        let g = expander(128, 9);
        let base = ElectionConfig::tuned_for_simulation(128);
        let congest = elect(&g, &base, 17);
        let large = elect(
            &g,
            &ElectionConfig {
                msg_size: MsgSizeMode::Large,
                ..base
            },
            17,
        );
        assert!(congest.is_success() && large.is_success());
        assert!(
            large.messages < congest.messages,
            "large-message mode should save messages: {} vs {}",
            large.messages,
            congest.messages
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = expander(128, 2);
        let cfg = ElectionConfig::tuned_for_simulation(128);
        let a = elect(&g, &cfg, 42);
        let b = elect(&g, &cfg, 42);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.leaders, b.leaders);
        assert_eq!(a.decided_round, b.decided_round);
    }

    #[test]
    fn pooled_engine_matches_run_resolved_and_keeps_arenas() {
        let g = expander(96, 3);
        let cfg = ElectionConfig::tuned_for_simulation(96);
        let params = Arc::new(Params::try_derive(96, cfg).unwrap());
        let mut pool = PooledEngine::new();
        let mut noop = welle_congest::NoopObserver;
        let mut grown = 0usize;
        for seed in [1u64, 2, 3, 1] {
            let pooled = pool.run(&g, &params, seed, None, None, &mut noop);
            let fresh = run_resolved(
                &g,
                Arc::clone(&params),
                ExecPlan::Serial,
                seed,
                None,
                None,
                &mut noop,
            );
            assert_eq!(pooled.leaders, fresh.leaders, "seed {seed}");
            assert_eq!(pooled.messages, fresh.messages, "seed {seed}");
            assert_eq!(pooled.bits, fresh.bits, "seed {seed}");
            assert_eq!(pooled.engine_rounds, fresh.engine_rounds, "seed {seed}");
            assert_eq!(pooled.outcome, fresh.outcome, "seed {seed}");
            if seed == 1 {
                grown = pool.arena_capacity();
            }
        }
        assert_eq!(pool.built, 1, "four trials, one engine");
        assert!(grown > 0);
        // Same-scale reuse keeps the arenas warm: reset only sheds a
        // message arena whose capacity exceeds the shrink ratio over the
        // graph's needs (impossible here — the trials share one graph
        // and every arena stays under the shrink floor), so the repeat
        // of seed 1 at the end re-allocates nothing.
        assert!(
            pool.arena_capacity() >= grown,
            "same-scale reuse must keep the first trial's arena capacity"
        );
    }

    #[test]
    fn plan_for_resolves_and_validates() {
        let g = expander(64, 1);
        assert_eq!(plan_for(Exec::Auto, &g, 1).unwrap(), ExecPlan::Serial);
        assert_eq!(
            plan_for(Exec::Threaded(3), &g, 1).unwrap(),
            ExecPlan::Threaded(3)
        );
        assert_eq!(plan_for(Exec::Threaded(0), &g, 8), Err(ConfigError::ZeroThreads));
        assert!(matches!(
            plan_for(Exec::Async(LatencyModel::zero()), &g, 1),
            Ok(ExecPlan::Async(_))
        ));
        assert!(matches!(
            plan_for(Exec::Async(LatencyModel::uniform(3.0, 1.0)), &g, 1),
            Err(ConfigError::Latency(_))
        ));
    }

    #[test]
    fn csv_row_matches_header_width() {
        let g = expander(64, 8);
        let cfg = ElectionConfig::tuned_for_simulation(64);
        let report = elect(&g, &cfg, 1);
        let header_cols = ElectionReport::csv_header().split(',').count();
        let row = report.csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.ends_with("true") || row.ends_with("false"));
        if report.is_success() {
            let id_col = row.split(',').nth(4).unwrap();
            assert_eq!(id_col, report.leader_id.unwrap().to_string());
        }
    }
}
