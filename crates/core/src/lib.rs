//! The randomized implicit leader-election algorithm of *Leader Election
//! in Well-Connected Graphs* (Gilbert, Robinson, Sourav; PODC 2018),
//! running on the `welle-congest` simulator.
//!
//! The algorithm elects a unique leader w.h.p. in `O(t_mix·log² n)` rounds
//! using `O(√n·log^{7/2} n·t_mix)` messages (Theorem 13), **without**
//! knowing the mixing time: contenders guess-and-double their walk length
//! until the Intersection and Distinctness properties certify that their
//! proxy sets intersect a majority of the other contenders'.
//!
//! Everything here runs in the CONGEST model as enforced by
//! `welle-congest`: anonymous port-numbered nodes, one message per
//! directed edge per round (excess serializes as congestion), and a
//! per-message bit budget (`EngineConfig::bandwidth_bits`, derived in
//! [`Params`] as `O(log n)` bits — ids are `4⌈log₂ n⌉` bits).
//!
//! # Quick start
//!
//! One election = one [`Election`] builder. Pick an executor with
//! [`Exec`] (or let [`Exec::Auto`] choose from `n`, density, and the
//! host's cores — both executors are bit-identical), attach a
//! [`TransmitObserver`](welle_congest::TransmitObserver) if you want the
//! raw traffic, and `run()`:
//!
//! ```no_run
//! use std::sync::Arc;
//! use welle_core::{Election, ElectionConfig, Exec, SyncMode};
//! use welle_graph::gen;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = Arc::new(gen::random_regular(256, 4, &mut rng).unwrap());
//! let report = Election::on(&g)
//!     .config(ElectionConfig { sync: SyncMode::Adaptive, ..Default::default() })
//!     .seed(7)
//!     .executor(Exec::Auto)
//!     .run()
//!     .expect("valid configuration");
//! assert!(report.is_success());
//! println!("leader id {:?} after {} messages", report.leader_id, report.messages);
//! ```
//!
//! Batch runs — many seeds, many graph families — are a [`Campaign`]
//! over a prototype builder; it returns per-trial
//! [`ElectionReport`]s plus one [`CampaignSummary`] per scenario:
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use welle_core::{Campaign, Election, ElectionConfig};
//! # use welle_graph::gen;
//! let g = Arc::new(gen::hypercube(7).unwrap());
//! let cfg = ElectionConfig::tuned_for_simulation(g.n());
//! let outcome = Campaign::new(Election::on(&g).config(cfg))
//!     .label("hypercube")
//!     .seeds(0..20)
//!     .run()
//!     .expect("valid configuration");
//! println!("{}", outcome.summary()); // success rate, msg/round min/median/max
//! ```
//!
//! Invalid configurations (non-finite constants, zero walk caps,
//! `n < 2`) surface as a typed [`ConfigError`] from the builder before
//! anything is simulated.
//!
//! Elections can also run under adversarial network conditions — i.i.d.
//! message drops, crash-stop schedules, delivery delay, edge cuts — by
//! attaching a [`FaultPlan`] to the builder
//! (`Election::on(&g).faults(FaultPlan::new(1).drop_rate(0.05))…`) or
//! to individual [`Campaign`] scenarios; fault sweeps are campaigns
//! whose scenarios differ only in their plans. Faulted runs stay fully
//! deterministic and bit-identical across executors, and failures stay
//! visible ([`ElectionReport::dropped_messages`],
//! [`ElectionReport::crashed`], zero leaders) rather than silently
//! electing the wrong node.
//!
//! Besides the core algorithm the crate ships the explicit-election stage
//! ([`broadcast`], Corollary 14) and the paper's comparison baselines
//! ([`baselines`]): flood-max and the known-`t_mix` single-phase variant
//! of Kutten et al. \[25\].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod config;
mod election;
mod error;
mod msg;
mod protocol;
mod runner;
mod scheduler;
mod sink;
mod state;

pub mod baselines;
pub mod broadcast;
pub mod csv;
pub mod export;

pub use campaign::{
    default_trial_threads, set_default_trial_threads, Campaign, CampaignReport, CampaignSummary,
    Stats, Trial,
};
pub use config::{ElectionConfig, MsgSizeMode, Params, Phase, SyncMode};
pub use election::{Election, Exec};
pub use error::ConfigError;
pub use msg::{ElectionMsg, FwdItem, MsgView, RevItem};
pub use protocol::{ElectionNode, SIGNAL_ADVANCE};
pub use runner::ElectionReport;
pub use welle_congest::{
    FaultError, FaultPlan, LatencyDist, LatencyError, LatencyModel, PhaseTotals, Retention,
    RoundSample, SpanStage, SpanStats, TelemetryConfig, TelemetryReport,
};
pub use state::{ContenderState, Decision, EpochRecord, NodeStats, ProxyRecord};
