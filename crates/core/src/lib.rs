//! The randomized implicit leader-election algorithm of *Leader Election
//! in Well-Connected Graphs* (Gilbert, Robinson, Sourav; PODC 2018),
//! running on the `welle-congest` simulator.
//!
//! The algorithm elects a unique leader w.h.p. in `O(t_mix·log² n)` rounds
//! using `O(√n·log^{7/2} n·t_mix)` messages (Theorem 13), **without**
//! knowing the mixing time: contenders guess-and-double their walk length
//! until the Intersection and Distinctness properties certify that their
//! proxy sets intersect a majority of the other contenders'.
//!
//! Everything here runs in the CONGEST model as enforced by
//! `welle-congest`: anonymous port-numbered nodes, one message per
//! directed edge per round (excess serializes as congestion), and a
//! per-message bit budget (`EngineConfig::bandwidth_bits`, derived in
//! [`Params`] as `O(log n)` bits — ids are `4⌈log₂ n⌉` bits). Elections
//! run on either executor via [`run_election`] (serial) or
//! [`run_election_threaded`] (sharded) with bit-identical results.
//!
//! # Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use welle_core::{run_election, ElectionConfig, SyncMode};
//! use welle_graph::gen;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = Arc::new(gen::random_regular(256, 4, &mut rng).unwrap());
//! let cfg = ElectionConfig { sync: SyncMode::Adaptive, ..Default::default() };
//! let report = run_election(&g, &cfg, 7);
//! assert!(report.is_success());
//! println!("leader id {:?} after {} messages", report.leader_id, report.messages);
//! ```
//!
//! Besides the core algorithm the crate ships the explicit-election stage
//! ([`broadcast`], Corollary 14) and the paper's comparison baselines
//! ([`baselines`]): flood-max and the known-`t_mix` single-phase variant
//! of Kutten et al. \[25\].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod msg;
mod protocol;
mod runner;
mod state;

pub mod baselines;
pub mod broadcast;

pub use config::{ElectionConfig, MsgSizeMode, Params, Phase, SyncMode};
pub use msg::{ElectionMsg, FwdItem, RevItem};
pub use protocol::{ElectionNode, SIGNAL_ADVANCE};
pub use runner::{
    run_election, run_election_observed, run_election_threaded,
    run_election_threaded_observed, ElectionReport,
};
pub use state::{ContenderState, Decision, EpochRecord, NodeStats, ProxyRecord};
