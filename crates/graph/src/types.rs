//! Small index newtypes shared across the workspace.

use std::fmt;

/// Index of a node in a [`crate::Graph`] (`0..n`).
///
/// Node indices are a *simulation* handle: in the paper's model nodes are
/// anonymous and protocols must never consult them — they address neighbours
/// only through [`Port`]s. The simulator uses `NodeId` purely for
/// bookkeeping (queues, metrics, outcome reporting).
///
/// ```
/// use welle_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        // welle-lint: allow(no-lib-unwrap) — documented `# Panics` contract: this is the sanctioned checked constructor
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }

    /// Returns the index as `usize`, suitable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A local port of a node: `0..deg(u)`.
///
/// Ports are the only addressing mechanism available to protocols (the KT0
/// "clean network" model of the paper): `u`'s port `p` leads to some
/// neighbour, and the reverse direction generally uses a *different* port
/// number on the other side.
///
/// ```
/// use welle_graph::Port;
/// let p = Port::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(format!("{p}"), "p0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Port(u32);

impl Port {
    /// Creates a port from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        // welle-lint: allow(no-lib-unwrap) — documented `# Panics` contract: this is the sanctioned checked constructor
        Port(u32::try_from(index).expect("port index fits in u32"))
    }

    /// Returns the index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for Port {
    fn from(v: u32) -> Self {
        Port(v)
    }
}

/// Index of an undirected edge (`0..m`).
///
/// Both directions of an edge share the same `EdgeId`; this is what lets the
/// lower-bound experiments classify a transmitted message as intra-clique or
/// inter-clique (§4.1) and detect bridge crossings (§5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        // welle-lint: allow(no-lib-unwrap) — documented `# Panics` contract: this is the sanctioned checked constructor
        EdgeId(u32::try_from(index).expect("edge index fits in u32"))
    }

    /// Returns the index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 42, 1 << 20] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(NodeId::new(i).raw() as usize, i);
        }
    }

    #[test]
    fn port_round_trip() {
        for i in [0usize, 1, 7, 65_535] {
            assert_eq!(Port::new(i).index(), i);
        }
    }

    #[test]
    fn edge_round_trip() {
        assert_eq!(EdgeId::new(9).index(), 9);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Port::new(0) < Port::new(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(5).to_string(), "v5");
        assert_eq!(Port::new(2).to_string(), "p2");
        assert_eq!(EdgeId::new(8).to_string(), "e8");
    }

    #[test]
    #[should_panic(expected = "node index fits in u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
