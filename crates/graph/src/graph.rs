//! The CSR port-numbered undirected graph.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::types::{EdgeId, NodeId, Port};

/// An immutable, compressed-sparse-row undirected graph with port numbering.
///
/// This is the network of the paper's model (§1): `n` anonymous nodes, `m`
/// undirected edges, each node owning ports `0..deg(u)`. Port mappings are
/// **asymmetric**: if `u` reaches `v` via port `i`, `v` generally reaches
/// `u` via a different port `j`; [`Graph::reverse_port`] resolves `j` so the
/// simulator can deliver replies without protocols ever learning ids.
///
/// ```
/// use welle_graph::{gen, NodeId, Port};
/// let g = gen::ring(5).unwrap();
/// let u = NodeId::new(0);
/// let p = Port::new(0);
/// let v = g.neighbor(u, p);
/// let q = g.reverse_port(u, p);
/// assert_eq!(g.neighbor(v, q), u); // round-trip through the edge
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR offsets: `offsets[u]..offsets[u + 1]` indexes `u`'s adjacency.
    /// Stored as `u32` — construction asserts `2m ≤ u32::MAX`, so the
    /// offset table is half the size of a `usize` layout and an
    /// `n = 10⁷` sparse graph's CSR fits comfortably in memory.
    offsets: Vec<u32>,
    /// Flattened neighbour lists; `neighbors[offsets[u] + p]` is the node
    /// behind `u`'s port `p`.
    neighbors: Vec<NodeId>,
    /// `rev_ports[offsets[u] + p]` is the port on the *neighbour's* side of
    /// the same edge.
    rev_ports: Vec<Port>,
    /// Undirected edge id of the edge behind each slot.
    edge_ids: Vec<EdgeId>,
    /// Owner of each slot: `srcs[offsets[u] + p] == u`. The only derived
    /// column the struct-of-arrays layout keeps: it resolves a
    /// [`Graph::directed_index`] back to its source node in `O(1)`, and
    /// the source port falls out as `dir - offsets[src]`. Together with
    /// the three columns above this replaces the former 20-byte packed
    /// per-directed-edge record cache at 4 bytes per directed edge, and
    /// it survives port shuffles unchanged (shuffles permute slots only
    /// within each node's own range).
    srcs: Vec<NodeId>,
    /// Endpoints of each undirected edge (canonical order: smaller first).
    endpoints: Vec<(NodeId, NodeId)>,
}

/// Everything a simulator needs about one directed edge, assembled from
/// the graph's struct-of-arrays columns by [`Graph::directed_info`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirInfo {
    /// Source node (the sender).
    pub src: NodeId,
    /// Port on the source side.
    pub src_port: Port,
    /// Target node (the receiver).
    pub dst: NodeId,
    /// Arrival port on the target side.
    pub dst_port: Port,
    /// Undirected edge id behind this directed edge.
    pub edge: EdgeId,
}

impl Graph {
    /// Builds from edges that were already validated by
    /// [`crate::GraphBuilder`] (in-range, no loops, no duplicates).
    pub(crate) fn from_validated_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        let m = edges.len();
        assert!(
            n <= u32::MAX as usize,
            "graph has {n} nodes; node indices must fit the u32 CSR index space"
        );
        assert!(
            m.checked_mul(2).is_some_and(|t| t <= u32::MAX as usize),
            "graph has {m} edges; the directed-edge count 2m must fit the u32 CSR index space"
        );
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for &d in &degree {
            acc += d; // cannot overflow: 2m ≤ u32::MAX asserted above
            offsets.push(acc);
        }
        let total = acc as usize;
        let mut neighbors = vec![NodeId::default(); total];
        let mut rev_ports = vec![Port::default(); total];
        let mut edge_ids = vec![EdgeId::default(); total];
        let mut srcs = vec![NodeId::default(); total];
        let mut endpoints = Vec::with_capacity(m);
        let mut cursor: Vec<u32> = offsets[..n].to_vec();

        for (idx, &(u, v)) in edges.iter().enumerate() {
            let eid = EdgeId::new(idx);
            let su = cursor[u as usize] as usize;
            let sv = cursor[v as usize] as usize;
            cursor[u as usize] += 1;
            cursor[v as usize] += 1;
            neighbors[su] = NodeId::from(v);
            neighbors[sv] = NodeId::from(u);
            edge_ids[su] = eid;
            edge_ids[sv] = eid;
            rev_ports[su] = Port::new(sv - offsets[v as usize] as usize);
            rev_ports[sv] = Port::new(su - offsets[u as usize] as usize);
            srcs[su] = NodeId::from(u);
            srcs[sv] = NodeId::from(v);
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            endpoints.push((NodeId::from(a), NodeId::from(b)));
        }

        Graph {
            offsets,
            neighbors,
            rev_ports,
            edge_ids,
            srcs,
            endpoints,
        }
    }

    /// CSR offset of node `u` as a slice index.
    #[inline]
    fn off(&self, u: usize) -> usize {
        self.offsets[u] as usize
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of node `u` (also the number of its ports).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.off(u.index() + 1) - self.off(u.index())
    }

    /// Total volume `Σ_v deg(v) = 2m` (§2's `Vol(V)`).
    #[inline]
    pub fn volume(&self) -> usize {
        2 * self.m()
    }

    /// The node behind `u`'s port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= deg(u)`.
    #[inline]
    pub fn neighbor(&self, u: NodeId, p: Port) -> NodeId {
        let slot = self.slot(u, p);
        self.neighbors[slot]
    }

    /// The port on the far side of the edge behind `u`'s port `p`
    /// (i.e. the `j` such that `neighbor(v, j) == u`).
    ///
    /// # Panics
    ///
    /// Panics if `p >= deg(u)`.
    #[inline]
    pub fn reverse_port(&self, u: NodeId, p: Port) -> Port {
        let slot = self.slot(u, p);
        self.rev_ports[slot]
    }

    /// Undirected edge id of the edge behind `u`'s port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= deg(u)`.
    #[inline]
    pub fn edge_id(&self, u: NodeId, p: Port) -> EdgeId {
        let slot = self.slot(u, p);
        self.edge_ids[slot]
    }

    /// Endpoints of an undirected edge, smaller node first.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Slice of `u`'s neighbours in port order.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.off(u.index())..self.off(u.index() + 1)]
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> NeighborIter {
        NeighborIter {
            next: 0,
            end: self.n(),
        }
    }

    /// Iterator over `u`'s ports `0..deg(u)`.
    pub fn ports(&self, u: NodeId) -> PortIter {
        PortIter {
            next: 0,
            end: self.degree(u),
        }
    }

    /// Iterator over all undirected edges as `(EdgeId, u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), u, v))
    }

    /// Returns `true` if the undirected edge `(u, v)` exists.
    ///
    /// Linear in `min(deg(u), deg(v))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).contains(&b)
    }

    /// Degree statistics over all nodes.
    pub fn degree_stats(&self) -> DegreeStats {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        for u in self.nodes() {
            let d = self.degree(u);
            min = min.min(d);
            max = max.max(d);
            sum += d;
        }
        DegreeStats {
            min,
            max,
            mean: sum as f64 / self.n() as f64,
        }
    }

    /// Returns `true` if every node has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        self.nodes().all(|u| self.degree(u) == d)
    }

    /// Dense index of the *directed* edge `(u, port p)` in `0..2m`.
    ///
    /// Each undirected edge contributes two directed indices (one per
    /// direction); simulators use this to key per-direction message queues.
    ///
    /// # Panics
    ///
    /// Panics if `p >= deg(u)`.
    #[inline]
    pub fn directed_index(&self, u: NodeId, p: Port) -> usize {
        self.slot(u, p)
    }

    /// Number of directed edges (`2m`), the exclusive upper bound of
    /// [`Graph::directed_index`].
    #[inline]
    pub fn directed_edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Source `(node, port)` of the directed edge with index `dir` —
    /// the inverse of [`Graph::directed_index`], in `O(1)`: the owner
    /// comes from the `srcs` column and the port from the slot's offset
    /// within the owner's contiguous range.
    ///
    /// # Panics
    ///
    /// Panics if `dir >= directed_edge_count()`.
    #[inline]
    pub fn directed_source(&self, dir: usize) -> (NodeId, Port) {
        let src = self.srcs[dir];
        (src, Port::new(dir - self.off(src.index())))
    }

    /// Target `(node, arrival port)` of the directed edge with index
    /// `dir`: the node that receives a message sent along `dir`, and the
    /// port on which it arrives.
    ///
    /// # Panics
    ///
    /// Panics if `dir >= directed_edge_count()`.
    #[inline]
    pub fn directed_target(&self, dir: usize) -> (NodeId, Port) {
        (self.neighbors[dir], self.rev_ports[dir])
    }

    /// Undirected edge id behind the directed edge with index `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `dir >= directed_edge_count()`.
    #[inline]
    pub fn directed_edge_id(&self, dir: usize) -> EdgeId {
        self.edge_ids[dir]
    }

    /// The full record of the directed edge with index `dir`: source
    /// and target `(node, port)` plus the undirected edge id. This is
    /// the simulator's per-message delivery primitive, assembled on the
    /// fly from the struct-of-arrays columns — each column is an
    /// independent 4-byte array, so hot paths that only need some of
    /// the fields (say the target) pull only those columns into cache.
    ///
    /// # Panics
    ///
    /// Panics if `dir >= directed_edge_count()`.
    #[inline]
    pub fn directed_info(&self, dir: usize) -> DirInfo {
        let src = self.srcs[dir];
        DirInfo {
            src,
            src_port: Port::new(dir - self.off(src.index())),
            dst: self.neighbors[dir],
            dst_port: self.rev_ports[dir],
            edge: self.edge_ids[dir],
        }
    }

    /// First directed index of node `u` (its port-0 slot); `u`'s ports
    /// occupy `directed_base(u)..directed_base(u) + degree(u)`
    /// contiguously, so `directed_index(u, p) == directed_base(u) + p`.
    /// Hot paths that send through many ports of one node use this to
    /// compute the directed index once per node instead of once per send.
    #[inline]
    pub fn directed_base(&self, u: NodeId) -> usize {
        self.off(u.index())
    }

    /// Permutes every node's port numbering uniformly at random.
    ///
    /// The lower-bound arguments (Lemma 18) require inter-clique ports to be
    /// indistinguishable from intra-clique ones; generators call this after
    /// structured construction so port numbers carry no information.
    pub fn shuffle_ports<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.n();
        // Build the permuted adjacency, then recompute reverse ports.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(n);
        for u in 0..n {
            let deg = self.off(u + 1) - self.off(u);
            let mut perm: Vec<usize> = (0..deg).collect();
            perm.shuffle(rng);
            perms.push(perm);
        }
        let old_neighbors = self.neighbors.clone();
        let old_edge_ids = self.edge_ids.clone();
        // new_slot_of[old slot] -> new slot (global)
        let mut new_slot_of = vec![0usize; self.neighbors.len()];
        for (u, perm) in perms.iter().enumerate() {
            let base = self.off(u);
            let deg = self.off(u + 1) - base;
            for old_p in 0..deg {
                // perm[old_p] = new port for the entry previously at old_p
                new_slot_of[base + old_p] = base + perm[old_p];
            }
        }
        for (old_slot, &new_slot) in new_slot_of.iter().enumerate() {
            self.neighbors[new_slot] = old_neighbors[old_slot];
            self.edge_ids[new_slot] = old_edge_ids[old_slot];
        }
        // Recompute reverse ports from scratch via per-edge slot tracking.
        let mut edge_slots: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); self.m()];
        for u in 0..n {
            let base = self.off(u);
            let deg = self.off(u + 1) - base;
            for p in 0..deg {
                let slot = base + p;
                let e = self.edge_ids[slot].index();
                if edge_slots[e].0 == usize::MAX {
                    edge_slots[e].0 = slot;
                } else {
                    edge_slots[e].1 = slot;
                }
            }
        }
        for &(s1, s2) in &edge_slots {
            debug_assert!(s2 != usize::MAX, "every edge has two slots");
            // Shuffling permutes slots only within each node's own range,
            // so the `srcs` column still names each slot's owner and
            // needs no rebuild.
            let u1 = self.srcs[s1].index();
            let u2 = self.srcs[s2].index();
            self.rev_ports[s1] = Port::new(s2 - self.off(u2));
            self.rev_ports[s2] = Port::new(s1 - self.off(u1));
        }
    }

    #[inline]
    fn slot(&self, u: NodeId, p: Port) -> usize {
        let d = self.degree(u);
        assert!(
            p.index() < d,
            "port {p} out of range for node {u} with degree {d}"
        );
        self.off(u.index()) + p.index()
    }
}

/// Min/max/mean node degree, from [`Graph::degree_stats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m / n`).
    pub mean: f64,
}

/// Iterator over node ids, returned by [`Graph::nodes`].
#[derive(Clone, Debug)]
pub struct NeighborIter {
    next: usize,
    end: usize,
}

impl Iterator for NeighborIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.end {
            let id = NodeId::new(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter {}

/// Iterator over a node's ports, returned by [`Graph::ports`].
#[derive(Clone, Debug)]
pub struct PortIter {
    next: usize,
    end: usize,
}

impl Iterator for PortIter {
    type Item = Port;

    fn next(&mut self) -> Option<Port> {
        if self.next < self.end {
            let p = Port::new(self.next);
            self.next += 1;
            Some(p)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PortIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Graph {
        from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn csr_basic_shape() {
        let g = square();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.volume(), 8);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
        assert!(g.is_regular(2));
        assert!(!g.is_regular(3));
    }

    #[test]
    fn reverse_ports_round_trip() {
        let g = square();
        for u in g.nodes() {
            for p in g.ports(u) {
                let v = g.neighbor(u, p);
                let q = g.reverse_port(u, p);
                assert_eq!(g.neighbor(v, q), u, "rev port leads back");
                assert_eq!(g.reverse_port(v, q), p, "rev of rev is identity");
                assert_eq!(g.edge_id(u, p), g.edge_id(v, q), "same edge id both sides");
            }
        }
    }

    #[test]
    fn endpoints_match_slots() {
        let g = square();
        for (e, u, v) in g.edges() {
            assert!(u <= v);
            assert!(g.has_edge(u, v));
            assert_eq!(g.endpoints(e), (u, v));
        }
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn shuffle_ports_preserves_structure() {
        let mut g = from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        )
        .unwrap();
        let degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            g.shuffle_ports(&mut rng);
            let new_degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
            assert_eq!(degrees, new_degrees);
            // Adjacency as a set is unchanged; reverse ports still valid.
            for u in g.nodes() {
                for p in g.ports(u) {
                    let v = g.neighbor(u, p);
                    let q = g.reverse_port(u, p);
                    assert_eq!(g.neighbor(v, q), u);
                    assert_eq!(g.edge_id(u, p), g.edge_id(v, q));
                }
            }
        }
    }

    #[test]
    fn shuffle_actually_permutes_eventually() {
        // With 8 ports on node 0, at least one shuffle changes the order.
        let mut g = from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (0, 7),
                (0, 8),
            ],
        )
        .unwrap();
        let before: Vec<NodeId> = g.neighbors(NodeId::new(0)).to_vec();
        let mut rng = StdRng::seed_from_u64(1);
        let mut changed = false;
        for _ in 0..10 {
            g.shuffle_ports(&mut rng);
            if g.neighbors(NodeId::new(0)) != before.as_slice() {
                changed = true;
                break;
            }
        }
        assert!(changed, "shuffling should change port order w.h.p.");
    }

    #[test]
    fn degree_stats() {
        let g = from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let s = g.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "port")]
    fn bad_port_panics() {
        let g = square();
        let _ = g.neighbor(NodeId::new(0), Port::new(2));
    }

    #[test]
    fn directed_accessors_invert_directed_index() {
        let mut g = from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3 {
            for u in g.nodes() {
                for p in g.ports(u) {
                    let dir = g.directed_index(u, p);
                    assert_eq!(dir, g.directed_base(u) + p.index());
                    assert_eq!(g.directed_source(dir), (u, p));
                    assert_eq!(g.directed_target(dir), (g.neighbor(u, p), g.reverse_port(u, p)));
                    assert_eq!(g.directed_edge_id(dir), g.edge_id(u, p));
                    let info = g.directed_info(dir);
                    assert_eq!((info.src, info.src_port), (u, p));
                    assert_eq!((info.dst, info.dst_port), g.directed_target(dir));
                    assert_eq!(info.edge, g.edge_id(u, p));
                }
            }
            g.shuffle_ports(&mut rng);
        }
    }

    #[test]
    fn isolated_node_slot_owner() {
        // Regression guard for owner_of_slot with zero-degree nodes.
        let mut g = from_edges(5, &[(0, 2), (2, 4)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        g.shuffle_ports(&mut rng);
        for u in g.nodes() {
            for p in g.ports(u) {
                let v = g.neighbor(u, p);
                let q = g.reverse_port(u, p);
                assert_eq!(g.neighbor(v, q), u);
            }
        }
    }
}
