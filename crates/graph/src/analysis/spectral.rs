//! Spectral estimates of conductance and mixing behaviour.
//!
//! The lazy random walk of §2 has transition matrix
//! `P = ½I + ½D⁻¹A`. Its similarity transform
//! `S = D^{1/2} P D^{-1/2} = ½I + ½ D^{-1/2} A D^{-1/2}`
//! is symmetric with eigenvalues `1 = μ₁ ≥ μ₂ ≥ … ≥ 0` and top eigenvector
//! `D^{1/2}𝟙`. We extract `μ₂` by deflated power iteration; the *lazy
//! spectral gap* `γ = 1 − μ₂` then sandwiches the conductance via Cheeger:
//! `γ ≤ φ ≤ 2√γ`, and a sweep cut over the second eigenvector produces a
//! certified upper bound on `φ` that is tight in practice.

use crate::graph::Graph;
use crate::types::NodeId;

/// Options for the deflated power iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpectralOptions {
    /// Number of power-iteration steps (each is one sparse mat-vec).
    pub iterations: usize,
    /// Early-exit tolerance on the Rayleigh-quotient change.
    pub tolerance: f64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions {
            iterations: 2000,
            tolerance: 1e-12,
        }
    }
}

/// Stationary distribution of the lazy walk: `π*_v = deg(v) / 2m` (§2).
///
/// Returns `None` if the graph has an isolated node (the walk is then not
/// well-defined on all of `V`).
pub fn stationary_distribution(g: &Graph) -> Option<Vec<f64>> {
    let two_m = g.volume() as f64;
    // welle-lint: allow(no-float-eq) — exact-zero guard on an integer-valued volume cast; no arithmetic has touched it
    if two_m == 0.0 {
        return None;
    }
    let mut pi = Vec::with_capacity(g.n());
    for u in g.nodes() {
        let d = g.degree(u);
        if d == 0 {
            return None;
        }
        pi.push(d as f64 / two_m);
    }
    Some(pi)
}

/// Second-largest eigenvalue `μ₂` of the symmetrized lazy walk operator.
///
/// Returns `None` for graphs with isolated nodes or fewer than 2 nodes.
/// For disconnected graphs this converges to 1 (zero gap), as expected.
pub fn lazy_second_eigenvalue(g: &Graph, opts: SpectralOptions) -> Option<f64> {
    let n = g.n();
    if n < 2 || g.nodes().any(|u| g.degree(u) == 0) {
        return None;
    }
    // Top eigenvector of S: v1 ∝ sqrt(deg).
    let mut v1: Vec<f64> = g.nodes().map(|u| (g.degree(u) as f64).sqrt()).collect();
    normalize(&mut v1);

    // Deterministic start vector, decorrelated from v1.
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 + 1.0) * 0.754_877_666_246_693; // golden-ratio-ish stride
            (t - t.floor()) - 0.5
        })
        .collect();
    deflate(&mut x, &v1);
    normalize(&mut x);

    let mut y = vec![0.0f64; n];
    let mut prev_rq = f64::NAN;
    for it in 0..opts.iterations {
        apply_sym_lazy(g, &x, &mut y);
        deflate(&mut y, &v1);
        let norm = dot(&y, &y).sqrt();
        if norm < 1e-300 {
            // x was (numerically) orthogonal to everything: gap is huge.
            return Some(0.0);
        }
        for v in y.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut x, &mut y);
        if it % 8 == 7 {
            apply_sym_lazy(g, &x, &mut y);
            let rq = dot(&x, &y);
            if (rq - prev_rq).abs() < opts.tolerance {
                return Some(rq.clamp(0.0, 1.0));
            }
            prev_rq = rq;
        }
    }
    apply_sym_lazy(g, &x, &mut y);
    Some(dot(&x, &y).clamp(0.0, 1.0))
}

/// Lazy spectral gap `γ = 1 − μ₂`; `None` under the same conditions as
/// [`lazy_second_eigenvalue`].
pub fn lazy_spectral_gap(g: &Graph, opts: SpectralOptions) -> Option<f64> {
    lazy_second_eigenvalue(g, opts).map(|mu2| (1.0 - mu2).max(0.0))
}

/// Cheeger sandwich for the *lazy* gap: returns `(φ_lo, φ_hi)` with
/// `φ_lo = γ` and `φ_hi = 2√γ`, so that `φ_lo ≤ φ(G) ≤ φ_hi`.
///
/// (Standard Cheeger for the non-lazy normalized walk is
/// `γ'/2 ≤ φ ≤ √(2γ')`; the lazy gap is `γ = γ'/2`.)
pub fn cheeger_bounds(lazy_gap: f64) -> (f64, f64) {
    let g = lazy_gap.max(0.0);
    (g, 2.0 * g.sqrt())
}

/// Sweep-cut conductance estimate: orders nodes by the second eigenvector
/// (Fiedler-style, `D^{-1/2}`-rescaled) and returns the best prefix-cut
/// conductance. This is a *certified upper bound* on `φ(G)` (every cut is),
/// and by Cheeger's proof it is at most `2√γ`.
///
/// `iterations` bounds the power-iteration work; 200–2000 is plenty for
/// simulation-scale graphs.
pub fn conductance_sweep(g: &Graph, iterations: usize) -> f64 {
    let opts = SpectralOptions {
        iterations,
        ..SpectralOptions::default()
    };
    let Some(order) = second_eigenvector_order(g, opts) else {
        return 1.0;
    };
    let mut side = vec![false; g.n()];
    let total_vol = g.volume() as f64;
    let mut vol = 0.0f64;
    let mut cut = 0i64;
    let mut best = f64::INFINITY;
    // Incremental sweep: adding node u moves its edges across the cut.
    for (i, &u) in order.iter().enumerate() {
        let node = NodeId::new(u);
        let d = g.degree(node) as i64;
        let mut to_inside = 0i64;
        for &v in g.neighbors(node) {
            if side[v.index()] {
                to_inside += 1;
            }
        }
        cut += d - 2 * to_inside;
        vol += d as f64;
        side[u] = true;
        if i + 1 == order.len() {
            break; // full set: degenerate cut
        }
        let vmin = vol.min(total_vol - vol);
        if vmin > 0.0 {
            let phi = cut as f64 / vmin;
            if phi < best {
                best = phi;
            }
        }
    }
    if best.is_finite() {
        best
    } else {
        1.0
    }
}

/// Node order for the sweep cut: ascending second eigenvector, rescaled by
/// `D^{-1/2}` to live in walk (not symmetric) coordinates.
fn second_eigenvector_order(g: &Graph, opts: SpectralOptions) -> Option<Vec<usize>> {
    let n = g.n();
    if n < 2 || g.nodes().any(|u| g.degree(u) == 0) {
        return None;
    }
    let mut v1: Vec<f64> = g.nodes().map(|u| (g.degree(u) as f64).sqrt()).collect();
    normalize(&mut v1);
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 + 1.0) * 0.618_033_988_749_894_9;
            (t - t.floor()) - 0.5
        })
        .collect();
    deflate(&mut x, &v1);
    normalize(&mut x);
    let mut y = vec![0.0f64; n];
    for _ in 0..opts.iterations {
        apply_sym_lazy(g, &x, &mut y);
        deflate(&mut y, &v1);
        let norm = dot(&y, &y).sqrt();
        if norm < 1e-300 {
            break;
        }
        for v in y.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut x, &mut y);
    }
    // Rescale to walk coordinates and sort.
    let mut order: Vec<usize> = (0..n).collect();
    let score: Vec<f64> = g
        .nodes()
        .map(|u| x[u.index()] / (g.degree(u) as f64).sqrt())
        .collect();
    order.sort_by(|&a, &b| score[a].total_cmp(&score[b]));
    Some(order)
}

/// `y ← S x` where `S = ½I + ½ D^{-1/2} A D^{-1/2}`.
fn apply_sym_lazy(g: &Graph, x: &[f64], y: &mut [f64]) {
    let inv_sqrt_deg: Vec<f64> = g.nodes().map(|u| 1.0 / (g.degree(u) as f64).sqrt()).collect();
    for u in g.nodes() {
        let ui = u.index();
        let mut acc = 0.0;
        for &v in g.neighbors(u) {
            acc += x[v.index()] * inv_sqrt_deg[v.index()];
        }
        y[ui] = 0.5 * x[ui] + 0.5 * inv_sqrt_deg[ui] * acc;
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn deflate(x: &mut [f64], v1: &[f64]) {
    let c = dot(x, v1);
    for (xi, vi) in x.iter_mut().zip(v1) {
        *xi -= c * vi;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = dot(x, x).sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::conductance_exact;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_is_degree_proportional() {
        let g = gen::star(5).unwrap();
        let pi = stationary_distribution(&g).unwrap();
        assert!((pi[0] - 4.0 / 8.0).abs() < 1e-12);
        for &leaf in &pi[1..5] {
            assert!((leaf - 1.0 / 8.0).abs() < 1e-12);
        }
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clique_eigenvalue_known() {
        // For K_n: normalized adjacency eigenvalues are 1 and -1/(n-1);
        // lazy: μ₂ = ½(1 - 1/(n-1)).
        let n = 8;
        let g = gen::clique(n).unwrap();
        let mu2 = lazy_second_eigenvalue(&g, SpectralOptions::default()).unwrap();
        let expected = 0.5 * (1.0 - 1.0 / (n as f64 - 1.0));
        assert!((mu2 - expected).abs() < 1e-6, "mu2 = {mu2} vs {expected}");
    }

    #[test]
    fn ring_eigenvalue_known() {
        // C_n: normalized adjacency second eigenvalue cos(2π/n);
        // lazy: (1 + cos(2π/n)) / 2.
        let n = 12;
        let g = gen::ring(n).unwrap();
        let mu2 = lazy_second_eigenvalue(&g, SpectralOptions::default()).unwrap();
        let expected = 0.5 * (1.0 + (2.0 * std::f64::consts::PI / n as f64).cos());
        assert!((mu2 - expected).abs() < 1e-6, "mu2 = {mu2} vs {expected}");
    }

    #[test]
    fn cheeger_sandwich_holds_on_small_graphs() {
        for g in [
            gen::ring(10).unwrap(),
            gen::clique(6).unwrap(),
            gen::hypercube(3).unwrap(),
            gen::barbell(5).unwrap(),
        ] {
            let phi = conductance_exact(&g).unwrap();
            let gap = lazy_spectral_gap(&g, SpectralOptions::default()).unwrap();
            let (lo, hi) = cheeger_bounds(gap);
            assert!(
                lo <= phi + 1e-9 && phi <= hi + 1e-9,
                "Cheeger failed: {lo} <= {phi} <= {hi}"
            );
        }
    }

    #[test]
    fn sweep_is_upper_bound_and_close_on_structured_graphs() {
        for g in [
            gen::ring(16).unwrap(),
            gen::hypercube(4).unwrap(),
            gen::barbell(8).unwrap(),
        ] {
            let sweep = conductance_sweep(&g, 1000);
            // Sweep is a real cut, so it upper-bounds φ but must be < 1.
            assert!(sweep > 0.0 && sweep <= 1.0);
            if let Some(exact) = conductance_exact(&g) {
                assert!(sweep + 1e-9 >= exact);
                // On these symmetric families the sweep should be within 2.5x.
                assert!(
                    sweep <= 2.5 * exact + 1e-9,
                    "sweep {sweep} too far above exact {exact}"
                );
            }
        }
    }

    #[test]
    fn expander_has_constant_gap() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_regular(128, 4, &mut rng).unwrap();
        let gap = lazy_spectral_gap(&g, SpectralOptions::default()).unwrap();
        assert!(gap > 0.02, "4-regular expander gap {gap} too small");
    }

    #[test]
    fn barbell_has_tiny_gap() {
        let g = gen::barbell(12).unwrap();
        let gap = lazy_spectral_gap(&g, SpectralOptions::default()).unwrap();
        let expander_gap = {
            let mut rng = StdRng::seed_from_u64(2);
            let e = gen::random_regular(24, 4, &mut rng).unwrap();
            lazy_spectral_gap(&e, SpectralOptions::default()).unwrap()
        };
        assert!(gap < expander_gap / 4.0, "barbell {gap} vs expander {expander_gap}");
    }

    #[test]
    fn isolated_node_returns_none() {
        let g = crate::builder::from_edges(3, &[(0, 1)]).unwrap();
        assert!(stationary_distribution(&g).is_none());
        assert!(lazy_second_eigenvalue(&g, SpectralOptions::default()).is_none());
    }
}
