//! Cut conductance (§2): `φ_K = |E_K| / min(Vol(U), Vol(V∖U))` and the
//! exact graph conductance `φ(G) = min_K φ_K` for small graphs.

use crate::graph::Graph;

/// Largest `n` accepted by [`conductance_exact`] (the search enumerates
/// `2^{n-1}` cuts).
pub const MAX_EXACT_CONDUCTANCE_N: usize = 22;

/// Volume `Vol(U) = Σ_{v∈U} deg(v)` of the side marked `true`.
pub fn volume(g: &Graph, side: &[bool]) -> usize {
    debug_assert_eq!(side.len(), g.n());
    g.nodes()
        .filter(|u| side[u.index()])
        .map(|u| g.degree(u))
        .sum()
}

/// Number of edges crossing the cut.
pub fn cut_edge_count(g: &Graph, side: &[bool]) -> usize {
    debug_assert_eq!(side.len(), g.n());
    g.edges()
        .filter(|&(_, u, v)| side[u.index()] != side[v.index()])
        .count()
}

/// Cut conductance `φ_K = |E_K| / min(Vol(U), Vol(V∖U))`.
///
/// Returns `None` when either side has zero volume (the cut is degenerate),
/// or when `side.len() != n`.
///
/// ```
/// let g = welle_graph::gen::ring(6).unwrap();
/// let side = vec![true, true, true, false, false, false];
/// // 2 crossing edges / volume 6
/// assert_eq!(welle_graph::analysis::cut_conductance(&g, &side), Some(2.0 / 6.0));
/// ```
pub fn cut_conductance(g: &Graph, side: &[bool]) -> Option<f64> {
    if side.len() != g.n() {
        return None;
    }
    let vol_true = volume(g, side);
    let vol_min = vol_true.min(g.volume() - vol_true);
    if vol_min == 0 {
        return None;
    }
    Some(cut_edge_count(g, side) as f64 / vol_min as f64)
}

/// Exact conductance by exhaustive cut enumeration (`2^{n-1}` subsets;
/// node 0 is pinned to one side by symmetry).
///
/// Returns `None` for `n < 2`, `n >` [`MAX_EXACT_CONDUCTANCE_N`], graphs
/// with isolated nodes, or disconnected graphs (where `φ = 0`, reported as
/// `Some(0.0)` would be misleading for the experiments — a disconnected
/// graph simply returns `Some(0.0)`).
pub fn conductance_exact(g: &Graph) -> Option<f64> {
    let n = g.n();
    if !(2..=MAX_EXACT_CONDUCTANCE_N).contains(&n) {
        return None;
    }
    if g.nodes().any(|u| g.degree(u) == 0) {
        return None;
    }
    let mut best = f64::INFINITY;
    let mut side = vec![false; n];
    // Node 0 stays `false`; enumerate assignments of nodes 1..n.
    for mask in 1..(1u64 << (n - 1)) {
        for (i, s) in side.iter_mut().enumerate().skip(1) {
            *s = (mask >> (i - 1)) & 1 == 1;
        }
        if let Some(phi) = cut_conductance(g, &side) {
            if phi < best {
                best = phi;
            }
        }
    }
    if best.is_finite() {
        Some(best)
    } else {
        None
    }
}

/// Conductance of the "middle cut" splitting nodes `0..n/2` from the rest
/// — the comparison cut used in Claim 17's argument.
pub fn middle_cut_conductance(g: &Graph) -> Option<f64> {
    let n = g.n();
    let side: Vec<bool> = (0..n).map(|u| u < n / 2).collect();
    cut_conductance(g, &side)
}

/// Edge expansion of a cut: `|∂S| / min(|S|, |V∖S|)` (vertex-counting
/// isoperimetric ratio, versus the volume-counting conductance).
///
/// Returns `None` for degenerate cuts. On a `d`-regular graph
/// `h_K = d·φ_K` exactly.
pub fn cut_edge_expansion(g: &Graph, side: &[bool]) -> Option<f64> {
    if side.len() != g.n() {
        return None;
    }
    let size_true = side.iter().filter(|&&b| b).count();
    let smaller = size_true.min(g.n() - size_true);
    if smaller == 0 {
        return None;
    }
    Some(cut_edge_count(g, side) as f64 / smaller as f64)
}

/// Exact edge expansion (isoperimetric number) `h(G) = min_S |∂S|/|S|`
/// over sets with `|S| ≤ n/2`, by exhaustive enumeration. Same size
/// limits as [`conductance_exact`]. Bollobás \[7\] proves random regular
/// graphs have `h(G) = Θ(1)` — the fact Lemma 16 imports for the
/// super-node graph.
pub fn edge_expansion_exact(g: &Graph) -> Option<f64> {
    let n = g.n();
    if !(2..=MAX_EXACT_CONDUCTANCE_N).contains(&n) {
        return None;
    }
    let mut best = f64::INFINITY;
    let mut side = vec![false; n];
    for mask in 1..(1u64 << (n - 1)) {
        for (i, s) in side.iter_mut().enumerate().skip(1) {
            *s = (mask >> (i - 1)) & 1 == 1;
        }
        if let Some(h) = cut_edge_expansion(g, &side) {
            if h < best {
                best = h;
            }
        }
    }
    best.is_finite().then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::gen;

    #[test]
    fn volume_and_cut_count() {
        let g = gen::ring(6).unwrap();
        let side = vec![true, true, false, false, false, false];
        assert_eq!(volume(&g, &side), 4);
        assert_eq!(cut_edge_count(&g, &side), 2);
    }

    #[test]
    fn degenerate_cut_is_none() {
        let g = gen::ring(4).unwrap();
        assert_eq!(cut_conductance(&g, &[false; 4]), None);
        assert_eq!(cut_conductance(&g, &[true; 4]), None);
        assert_eq!(cut_conductance(&g, &[true; 3]), None);
    }

    #[test]
    fn clique_conductance_exact() {
        // K4: the optimal cut isolates ~half the nodes. For K_n the
        // conductance is ceil(n/2)*floor(n/2) / (floor(n/2) * (n-1)) =
        // ceil(n/2) / (n-1).
        let g = gen::clique(4).unwrap();
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 2.0 / 3.0).abs() < 1e-12, "phi = {phi}");
        let g5 = gen::clique(5).unwrap();
        let phi5 = conductance_exact(&g5).unwrap();
        assert!((phi5 - 3.0 / 4.0).abs() < 1e-12, "phi5 = {phi5}");
    }

    #[test]
    fn ring_conductance_exact() {
        // C_n: best cut is an arc of n/2 nodes: 2 / n.
        let g = gen::ring(8).unwrap();
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 2.0 / 8.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn barbell_conductance_matches_bridge_cut() {
        let g = gen::barbell(4).unwrap();
        // Min cut: the bridge. Volume of one side: 3*4 + 1 = 13.
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 1.0 / 13.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn exact_rejects_large_or_degenerate() {
        let g = gen::ring(3).unwrap();
        assert!(conductance_exact(&g).is_some());
        let big = gen::ring(MAX_EXACT_CONDUCTANCE_N + 1).unwrap();
        assert!(conductance_exact(&big).is_none());
        let isolated = from_edges(3, &[(0, 1)]).unwrap();
        assert!(conductance_exact(&isolated).is_none());
    }

    #[test]
    fn disconnected_graph_has_zero_conductance() {
        let g = from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(conductance_exact(&g), Some(0.0));
    }

    #[test]
    fn exact_is_lower_bound_for_any_cut() {
        let g = gen::hypercube(3).unwrap();
        let exact = conductance_exact(&g).unwrap();
        // Any specific cut upper-bounds the conductance.
        let side: Vec<bool> = (0..8).map(|u| u % 2 == 0).collect();
        let phi = cut_conductance(&g, &side).unwrap();
        assert!(exact <= phi + 1e-12);
        // Hypercube Q_d conductance is 1/d (dimension cut).
        assert!((exact - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn middle_cut_on_even_ring() {
        let g = gen::ring(10).unwrap();
        let phi = middle_cut_conductance(&g).unwrap();
        assert!((phi - 2.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn edge_expansion_relates_to_conductance_on_regular_graphs() {
        // On d-regular graphs h = d·φ.
        for g in [gen::ring(8).unwrap(), gen::hypercube(3).unwrap()] {
            let d = g.degree(crate::types::NodeId::new(0));
            let h = edge_expansion_exact(&g).unwrap();
            let phi = conductance_exact(&g).unwrap();
            assert!((h - d as f64 * phi).abs() < 1e-9, "h={h} phi={phi} d={d}");
        }
    }

    #[test]
    fn random_regular_expansion_is_bounded_away_from_zero() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        // Bollobás: random cubic graphs expand; check a small instance
        // exactly.
        let g = gen::random_regular(14, 3, &mut rng).unwrap();
        let h = edge_expansion_exact(&g).unwrap();
        assert!(h >= 0.4, "expansion {h} too small for a random cubic graph");
    }

    #[test]
    fn cut_edge_expansion_degenerate() {
        let g = gen::ring(4).unwrap();
        assert_eq!(cut_edge_expansion(&g, &[false; 4]), None);
        assert_eq!(cut_edge_expansion(&g, &[true; 3]), None);
        let h = cut_edge_expansion(&g, &[true, true, false, false]).unwrap();
        assert!((h - 1.0).abs() < 1e-12);
    }
}
