//! Structural graph analysis: traversal, connectivity, diameter, bridges.
//!
//! The conductance and spectral tools of §2 of the paper live in the
//! [`mod@crate::analysis`] submodules and are re-exported here.

mod cuts;
mod spectral;

pub use cuts::{
    conductance_exact, cut_conductance, cut_edge_count, cut_edge_expansion,
    edge_expansion_exact, middle_cut_conductance, volume, MAX_EXACT_CONDUCTANCE_N,
};
pub use spectral::{
    cheeger_bounds, conductance_sweep, lazy_second_eigenvalue, lazy_spectral_gap,
    stationary_distribution, SpectralOptions,
};

use std::collections::{HashSet, VecDeque};

use crate::graph::Graph;
use crate::types::{EdgeId, NodeId};

/// Distance marker for unreachable nodes in [`bfs`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Breadth-first distances from `src`; unreachable nodes get
/// [`UNREACHABLE`].
pub fn bfs(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether the graph is connected (single component containing all nodes).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return false;
    }
    bfs(g, NodeId::new(0)).iter().all(|&d| d != UNREACHABLE)
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let mut comp = vec![usize::MAX; g.n()];
    let mut count = 0;
    for start in g.nodes() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[start.index()] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    count
}

/// Exact diameter via all-pairs BFS (`O(n·m)`); `None` if disconnected.
///
/// Suitable for the simulation sizes in this repo (n up to a few tens of
/// thousands on sparse graphs); prefer [`diameter_double_sweep`] when an
/// estimate suffices.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    let mut best = 0u32;
    for u in g.nodes() {
        let dist = bfs(g, u);
        for &d in &dist {
            if d == UNREACHABLE {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// Double-sweep diameter lower bound (exact on trees, excellent in
/// practice): BFS from node 0, then BFS from the farthest node found.
/// `None` if disconnected.
pub fn diameter_double_sweep(g: &Graph) -> Option<u32> {
    let d0 = bfs(g, NodeId::new(0));
    let (far, &dmax) = d0
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| if d == UNREACHABLE { 0 } else { d })?;
    if d0.contains(&UNREACHABLE) {
        return None;
    }
    let _ = dmax;
    let d1 = bfs(g, NodeId::new(far));
    d1.iter().copied().max()
}

/// Bridge edges (cut edges) via iterative Tarjan low-link.
///
/// Used by the dumbbell generator to pick an edge whose removal keeps the
/// base copy connected.
pub fn bridges(g: &Graph) -> HashSet<EdgeId> {
    let n = g.n();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut result = HashSet::new();
    let mut timer = 1u32;

    // Iterative DFS storing (node, parent_edge, next_port_to_try).
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack: Vec<(usize, Option<EdgeId>, usize)> = vec![(start, None, 0)];
        visited[start] = true;
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        while let Some(&mut (u, parent_edge, ref mut next_port)) = stack.last_mut() {
            let node = NodeId::new(u);
            if *next_port < g.degree(node) {
                let p = crate::types::Port::new(*next_port);
                *next_port += 1;
                let e = g.edge_id(node, p);
                if Some(e) == parent_edge {
                    continue;
                }
                let v = g.neighbor(node, p).index();
                if visited[v] {
                    low[u] = low[u].min(disc[v]);
                } else {
                    visited[v] = true;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, Some(e), 0));
                }
            } else {
                stack.pop();
                if let Some(&(parent, _, _)) = stack.last() {
                    low[parent] = low[parent].min(low[u]);
                    if low[u] > disc[parent] {
                        // The tree edge (parent, u) is a bridge; find its id.
                        if let Some(e) = parent_edge {
                            result.insert(e);
                        }
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::gen;

    #[test]
    fn bfs_distances_on_path() {
        let g = gen::path(5).unwrap();
        let d = bfs(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs(&g, NodeId::new(0));
        assert_eq!(d[2], UNREACHABLE);
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn diameter_methods_agree_on_trees() {
        let g = gen::binary_tree(31).unwrap();
        assert_eq!(diameter_exact(&g), diameter_double_sweep(&g));
    }

    #[test]
    fn double_sweep_never_exceeds_exact() {
        for n in [5usize, 9, 16] {
            let g = gen::torus2d(3, n).unwrap();
            let exact = diameter_exact(&g).unwrap();
            let sweep = diameter_double_sweep(&g).unwrap();
            assert!(sweep <= exact);
        }
    }

    #[test]
    fn bridges_on_path_are_all_edges() {
        let g = gen::path(6).unwrap();
        assert_eq!(bridges(&g).len(), 5);
    }

    #[test]
    fn ring_has_no_bridges() {
        let g = gen::ring(6).unwrap();
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn barbell_bridge_detected() {
        let g = gen::barbell(4).unwrap();
        let b = bridges(&g);
        assert_eq!(b.len(), 1);
        let e = *b.iter().next().unwrap();
        let (u, v) = g.endpoints(e);
        assert_eq!((u.index(), v.index()), (3, 4));
    }

    #[test]
    fn bridges_mixed_graph() {
        // Triangle 0-1-2 with a pendant path 2-3-4.
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap();
        let b = bridges(&g);
        assert_eq!(b.len(), 2);
        let pairs: HashSet<(usize, usize)> = b
            .iter()
            .map(|&e| {
                let (u, v) = g.endpoints(e);
                (u.index(), v.index())
            })
            .collect();
        assert!(pairs.contains(&(2, 3)));
        assert!(pairs.contains(&(3, 4)));
    }
}
