//! Incremental construction of [`Graph`]s from edge lists.

use std::collections::HashSet;

use crate::error::GraphError;
use crate::graph::Graph;

/// Builder collecting undirected edges before freezing them into a CSR
/// [`Graph`].
///
/// The builder validates the paper's model constraints eagerly: no
/// self-loops, no parallel edges, endpoints in range. Connectivity is *not*
/// enforced here (some experiments intentionally build disconnected parts);
/// use [`crate::analysis::is_connected`] where required.
///
/// # Example
///
/// ```
/// use welle_graph::GraphBuilder;
///
/// # fn main() -> Result<(), welle_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build()?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.degree(welle_graph::NodeId::new(1)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes (indices `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            seen: HashSet::with_capacity(m),
        }
    }

    /// Number of nodes the resulting graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the undirected edge `(u, v)` has been added.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let key = Self::key(narrow(u), narrow(v));
        self.seen.contains(&key)
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`,
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`, and
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let (u32u, u32v) = (narrow(u), narrow(v));
        let key = Self::key(u32u, u32v);
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        self.edges.push((u32u, u32v));
        Ok(())
    }

    /// Removes the undirected edge `(u, v)` if present; returns whether it
    /// was removed. Used by generators that post-process (e.g. the §4.1
    /// lower-bound construction removes two intra-clique edges to keep node
    /// degrees uniform).
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let key = Self::key(narrow(u), narrow(v));
        if self.seen.remove(&key) {
            let pos = self
                .edges
                .iter()
                .position(|&(a, b)| Self::key(a, b) == key)
                // welle-lint: allow(no-lib-unwrap) — invariant: `seen` and `edges` are mutated in lockstep by add_edge/remove_edge only
                .expect("edge present in seen-set is present in list");
            self.edges.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Freezes the accumulated edges into a CSR [`Graph`].
    ///
    /// Port numbers follow insertion order of each node's incident edges;
    /// call [`Graph::shuffle_ports`] afterwards for the uniformly random
    /// port assignment the lower-bound arguments (§4, Lemma 18) rely on.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if `n == 0`.
    pub fn build(self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        Ok(Graph::from_validated_edges(self.n, self.edges))
    }

    #[inline]
    fn key(u: u32, v: u32) -> (u32, u32) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }
}

/// Narrows a node index into the `u32` edge-list domain.
///
/// Callers range-check indices against `n` before narrowing, and CSR
/// construction independently asserts the whole index space fits `u32`,
/// so the checked conversion only fires on graphs the CSR layout could
/// not represent anyway.
#[inline]
pub(crate) fn narrow(x: usize) -> u32 {
    // welle-lint: allow(no-lib-unwrap) — documented invariant: node indices are bounded by the u32 CSR index-space assert at graph construction
    u32::try_from(x).expect("node index fits in u32")
}

/// Freezes a *structurally valid* edge list straight into CSR form:
/// endpoints `< n`, no self-loops, no duplicates — guaranteed by the
/// calling generator's construction, not re-checked in release builds.
///
/// This is the structured generators' path to writing CSR directly: it
/// skips [`GraphBuilder`]'s per-edge hash-set bookkeeping, so building an
/// `n = 10⁷` family allocates the CSR columns plus one 8-byte-per-edge
/// staging list and nothing else. Debug builds re-verify the invariants.
///
/// # Errors
///
/// Returns [`GraphError::Empty`] if `n == 0`.
pub(crate) fn from_structured_edges(n: usize, edges: Vec<(u32, u32)>) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    #[cfg(debug_assertions)]
    {
        let mut seen = HashSet::with_capacity(edges.len());
        for &(u, v) in &edges {
            debug_assert!(u != v, "structured generator produced self-loop at v{u}");
            debug_assert!(
                (u as usize) < n && (v as usize) < n,
                "structured generator produced out-of-range edge (v{u}, v{v}) for n = {n}"
            );
            debug_assert!(
                seen.insert(GraphBuilder::key(u, v)),
                "structured generator produced duplicate edge (v{u}, v{v})"
            );
        }
    }
    Ok(Graph::from_validated_edges(n, edges))
}

/// Convenience: builds a graph directly from an edge list.
///
/// # Errors
///
/// Propagates the same validation errors as [`GraphBuilder::add_edge`] and
/// [`GraphBuilder::build`].
///
/// ```
/// let g = welle_graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.m(), 4);
/// ```
pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for &(u, v) in edges {
        b.add_edge(u, v)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(
            b.add_edge(7, 0),
            Err(GraphError::NodeOutOfRange { node: 7, n: 3 })
        );
    }

    #[test]
    fn rejects_duplicate_in_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.add_edge(0, 1), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
        assert_eq!(b.add_edge(1, 0), Err(GraphError::DuplicateEdge { u: 1, v: 0 }));
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        assert!(b.has_edge(1, 0));
        assert!(b.remove_edge(1, 0));
        assert!(!b.has_edge(0, 1));
        assert!(!b.remove_edge(0, 1));
        // re-adding after removal is fine
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn build_produces_correct_degrees() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(g.degree(NodeId::new(0)), 4);
        for i in 1..5 {
            assert_eq!(g.degree(NodeId::new(i)), 1);
        }
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId::new(2)), 0);
    }
}
