//! Port-numbered undirected graphs for the `welle` leader-election reproduction.
//!
//! This crate provides the network substrate required by the PODC 2018 paper
//! *Leader Election in Well-Connected Graphs* (Gilbert, Robinson, Sourav):
//!
//! * a compact CSR [`Graph`] with **port numbering** (the KT0 model: a node
//!   knows its ports `0..deg(u)` but not the identity of the neighbour behind
//!   a port, and port mappings need not be symmetric),
//! * [`gen`]: generators for every graph family the paper discusses —
//!   rings, cliques, stars, trees, hypercubes, tori, Erdős–Rényi, random
//!   regular expanders, barbells, the §4.1 lower-bound *clique-of-cliques*
//!   graph and the §5 *dumbbell* graphs,
//! * [`analysis`]: BFS/connectivity/diameter, cut conductance, exact
//!   conductance for small graphs, and spectral machinery (second eigenvalue
//!   of the lazy walk, Cheeger bounds) used to estimate the conductance `φ`
//!   of §2.
//!
//! # Example
//!
//! ```
//! use welle_graph::{gen, analysis};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = gen::random_regular(64, 4, &mut rng).expect("generation succeeds");
//! assert_eq!(g.n(), 64);
//! assert!(analysis::is_connected(&g));
//! let phi = analysis::conductance_sweep(&g, 200);
//! assert!(phi > 0.0 && phi <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod types;

pub mod analysis;
pub mod gen;

pub use builder::{from_edges, GraphBuilder};
pub use error::GraphError;
pub use graph::{DegreeStats, DirInfo, Graph, NeighborIter, PortIter};
pub use types::{EdgeId, NodeId, Port};
