//! Error types for graph construction and generation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or generating a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// A self-loop `(u, u)` was added; the paper's model has none.
    SelfLoop {
        /// The node with the loop.
        node: usize,
    },
    /// The same undirected edge was added twice (multigraphs unsupported).
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A graph with zero nodes was requested.
    Empty,
    /// Generator parameters are infeasible (e.g. odd `n·d` for a
    /// `d`-regular graph, or a clique size too small for the lower-bound
    /// construction).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A randomized generator exhausted its retry budget without producing
    /// a valid (simple, connected) graph.
    RetriesExhausted {
        /// What was being generated.
        what: String,
        /// How many attempts were made.
        attempts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate undirected edge ({u}, {v})")
            }
            GraphError::Empty => write!(f, "graph must have at least one node"),
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
            GraphError::RetriesExhausted { what, attempts } => {
                write!(f, "failed to generate {what} after {attempts} attempts")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GraphError::NodeOutOfRange { node: 5, n: 3 },
            GraphError::SelfLoop { node: 1 },
            GraphError::DuplicateEdge { u: 0, v: 1 },
            GraphError::Empty,
            GraphError::InvalidParameters {
                reason: "d must be even".into(),
            },
            GraphError::RetriesExhausted {
                what: "random 4-regular graph".into(),
                attempts: 100,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("graph"));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(GraphError::Empty);
    }
}
