//! Hypercube graphs — the paper's second headline family
//! (`t_mix = O(log n log log n)`, §1 "Results").

use crate::builder::{from_structured_edges, narrow};
use crate::error::GraphError;
use crate::graph::Graph;

/// `dim`-dimensional hypercube `Q_dim` on `n = 2^dim` nodes; nodes are
/// adjacent iff their indices differ in exactly one bit.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `dim == 0` or `dim > 24`
/// (2^24 nodes is past anything the simulator should attempt).
///
/// ```
/// let g = welle_graph::gen::hypercube(4).unwrap();
/// assert_eq!(g.n(), 16);
/// assert!(g.is_regular(4));
/// ```
pub fn hypercube(dim: u32) -> Result<Graph, GraphError> {
    if dim == 0 || dim > 24 {
        return Err(GraphError::InvalidParameters {
            reason: format!("hypercube dimension must be in 1..=24, got {dim}"),
        });
    }
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim as usize / 2);
    for u in 0..n {
        for bit in 0..dim {
            let v = u ^ (1usize << bit);
            if u < v {
                edges.push((narrow(u), narrow(v)));
            }
        }
    }
    from_structured_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::types::NodeId;

    #[test]
    fn q3_shape() {
        let g = hypercube(3).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 12);
        assert!(g.is_regular(3));
        assert!(analysis::is_connected(&g));
        assert_eq!(analysis::diameter_exact(&g), Some(3));
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let g = hypercube(5).unwrap();
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let x = u.index() ^ v.index();
                assert_eq!(x.count_ones(), 1, "{u} and {v} must differ in one bit");
            }
        }
    }

    #[test]
    fn diameter_equals_dimension() {
        for dim in 1..=6 {
            let g = hypercube(dim).unwrap();
            assert_eq!(analysis::diameter_exact(&g), Some(dim));
        }
    }

    #[test]
    fn antipodal_distance() {
        let g = hypercube(6).unwrap();
        let dist = analysis::bfs(&g, NodeId::new(0));
        assert_eq!(dist[g.n() - 1], 6);
    }

    #[test]
    fn rejects_degenerate_dims() {
        assert!(hypercube(0).is_err());
        assert!(hypercube(25).is_err());
    }
}
