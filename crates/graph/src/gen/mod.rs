//! Graph generators for every family the paper discusses.
//!
//! Deterministic families ([`ring`], [`path`], [`clique`], [`star`],
//! [`hypercube`], [`torus2d`], [`grid2d`], [`binary_tree`], [`barbell`],
//! [`lollipop`]) take sizes; randomized families ([`gnp`],
//! [`random_regular`], [`random_tree`]) take an [`rand::Rng`].
//!
//! The two constructions specific to the paper's lower bounds live in
//! [`clique_of_cliques`] (§4.1, Figures 1 and 2) and [`dumbbell()`] (§5).
//!
//! All randomized generators finish with [`crate::Graph::shuffle_ports`] so
//! port numbers carry no structural information, as the model requires.

mod basic;
mod barbell;
mod circulant;
pub mod clique_of_cliques;
pub mod dumbbell;
mod hypercube;
mod random;
mod torus;

pub use barbell::{barbell, lollipop};
pub use basic::{binary_tree, clique, path, random_tree, ring, star};
pub use circulant::circulant;
pub use clique_of_cliques::{CliqueOfCliques, CliqueOfCliquesParams, SUPER_DEGREE};
pub use dumbbell::{dumbbell, Dumbbell};
pub use hypercube::hypercube;
pub use random::{gnp, gnp_connected, random_regular};
pub use torus::{grid2d, torus2d};
