//! 2-D tori and grids — moderately connected families
//! (`t_mix = Θ(n)` for the √n×√n torus) used as contrast to expanders.

use crate::builder::{from_structured_edges, narrow};
use crate::error::GraphError;
use crate::graph::Graph;

/// `rows × cols` torus (wrap-around grid); 4-regular.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if either dimension is `< 3`
/// (wrap-around with dimension 2 would create parallel edges).
///
/// ```
/// let g = welle_graph::gen::torus2d(4, 5).unwrap();
/// assert_eq!(g.n(), 20);
/// assert!(g.is_regular(4));
/// ```
pub fn torus2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameters {
            reason: format!("torus needs rows, cols >= 3, got {rows}x{cols}"),
        });
    }
    let n = rows * cols;
    let mut edges = Vec::with_capacity(2 * n);
    let id = |r: usize, c: usize| narrow(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols)));
            edges.push((id(r, c), id((r + 1) % rows, c)));
        }
    }
    from_structured_edges(n, edges)
}

/// `rows × cols` grid without wrap-around.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `rows * cols < 2`.
pub fn grid2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows * cols < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("grid needs at least 2 nodes, got {rows}x{cols}"),
        });
    }
    let n = rows * cols;
    let mut edges = Vec::with_capacity(2 * n);
    let id = |r: usize, c: usize| narrow(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    from_structured_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn torus_shape() {
        let g = torus2d(4, 4).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!(g.is_regular(4));
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn torus_diameter() {
        // Diameter of an r x c torus is floor(r/2) + floor(c/2).
        let g = torus2d(6, 8).unwrap();
        assert_eq!(analysis::diameter_exact(&g), Some(3 + 4));
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(3, 5).unwrap();
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 3 * 4 + 2 * 5);
        assert!(analysis::is_connected(&g));
        assert_eq!(analysis::diameter_exact(&g), Some(2 + 4));
    }

    #[test]
    fn grid_corner_degrees() {
        let g = grid2d(3, 3).unwrap();
        let s = g.degree_stats();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 4);
    }

    #[test]
    fn rejects_small_torus() {
        assert!(torus2d(2, 5).is_err());
        assert!(torus2d(3, 2).is_err());
        assert!(grid2d(1, 1).is_err());
    }

    #[test]
    fn single_row_grid_is_path() {
        let g = grid2d(1, 6).unwrap();
        assert_eq!(g.m(), 5);
        assert_eq!(analysis::diameter_exact(&g), Some(5));
    }
}
