//! The §4.1 lower-bound graph `G`: a random 4-regular *super-node graph*
//! `G_S` (Figure 1) whose super-nodes are expanded into cliques (Figure 2),
//! with two intra-clique edges removed per clique so that all node degrees
//! are uniform.
//!
//! For a target size `n` and parameter `ε = log(1/α) / (2 log n)`, the
//! construction yields `N ≈ n^{1-ε}` cliques of size `s ≈ n^ε` and a graph
//! of conductance `φ = Θ(α) = Θ(1/n^{2ε})` with high probability
//! (Lemma 16).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::{narrow, GraphBuilder};
use crate::error::GraphError;
use crate::gen::random::random_regular;
use crate::graph::Graph;
use crate::types::{EdgeId, NodeId};

/// Degree of the super-node graph (the paper fixes it to 4).
pub const SUPER_DEGREE: usize = 4;

/// Parameters of the lower-bound construction.
///
/// `epsilon` plays the role of the paper's `ε`; the resulting conductance
/// target is `α = n^{-2ε}`. The paper requires
/// `1/n² < α < 1/144`, i.e. `ε` small enough that cliques have at least
/// [`SUPER_DEGREE`] nodes and large enough that there are ≥ 5 cliques.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CliqueOfCliquesParams {
    /// Target total number of nodes (the realized `n` is `N·s ≈ n`).
    pub target_n: usize,
    /// Exponent `ε ∈ (0, 1)`: clique size `s ≈ n^ε`.
    pub epsilon: f64,
}

impl CliqueOfCliquesParams {
    /// Convenience constructor.
    pub fn new(target_n: usize, epsilon: f64) -> Self {
        CliqueOfCliquesParams { target_n, epsilon }
    }

    /// The clique size `s = max(4, round(n^ε))` this parameterization yields.
    pub fn clique_size(&self) -> usize {
        let s = (self.target_n as f64).powf(self.epsilon).round() as usize;
        s.max(SUPER_DEGREE)
    }

    /// The number of cliques `N = max(5, round(n / s))`.
    pub fn num_cliques(&self) -> usize {
        (self.target_n as f64 / self.clique_size() as f64).round().max(5.0) as usize
    }
}

/// The constructed lower-bound graph with its clique structure.
///
/// Keeps both the expanded graph and the super-node graph `G_S`, plus the
/// node→clique map that the lower-bound experiments (clique communication
/// graph, Lemma 18 probing) need to classify every transmitted message as
/// intra- or inter-clique.
#[derive(Clone, Debug)]
pub struct CliqueOfCliques {
    graph: Graph,
    super_graph: Graph,
    clique_of: Vec<u32>,
    clique_size: usize,
    inter_edge_flags: Vec<bool>,
    epsilon: f64,
}

impl CliqueOfCliques {
    /// Builds the §4.1 graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if the derived clique size
    /// is below 4, `ε ∉ (0, 1)`, or the derived clique count is below 5;
    /// generation errors from the 4-regular super-graph are propagated.
    ///
    /// ```
    /// use rand::{SeedableRng, rngs::StdRng};
    /// use welle_graph::gen::{CliqueOfCliques, CliqueOfCliquesParams};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let lb = CliqueOfCliques::build(CliqueOfCliquesParams::new(500, 0.3), &mut rng).unwrap();
    /// let s = lb.clique_size();
    /// assert!(lb.graph().is_regular(s - 1)); // uniform degrees (Fig. 2)
    /// ```
    pub fn build<R: Rng + ?Sized>(
        params: CliqueOfCliquesParams,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if !(params.epsilon > 0.0 && params.epsilon < 1.0) {
            return Err(GraphError::InvalidParameters {
                reason: format!("epsilon must be in (0, 1), got {}", params.epsilon),
            });
        }
        let s = params.clique_size();
        let num_cliques = params.num_cliques();
        if s < SUPER_DEGREE {
            return Err(GraphError::InvalidParameters {
                reason: format!("clique size {s} < {SUPER_DEGREE}; increase target_n or epsilon"),
            });
        }
        if num_cliques < SUPER_DEGREE + 1 {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "need at least {} cliques for a 4-regular super-graph, got {num_cliques}",
                    SUPER_DEGREE + 1
                ),
            });
        }

        let super_graph = random_regular(num_cliques, SUPER_DEGREE, rng)?;
        let n = num_cliques * s;
        let mut b = GraphBuilder::with_capacity(n, num_cliques * s * (s - 1) / 2 + 2 * num_cliques);

        // Choose 4 distinct external nodes per clique, in super-port order:
        // external_of[c][p] answers "which node of clique c terminates the
        // super-edge behind super-port p".
        let mut external_of: Vec<Vec<usize>> = Vec::with_capacity(num_cliques);
        for c in 0..num_cliques {
            let mut members: Vec<usize> = (c * s..(c + 1) * s).collect();
            members.shuffle(rng);
            members.truncate(SUPER_DEGREE);
            external_of.push(members);
        }

        // Intra-clique edges: complete graph within each clique, minus the
        // two edges pairing up the four external nodes (degree uniformity).
        for (c, ext) in external_of.iter().enumerate() {
            let base = c * s;
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_edge(base + i, base + j)?;
                }
            }
            let removed1 = b.remove_edge(ext[0], ext[1]);
            let removed2 = b.remove_edge(ext[2], ext[3]);
            debug_assert!(removed1 && removed2, "external pairing edges existed");
        }

        // Inter-clique edges: one per super-edge, between the external
        // nodes assigned to the corresponding super-ports.
        for cu in super_graph.nodes() {
            for p in super_graph.ports(cu) {
                let cv = super_graph.neighbor(cu, p);
                if cu < cv {
                    let q = super_graph.reverse_port(cu, p);
                    let a = external_of[cu.index()][p.index()];
                    let bb = external_of[cv.index()][q.index()];
                    b.add_edge(a, bb)?;
                }
            }
        }

        let mut graph = b.build()?;
        // Randomize ports: Lemma 18 requires inter-clique ports to be
        // uniformly placed among each clique's ~s² ports.
        graph.shuffle_ports(rng);

        let clique_of: Vec<u32> = (0..n).map(|u| narrow(u / s)).collect();
        let inter_edge_flags = graph
            .edges()
            .map(|(_, u, v)| clique_of[u.index()] != clique_of[v.index()])
            .collect();

        Ok(CliqueOfCliques {
            graph,
            super_graph,
            clique_of,
            clique_size: s,
            inter_edge_flags,
            epsilon: params.epsilon,
        })
    }

    /// The expanded lower-bound graph `G`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The 4-regular super-node graph `G_S` (Figure 1).
    pub fn super_graph(&self) -> &Graph {
        &self.super_graph
    }

    /// Consumes `self`, returning the expanded graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Clique index of a node.
    pub fn clique_of(&self, u: NodeId) -> usize {
        self.clique_of[u.index()] as usize
    }

    /// Number of cliques `N`.
    pub fn num_cliques(&self) -> usize {
        self.super_graph.n()
    }

    /// Clique size `s` (all cliques have the same size).
    pub fn clique_size(&self) -> usize {
        self.clique_size
    }

    /// The `ε` used to build this graph.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The conductance scale `α = n^{-2ε}` the construction targets
    /// (Lemma 16 proves `φ = Θ(α)` w.h.p.).
    pub fn alpha(&self) -> f64 {
        (self.graph.n() as f64).powf(-2.0 * self.epsilon)
    }

    /// Nodes of clique `c` (they are laid out contiguously).
    pub fn clique_nodes(&self, c: usize) -> impl Iterator<Item = NodeId> + '_ {
        (c * self.clique_size..(c + 1) * self.clique_size).map(NodeId::new)
    }

    /// Whether an edge crosses between two cliques.
    pub fn is_inter_clique_edge(&self, e: EdgeId) -> bool {
        self.inter_edge_flags[e.index()]
    }

    /// Number of inter-clique edges (`= |E(G_S)| = 2N`).
    pub fn inter_edge_count(&self) -> usize {
        self.inter_edge_flags.iter().filter(|&&f| f).count()
    }

    /// Conductance of the cut that keeps every clique whole and splits the
    /// super-graph along `super_cut` (a boolean side-assignment per clique).
    ///
    /// Claim 17 shows the optimal cut of `G` has this form, so minimizing
    /// this quantity over super-cuts gives `φ(G)` exactly (up to the
    /// super-graph cut search, done by sweep in the experiments).
    pub fn clique_respecting_cut_conductance(&self, super_cut: &[bool]) -> Option<f64> {
        if super_cut.len() != self.num_cliques() {
            return None;
        }
        let node_cut: Vec<bool> = (0..self.graph.n())
            .map(|u| super_cut[self.clique_of[u] as usize])
            .collect();
        crate::analysis::cut_conductance(&self.graph, &node_cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: usize, eps: f64, seed: u64) -> CliqueOfCliques {
        let mut rng = StdRng::seed_from_u64(seed);
        CliqueOfCliques::build(CliqueOfCliquesParams::new(n, eps), &mut rng).unwrap()
    }

    #[test]
    fn degrees_are_uniform() {
        let lb = build(400, 0.3, 7);
        let s = lb.clique_size();
        assert!(s >= 4);
        assert!(
            lb.graph().is_regular(s - 1),
            "all degrees must equal clique_size - 1"
        );
    }

    #[test]
    fn connected_and_sized() {
        let lb = build(600, 0.25, 3);
        assert!(analysis::is_connected(lb.graph()));
        assert_eq!(lb.graph().n(), lb.num_cliques() * lb.clique_size());
    }

    #[test]
    fn inter_edges_match_super_graph() {
        let lb = build(500, 0.3, 11);
        assert_eq!(lb.inter_edge_count(), lb.super_graph().m());
        assert_eq!(lb.super_graph().m(), 2 * lb.num_cliques());
    }

    #[test]
    fn clique_of_is_consistent() {
        let lb = build(300, 0.35, 1);
        for c in 0..lb.num_cliques() {
            for u in lb.clique_nodes(c) {
                assert_eq!(lb.clique_of(u), c);
            }
        }
    }

    #[test]
    fn middle_cut_conductance_scales_like_alpha() {
        // Lemma 16: phi = Theta(alpha). Check a balanced clique-respecting
        // cut is within a constant factor of alpha.
        let lb = build(800, 0.3, 5);
        let ncliques = lb.num_cliques();
        let cut: Vec<bool> = (0..ncliques).map(|c| c < ncliques / 2).collect();
        let phi = lb.clique_respecting_cut_conductance(&cut).unwrap();
        let alpha = lb.alpha();
        // Conductance of the cut is (#crossing super edges) / (cliques *
        // clique volume); crossing edges <= 2N so ratio is O(alpha) up to
        // the super-graph's constant conductance.
        assert!(phi > 0.0);
        assert!(
            phi < 40.0 * alpha,
            "cut conductance {phi} should be O(alpha = {alpha})"
        );
    }

    #[test]
    fn rejects_bad_epsilon() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(CliqueOfCliques::build(CliqueOfCliquesParams::new(100, 0.0), &mut rng).is_err());
        assert!(CliqueOfCliques::build(CliqueOfCliquesParams::new(100, 1.0), &mut rng).is_err());
    }

    #[test]
    fn params_accessors() {
        let p = CliqueOfCliquesParams::new(1000, 0.25);
        // 1000^0.25 ≈ 5.6 → 6
        assert_eq!(p.clique_size(), 6);
        assert_eq!(p.num_cliques(), (1000f64 / 6.0).round() as usize);
    }

    #[test]
    fn every_clique_has_exactly_four_inter_edges() {
        let lb = build(500, 0.3, 13);
        let mut count = vec![0usize; lb.num_cliques()];
        for (e, u, v) in lb.graph().edges() {
            if lb.is_inter_clique_edge(e) {
                count[lb.clique_of(u)] += 1;
                count[lb.clique_of(v)] += 1;
            }
        }
        for (c, k) in count.iter().enumerate() {
            assert_eq!(*k, SUPER_DEGREE, "clique {c} must touch 4 inter edges");
        }
    }
}
