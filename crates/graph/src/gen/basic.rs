//! Elementary deterministic families plus random trees.

use rand::{Rng, RngExt};

use crate::builder::{from_structured_edges, narrow};
use crate::error::GraphError;
use crate::graph::Graph;

/// Cycle `C_n` (the classic worst case for deterministic election, cf. the
/// Frederickson–Lynch bound the paper cites).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `n < 3`.
///
/// ```
/// let g = welle_graph::gen::ring(8).unwrap();
/// assert_eq!(g.m(), 8);
/// assert!(g.is_regular(2));
/// ```
pub fn ring(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameters {
            reason: format!("ring needs n >= 3, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n);
    for u in 0..n {
        edges.push((narrow(u), narrow((u + 1) % n)));
    }
    from_structured_edges(n, edges)
}

/// Path `P_n` on `n >= 2` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `n < 2`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("path needs n >= 2, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n - 1);
    for u in 0..n - 1 {
        edges.push((narrow(u), narrow(u + 1)));
    }
    from_structured_edges(n, edges)
}

/// Complete graph `K_n` — constant conductance, `t_mix = O(1)`; the setting
/// of the `Ω(√n)` bound of Kutten et al. \[25\] that Theorem 13 nearly meets.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `n < 2`.
pub fn clique(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("clique needs n >= 2, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((narrow(u), narrow(v)));
        }
    }
    from_structured_edges(n, edges)
}

/// Star `S_n`: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("star needs n >= 2, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n - 1);
    for leaf in 1..n {
        edges.push((0, narrow(leaf)));
    }
    from_structured_edges(n, edges)
}

/// Complete binary tree on `n` nodes (heap layout: children of `i` are
/// `2i + 1` and `2i + 2`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `n < 2`.
pub fn binary_tree(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("binary tree needs n >= 2, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n - 1);
    for child in 1..n {
        edges.push((narrow((child - 1) / 2), narrow(child)));
    }
    from_structured_edges(n, edges)
}

/// Uniform random recursive tree: node `i > 0` attaches to a uniformly
/// random earlier node. Always connected; expected diameter `Θ(log n)` but
/// conductance can be poor — a useful "badly connected" contrast family.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for `n < 2`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("random tree needs n >= 2, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n - 1);
    for child in 1..n {
        let parent = rng.random_range(0..child);
        edges.push((narrow(parent), narrow(child)));
    }
    let mut g = from_structured_edges(n, edges)?;
    g.shuffle_ports(rng);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_shape() {
        let g = ring(10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 10);
        assert!(g.is_regular(2));
        assert!(analysis::is_connected(&g));
        assert_eq!(analysis::diameter_exact(&g), Some(5));
    }

    #[test]
    fn ring_minimum_size() {
        assert!(ring(2).is_err());
        let g = ring(3).unwrap();
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn path_shape() {
        let g = path(6).unwrap();
        assert_eq!(g.m(), 5);
        assert_eq!(analysis::diameter_exact(&g), Some(5));
    }

    #[test]
    fn clique_shape() {
        let g = clique(7).unwrap();
        assert_eq!(g.m(), 21);
        assert!(g.is_regular(6));
        assert_eq!(analysis::diameter_exact(&g), Some(1));
    }

    #[test]
    fn star_shape() {
        let g = star(9).unwrap();
        assert_eq!(g.m(), 8);
        let s = g.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 8);
        assert_eq!(analysis::diameter_exact(&g), Some(2));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15).unwrap();
        assert_eq!(g.m(), 14);
        assert!(analysis::is_connected(&g));
        // Complete tree of depth 3: diameter 6 (leaf to leaf).
        assert_eq!(analysis::diameter_exact(&g), Some(6));
    }

    #[test]
    fn random_tree_connected_for_many_seeds() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_tree(64, &mut rng).unwrap();
            assert_eq!(g.m(), 63);
            assert!(analysis::is_connected(&g));
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(path(1).is_err());
        assert!(clique(1).is_err());
        assert!(star(1).is_err());
        assert!(binary_tree(1).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_tree(1, &mut rng).is_err());
    }
}
