//! Dumbbell graphs (§5): two "open graphs" joined by two bridge edges.
//!
//! Given a 2-edge-connected base graph `G₀`, the construction removes one
//! edge `e' = (v', w')` from a left copy and one edge `e'' = (v'', w'')`
//! from a right copy, then adds the bridges `(v', v'')` and `(w', w'')`.
//! Theorem 28 uses these to show that leader election without knowledge of
//! `n` costs `Ω(m)` messages: until a message crosses a bridge, each side's
//! execution is indistinguishable from running on its own copy alone.

use rand::{Rng, RngExt};

use crate::analysis;
use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::types::{EdgeId, NodeId};

/// A dumbbell graph with bookkeeping for the bridge-crossing experiments.
#[derive(Clone, Debug)]
pub struct Dumbbell {
    graph: Graph,
    half_n: usize,
    bridge_edges: [EdgeId; 2],
    removed_left: (usize, usize),
    removed_right: (usize, usize),
}

impl Dumbbell {
    /// The combined graph on `2·|G₀|` nodes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes `self`, returning the combined graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Number of nodes on each side.
    pub fn half_n(&self) -> usize {
        self.half_n
    }

    /// Returns `true` if the node lies in the left copy.
    pub fn is_left(&self, u: NodeId) -> bool {
        u.index() < self.half_n
    }

    /// The two bridge edge ids.
    pub fn bridges(&self) -> [EdgeId; 2] {
        self.bridge_edges
    }

    /// Whether an edge is one of the two bridges.
    pub fn is_bridge(&self, e: EdgeId) -> bool {
        self.bridge_edges.contains(&e)
    }

    /// The edge removed from the left copy (original `G₀` indices).
    pub fn removed_left(&self) -> (usize, usize) {
        self.removed_left
    }

    /// The edge removed from the right copy (original `G₀` indices).
    pub fn removed_right(&self) -> (usize, usize) {
        self.removed_right
    }
}

/// Builds `Dumbbell(G₀[e'], G₀[e''])` from a base graph, choosing the
/// opened edges uniformly at random among those whose removal keeps the
/// copy connected (i.e. non-bridge edges of `G₀`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if the base graph has no
/// removable edge (every edge is a cut edge, e.g. a tree) or is
/// disconnected.
///
/// ```
/// use rand::{SeedableRng, rngs::StdRng};
/// let base = welle_graph::gen::ring(6).unwrap();
/// let mut rng = StdRng::seed_from_u64(2);
/// let db = welle_graph::gen::dumbbell(&base, &mut rng).unwrap();
/// assert_eq!(db.graph().n(), 12);
/// assert_eq!(db.graph().m(), 2 * (6 - 1) + 2); // two opened copies + 2 bridges
/// ```
pub fn dumbbell<R: Rng + ?Sized>(base: &Graph, rng: &mut R) -> Result<Dumbbell, GraphError> {
    if !analysis::is_connected(base) {
        return Err(GraphError::InvalidParameters {
            reason: "dumbbell base graph must be connected".into(),
        });
    }
    let removable: Vec<(usize, usize)> = {
        let bridge_set = analysis::bridges(base);
        base.edges()
            .filter(|(e, _, _)| !bridge_set.contains(e))
            .map(|(_, u, v)| (u.index(), v.index()))
            .collect()
    };
    if removable.is_empty() {
        return Err(GraphError::InvalidParameters {
            reason: "dumbbell base graph has no non-bridge edge to open".into(),
        });
    }
    let (lv, lw) = removable[rng.random_range(0..removable.len())];
    let (rv, rw) = removable[rng.random_range(0..removable.len())];

    let n0 = base.n();
    let n = 2 * n0;
    let mut b = GraphBuilder::with_capacity(n, 2 * base.m());
    for (_, u, v) in base.edges() {
        let (u, v) = (u.index(), v.index());
        if (u, v) != (lv.min(lw), lv.max(lw)) {
            b.add_edge(u, v)?;
        }
        if (u, v) != (rv.min(rw), rv.max(rw)) {
            b.add_edge(n0 + u, n0 + v)?;
        }
    }
    // Bridges follow the paper's ordering convention: the smaller endpoint
    // of e' connects to the smaller endpoint of e''.
    let (lv, lw) = (lv.min(lw), lv.max(lw));
    let (rv, rw) = (rv.min(rw), rv.max(rw));
    b.add_edge(lv, n0 + rv)?;
    b.add_edge(lw, n0 + rw)?;

    let mut graph = b.build()?;
    graph.shuffle_ports(rng);

    let mut bridge_edges = Vec::with_capacity(2);
    for (e, u, v) in graph.edges() {
        let crosses = (u.index() < n0) != (v.index() < n0);
        if crosses {
            bridge_edges.push(e);
        }
    }
    debug_assert_eq!(bridge_edges.len(), 2);

    Ok(Dumbbell {
        graph,
        half_n: n0,
        bridge_edges: [bridge_edges[0], bridge_edges[1]],
        removed_left: (lv, lw),
        removed_right: (rv, rw),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_dumbbell_shape() {
        let base = gen::ring(8).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let db = dumbbell(&base, &mut rng).unwrap();
        assert_eq!(db.graph().n(), 16);
        assert_eq!(db.graph().m(), 2 * 7 + 2);
        assert!(analysis::is_connected(db.graph()));
        assert_eq!(db.half_n(), 8);
    }

    #[test]
    fn bridges_are_the_only_crossings() {
        let base = gen::clique(6).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let db = dumbbell(&base, &mut rng).unwrap();
        let mut crossings = 0;
        for (e, u, v) in db.graph().edges() {
            if db.is_left(u) != db.is_left(v) {
                crossings += 1;
                assert!(db.is_bridge(e));
            } else {
                assert!(!db.is_bridge(e));
            }
        }
        assert_eq!(crossings, 2);
    }

    #[test]
    fn sides_have_equal_sizes_and_stay_connected_without_bridges() {
        let base = gen::random_regular(16, 4, &mut StdRng::seed_from_u64(3)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let db = dumbbell(&base, &mut rng).unwrap();
        // Check each side is internally connected: BFS from node 0 reaches
        // all left nodes using only intra-side edges.
        let g = db.graph();
        for (start, is_left_side) in [(0usize, true), (db.half_n(), false)] {
            let mut seen = vec![false; g.n()];
            let mut queue = std::collections::VecDeque::new();
            seen[start] = true;
            queue.push_back(NodeId::new(start));
            let mut count = 0;
            while let Some(u) = queue.pop_front() {
                count += 1;
                for p in g.ports(u) {
                    let e = g.edge_id(u, p);
                    if db.is_bridge(e) {
                        continue;
                    }
                    let v = g.neighbor(u, p);
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        queue.push_back(v);
                    }
                }
            }
            assert_eq!(count, db.half_n(), "side (left={is_left_side}) connected");
        }
    }

    #[test]
    fn tree_base_rejected() {
        let base = gen::binary_tree(7).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(dumbbell(&base, &mut rng).is_err());
    }

    #[test]
    fn degrees_preserved_for_ring_base() {
        // Opening an edge drops two degrees by 1; bridges restore them.
        let base = gen::ring(10).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let db = dumbbell(&base, &mut rng).unwrap();
        assert!(db.graph().is_regular(2));
    }
}
